//! Offline shim for `proptest`.
//!
//! The build container has no cargo registry access, so this crate provides
//! the subset of proptest this workspace actually uses: the `proptest!`
//! macro, range/`any`/tuple/`vec`/`select`/`prop_oneof!` strategies, and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and no
//! persisted failure seeds — inputs are drawn from a deterministic SplitMix64
//! stream seeded from the test name, with a light bias toward range
//! endpoints, so failures reproduce exactly on re-run.

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec`, `prop::sample::select` — the path layout the
/// real crate exposes through its prelude.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` expands to a plain
/// test that runs the body `config.cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Shim `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim `prop_oneof!`: uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
