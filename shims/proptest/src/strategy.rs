//! Input strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of generated values. Unlike real proptest there is no value
/// tree / shrinking — `generate` draws one concrete value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Integer / float ranges
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                // Bias toward the endpoints: boundary values are where
                // off-by-one bugs live, and the shim cannot shrink its way
                // to them.
                match rng.next_u64() % 16 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + rng.below(span) as $t,
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize, i64);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        match rng.next_u64() % 16 {
            0 => self.start,
            1 => self.end - 1,
            _ => self.start + rng.below(span),
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

pub struct SelectStrategy<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for SelectStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(choices)`.
pub fn select<T: Clone>(choices: Vec<T>) -> SelectStrategy<T> {
    assert!(!choices.is_empty(), "select requires at least one choice");
    SelectStrategy { choices }
}

/// `prop_oneof![a, b, ...]` — uniform choice among same-typed strategies.
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof requires at least one strategy"
        );
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}
