//! Deterministic test-case source for the proptest shim.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim runs fewer because the
        // container is single-core and several properties drive whole
        // cluster simulations per case.
        ProptestConfig { cases: 48 }
    }
}

/// SplitMix64 stream seeded from the test name — the same test always sees
/// the same inputs, on every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
