//! Offline shim for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace ships a
//! minimal self-describing serialization framework under `shims/`. This
//! crate provides the `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for it, implemented directly on `proc_macro` token streams (no
//! `syn`/`quote`, which would themselves need the network).
//!
//! Supported input shapes — exactly what this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`);
//! * tuple structs, including `#[serde(transparent)]` newtypes;
//! * unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics, lifetimes and the wider serde attribute language are
//! intentionally rejected with a compile error: growing this shim on demand
//! is preferred over silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field of a named struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("literal"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Returns `true` if the attribute group `#[...]` contains `serde(<what>)`.
fn attr_is(tokens: &TokenStream, what: &str) -> bool {
    let mut it = tokens.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == what)),
        _ => false,
    }
}

/// Consumes a run of `#[...]` attributes, reporting whether `serde(skip)` /
/// `serde(transparent)` appeared among them.
fn take_attrs(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> (bool, bool) {
    let (mut skip, mut transparent) = (false, false);
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.next() {
                    skip |= attr_is(&g.stream(), "skip");
                    transparent |= attr_is(&g.stream(), "transparent");
                }
            }
            _ => return (skip, transparent),
        }
    }
}

/// Skips an optional `pub` / `pub(crate)` prefix.
fn skip_vis(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Skips one field type: everything up to a comma at angle-bracket depth 0.
fn skip_type(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(t) = it.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        it.next();
    }
}

/// Counts the elements of a tuple body `(A, B<C, D>, E)`.
fn count_tuple_elems(body: TokenStream) -> usize {
    let mut it = body.into_iter().peekable();
    let mut n = 0;
    loop {
        let (_, _) = take_attrs(&mut it);
        skip_vis(&mut it);
        if it.peek().is_none() {
            return n;
        }
        n += 1;
        skip_type(&mut it);
        it.next(); // consume the comma, if any
    }
}

/// Parses the fields of a `{ ... }` body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, _) = take_attrs(&mut it);
        skip_vis(&mut it);
        let Some(tt) = it.next() else {
            return Ok(fields);
        };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("serde shim: expected field name, found `{tt}`"));
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim: expected `:`, found `{other:?}`")),
        }
        skip_type(&mut it);
        it.next(); // consume the comma, if any
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let (_, _) = take_attrs(&mut it);
        let Some(tt) = it.next() else {
            return Ok(variants);
        };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("serde shim: expected variant name, found `{tt}`"));
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_elems(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        match it.next() {
            None => {
                variants.push(Variant {
                    name: name.to_string(),
                    shape,
                });
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant {
                    name: name.to_string(),
                    shape,
                });
            }
            Some(other) => {
                return Err(format!(
                    "serde shim: unsupported token `{other}` after variant `{name}` \
                     (discriminants are not supported)"
                ))
            }
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut it = input.into_iter().peekable();
    let (_, mut transparent) = take_attrs(&mut it);
    skip_vis(&mut it);
    let is_enum = match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => {
            return Err(format!(
                "serde shim: expected struct/enum, found `{other:?}`"
            ))
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected type name, found `{other:?}`")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported; \
             write the impls by hand or extend shims/serde_derive"
        ));
    }
    // The container attributes may also follow the name in our token
    // position only before the item; `transparent` was captured above.
    let kind = if is_enum {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde shim: expected enum body, found `{other:?}`")),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_elems(g.stream());
                if n == 1 && !transparent {
                    // A 1-tuple without `transparent` still serializes as the
                    // bare inner value — the only 1-tuples in this workspace
                    // are numeric newtypes and that is what real serde's
                    // `transparent` would produce for them anyway.
                    transparent = true;
                }
                Kind::TupleStruct(n)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => {
                return Err(format!(
                    "serde shim: expected struct body, found `{other:?}`"
                ))
            }
        }
    };
    Ok(Input {
        name,
        transparent,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(n) => {
            if input.transparent || *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        Kind::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),",
                        v = v.name
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),",
                        v = v.name
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{elems}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Object(vec![{pushes}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::TupleStruct(n) => {
            if input.transparent || *n == 1 {
                "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
            } else {
                let elems: Vec<String> =
                    (0..*n).map(|i| format!("::serde::elem(v, {i})?")).collect();
                format!("Ok(Self({}))", elems.join(", "))
            }
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{}: ::serde::field(v, {:?})?", f.name, f.name)
                    }
                })
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{n:?} => Ok({name}::{n}),", n = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{n:?} => Ok({name}::{n}(::serde::Deserialize::from_value(inner)?)),",
                        n = v.name
                    )),
                    VariantShape::Tuple(k) => {
                        let elems: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::elem(inner, {i})?"))
                            .collect();
                        Some(format!(
                            "{n:?} => Ok({name}::{n}({elems})),",
                            n = v.name,
                            elems = elems.join(", ")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!("{}: ::serde::field(inner, {:?})?", f.name, f.name)
                                }
                            })
                            .collect();
                        Some(format!(
                            "{n:?} => Ok({name}::{n} {{ {inits} }}),",
                            n = v.name,
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::new(format!(\n\
                             \"unknown unit variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::new(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::new(format!(\n\
                         \"invalid value for enum {name}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
