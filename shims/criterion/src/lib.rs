//! Offline shim for `criterion`.
//!
//! Implements the slice of criterion's API this workspace's benches use —
//! `Criterion`, `benchmark_group`/`bench_function`, `Bencher::iter`/
//! `iter_batched`, `criterion_group!`/`criterion_main!` — backed by a simple
//! timing loop: a short warm-up, then `sample_size` timed samples whose
//! median per-iteration time is printed. No statistics engine, no plots, no
//! result persistence; the numbers are indicative, not criterion-grade.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one sample of one iteration, also used to size the samples so
    // each takes roughly 10 ms (capped to keep slow benches bounded).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!(
        "{id:<48} time: {:>12} /iter ({} samples x {iters} iters)",
        fmt_time(median),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: runs each group. The real criterion parses CLI filters;
/// the shim runs everything (and ignores `--bench`-style arguments).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
