//! Offline shim for `serde`.
//!
//! The build container cannot reach a cargo registry, so the workspace ships
//! a self-contained stand-in. Instead of real serde's visitor architecture,
//! everything round-trips through a small [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`&Value`](Value);
//! * `serde_json` (the sibling shim) renders/parses `Value` as JSON text.
//!
//! The derive macros in `shims/serde_derive` target exactly this surface.
//! Object keys keep insertion order (a `Vec` of pairs, not a map), which
//! keeps `to_string_pretty` output stable across runs.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A parsed/serializable value tree — the interchange format between the
/// derive macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message, like `serde_json::Error`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: fetch + deserialize a named object field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner),
        None => Err(Error::new(format!("missing field `{name}`"))),
    }
}

/// Helper used by derived code: fetch + deserialize an array element.
pub fn elem<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(inner) => T::from_value(inner),
            None => Err(Error::new(format!("missing tuple element {idx}"))),
        },
        _ => Err(Error::new("expected array")),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected unsigned integer (", stringify!($t), ")"))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected integer (", stringify!($t), ")"))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::new("expected number (f64)")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((elem(v, 0)?, elem(v, 1)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((elem(v, 0)?, elem(v, 1)?, elem(v, 2)?))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = field(v, "secs")?;
        let nanos: u64 = field(v, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
