//! Offline shim for `serde_json`: renders and parses JSON text over the
//! [`serde::Value`] tree from the sibling `shims/serde` crate.
//!
//! Covers the workspace's actual usage: `to_string`, `to_string_pretty`,
//! `from_str`, plus `to_value`/`from_value` and the `json!`-free `Value`
//! re-export. Number handling: integers stay exact (u64/i64); anything with
//! a fraction or exponent parses as f64. Floats render via `{:?}` ("1.0",
//! not "1"), matching what real serde_json emits for f64.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(Error::from)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no Inf/NaN; real serde_json errors here, we degrade
                // to null to keep bench output writable no matter what.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("burst".to_string())),
            ("nodes".to_string(), Value::U64(16)),
            ("alpha".to_string(), Value::F64(0.25)),
            (
                "flags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("line\n\"quote\"\ttab\\".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
