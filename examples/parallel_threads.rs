//! The threaded engine: node simulators on real OS threads, synchronized by
//! real barriers, timed with a real clock.
//!
//! Each node burns actual CPU per simulated operation (emulating the cost
//! of full-system simulation), so the adaptive quantum's savings show up as
//! real wall-clock.
//!
//! Run with: `cargo run --release --example parallel_threads`

use aqs::cluster::{EngineKind, Sim};
use aqs::core::SyncConfig;
use aqs::workloads::burst;

fn main() {
    let n = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
        .max(2);
    println!("running {n} node-simulator threads\n");
    let spec = burst(n, 1_000_000, 2048);

    // ~10 host-ns of busy work per simulated op ≈ a 26x-slowdown simulator
    // on the default 2.6 GHz guest CPU model.
    let mk = |sync| {
        Sim::new(spec.programs.clone())
            .engine(EngineKind::Threaded)
            .sync(sync)
            .host_work_per_op(10.0)
            .run()
    };

    let truth = mk(SyncConfig::ground_truth());
    let fixed = mk(SyncConfig::fixed_micros(1000));
    let dynr = mk(SyncConfig::paper_dyn1());

    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12}",
        "config", "wall", "quanta", "stragglers", "sim end"
    );
    for (label, r) in [
        ("Q=1µs (truth)", &truth),
        ("Q=1000µs", &fixed),
        ("dyn 1.03:0.02", &dynr),
    ] {
        println!(
            "{label:<18} {:>11.1?}s {:>10} {:>12} {:>12}",
            r.wall_clock.as_secs_f64(),
            r.total_quanta,
            r.stragglers.count(),
            r.sim_end
        );
    }
    println!();
    println!(
        "adaptive wall-clock speedup vs ground truth: {:.1}x",
        dynr.speedup_vs(&truth)
    );
    println!("(timings vary by machine; the deterministic engine in");
    println!(" aqs::cluster::engine reproduces the paper's figures exactly)");
}
