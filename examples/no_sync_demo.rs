//! Why synchronize at all? The paper's §3 motivation, demonstrated.
//!
//! "Notice that even without synchronizing the nodes' simulated time, the
//! functional simulation of the cluster would still behave correctly …
//! However, the simulated time would be indeterminable, since each node
//! would be running at its own speed."
//!
//! This demo approximates a free-running ("mediator-style") cluster with an
//! enormous fixed quantum, so the nodes only meet once: functional results
//! are identical across host conditions, but the benchmark's self-reported
//! time swings wildly with the (random) relative speeds of the simulators —
//! there is no ground truth to compare anything against.
//!
//! Run with: `cargo run --release --example no_sync_demo`

use aqs::cluster::{app_metric, run_workload, ClusterConfig};
use aqs::core::SyncConfig;
use aqs::workloads::ping_pong;

fn main() {
    let spec = ping_pong(2, 20, 9000);

    // A one-hour quantum never ends within the run: no synchronization.
    let free_running = SyncConfig::Fixed(aqs::time::SimDuration::from_secs(3600));
    // The safe quantum: deterministic ground truth.
    let synchronized = SyncConfig::ground_truth();

    println!("20-round ping-pong, reported kernel time under different host conditions");
    println!("(each seed = a different day on the simulation host):\n");
    println!(
        "{:>6}  {:>22}  {:>22}  {:>10}",
        "seed", "free-running (no sync)", "Q = 1µs (synced)", "messages"
    );
    for seed in 1..=6u64 {
        let base = ClusterConfig::new(synchronized.clone()).with_seed(seed);
        let synced = run_workload(&spec, &base);
        let free = run_workload(&spec, &base.clone().with_sync(free_running.clone()));
        let m_free = app_metric(&free, spec.metric);
        let m_sync = app_metric(&synced, spec.metric);
        let msgs: u64 = free.per_node.iter().map(|n| n.messages_received).sum();
        println!(
            "{seed:>6}  {:>22}  {:>22}  {msgs:>10}",
            m_free.to_string(),
            m_sync.to_string()
        );
    }
    println!();
    println!("functional behaviour never changes (same messages, same results) —");
    println!("but without synchronization the reported time is whatever the host's");
    println!("scheduling happened to produce. The quantum buys determinism; the");
    println!("adaptive quantum buys it back cheaply.");
}
