//! The paper's Figure 3: what happens to a packet round trip when the two
//! node simulators run at different speeds under quantum synchronization.
//!
//! Four scenarios, one per quadrant of the figure:
//!   (a) equal speeds — the ideal round trip;
//!   (b) node 1 faster — the reply lands in its past: a straggler;
//!   (c) node 1 slower — the reply arrives "early" and is scheduled exactly;
//!   (d) long quantum — the reply snaps to the next quantum boundary.
//!
//! Run with: `cargo run --release --example straggler_scenarios`

use aqs::cluster::{ClusterConfig, RunReport, Sim};
use aqs::core::SyncConfig;
use aqs::node::{HostModel, ProgramBuilder, Rank, RegionId, Tag};

/// One ping round trip measured on node 0.
fn ping_programs() -> Vec<aqs::node::Program> {
    let ping = ProgramBuilder::new(Rank::new(0))
        .region_start(RegionId::KERNEL)
        .send(Rank::new(1), 64, Tag::new(0))
        .recv(Some(Rank::new(1)), Tag::new(1))
        .region_end(RegionId::KERNEL)
        .build();
    let pong = ProgramBuilder::new(Rank::new(1))
        .recv(Some(Rank::new(0)), Tag::new(0))
        .send(Rank::new(0), 64, Tag::new(1))
        .build();
    vec![ping, pong]
}

fn run(label: &str, cfg: ClusterConfig) -> RunReport {
    let result = Sim::new(ping_programs()).config(cfg).run();
    let rtt =
        result.detail.as_deterministic().unwrap().per_node[0].region_duration(RegionId::KERNEL);
    println!(
        "{label:<34} round trip = {rtt:>10}   stragglers = {} (total delay {})",
        result.stragglers.count(),
        result.stragglers.total_delay(),
    );
    result
}

fn main() {
    // Node simulator speeds are deterministic here: `uniform` host models
    // have no jitter, and per-node overrides stage each scenario.
    let equal = HostModel::uniform(30.0, 1.0);
    let fast = HostModel::uniform(10.0, 1.0); // 3x faster than `equal`
    let slow = HostModel::uniform(90.0, 1.0); // 3x slower than `equal`
    let base = ClusterConfig::new(SyncConfig::ground_truth())
        .with_host(equal)
        .with_seed(1);

    println!("--- safe quantum (Q = 1µs = network latency T) ---");
    let a = run("(a) equal speeds", base.clone());
    run("(c) node 1 slower", base.clone().with_node_host(0, slow));
    // Under Q <= T no speed difference can produce a straggler:
    let b = run("(b) node 1 faster", base.clone().with_node_host(0, fast));
    assert_eq!(a.stragglers.count(), 0);
    assert_eq!(b.stragglers.count(), 0);

    println!();
    println!("--- long quantum (Q = 100µs >> T): timing causality can break ---");
    let loose = base.with_sync(SyncConfig::fixed_micros(100));
    run("(a) equal speeds", loose.clone());
    run(
        "(c) node 1 slower: exact schedule",
        loose.clone().with_node_host(0, slow),
    );
    // Node 0 simulates 3x faster, so the pong's arrival time is behind node
    // 0's clock: a straggler, delivered late — the round trip inflates
    // (scenario (d): it snaps towards the quantum boundary).
    let d = run(
        "(b/d) node 1 faster: straggler",
        loose.with_node_host(0, fast),
    );
    assert!(
        d.stragglers.count() > 0,
        "expected the round trip to straggle"
    );
    println!();
    println!("note how the measured round trip only degrades when the");
    println!("receiving simulator runs ahead — exactly the paper's Figure 3.");
}
