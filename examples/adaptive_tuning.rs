//! "Driving over speed bumps": watch the adaptive quantum react to a
//! bursty application, and sweep the growth/shrink factors.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use aqs::cluster::{run_workload, ClusterConfig};
use aqs::core::{AdaptiveConfig, SyncConfig};
use aqs::time::SimDuration;
use aqs::workloads::burst;

/// Renders quantum length over time (log scale) as ASCII.
fn quantum_chart(records: &[aqs::core::QuantumRecord], cols: usize, rows: usize) -> String {
    let end = records.last().map(|r| r.end().as_nanos()).unwrap_or(1) as f64;
    let max_q = records
        .iter()
        .map(|r| r.length.as_nanos())
        .max()
        .unwrap_or(1) as f64;
    let mut grid = vec![vec![' '; cols]; rows];
    for r in records {
        let c = ((r.start.as_nanos() as f64 / end) * (cols - 1) as f64) as usize;
        let level = (r.length.as_nanos() as f64).ln() / max_q.ln();
        let y = ((rows - 1) as f64 * level).round() as usize;
        let row = rows - 1 - y.min(rows - 1);
        grid[row][c] = if r.packets > 0 { '!' } else { '▪' };
    }
    let mut out = String::new();
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols));
    out.push_str("> simulated time   (▪ quantum, ! quantum with packets)\n");
    out
}

fn main() {
    let spec = burst(4, 4_000_000, 4096);

    println!("=== quantum length over time, dyn 1.05:0.02 ===");
    println!("(watch it climb through the compute phases and crash at the burst)\n");
    let cfg = ClusterConfig::new(SyncConfig::paper_dyn2())
        .with_seed(5)
        .with_quantum_trace(true);
    let run = run_workload(&spec, &cfg);
    println!("{}", quantum_chart(run.quanta.records(), 76, 12));

    println!("=== inc/dec sweep (same workload) ===\n");
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(5);
    let truth = run_workload(&spec, &base);
    println!(
        "{:<22} {:>9} {:>12} {:>10}",
        "config", "speedup", "stragglers", "quanta"
    );
    for inc in [1.01, 1.03, 1.05, 1.10, 1.20] {
        for dec in [0.02, 0.2, 0.5] {
            let sync = SyncConfig::Adaptive(AdaptiveConfig::new(
                SimDuration::from_micros(1),
                SimDuration::from_micros(1000),
                inc,
                dec,
            ));
            let r = run_workload(&spec, &base.clone().with_sync(sync));
            println!(
                "{:<22} {:>8.1}x {:>12} {:>10}",
                format!("inc {inc:.2} dec {dec:.2}"),
                r.speedup_vs(&truth),
                r.stragglers.count(),
                r.total_quanta
            );
        }
    }
    println!("\nthe paper's guidance holds: grow slowly (2-5%), brake hard (~0.02).");
}
