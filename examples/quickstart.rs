//! Quickstart: simulate a 4-node cluster under the ground truth and the
//! paper's adaptive quantum, and compare speed and accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use aqs::cluster::{app_metric, run_workload, ClusterConfig};
use aqs::core::SyncConfig;
use aqs::workloads::burst;

fn main() {
    // A bursty workload: compute → all-to-all exchange → compute.
    let spec = burst(4, 2_000_000, 2048);
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(7);

    // Ground truth: 1 µs quantum = the minimum network latency, so packet
    // timing is exact (zero stragglers) but every simulated microsecond
    // pays a barrier.
    let truth = run_workload(&spec, &base);

    // The paper's adaptive configuration: quantum grows 3 % per quiet
    // quantum, collapses ×0.02 on traffic, bounded to 1–1000 µs.
    let adaptive = run_workload(&spec, &base.clone().with_sync(SyncConfig::paper_dyn1()));

    let m0 = app_metric(&truth, spec.metric);
    let m1 = app_metric(&adaptive, spec.metric);

    println!(
        "ground truth : {} host, {} simulated, {} quanta, {} stragglers",
        truth.host_elapsed,
        truth.sim_end,
        truth.total_quanta,
        truth.stragglers.count()
    );
    println!(
        "adaptive     : {} host, {} simulated, {} quanta, {} stragglers",
        adaptive.host_elapsed,
        adaptive.sim_end,
        adaptive.total_quanta,
        adaptive.stragglers.count()
    );
    println!();
    println!("speedup        : {:.1}x", adaptive.speedup_vs(&truth));
    println!("accuracy error : {:.3}%", m1.error_vs(&m0) * 100.0);
    println!("(kernel: {m0} → {m1})");
}
