//! Run a NAS-like benchmark on a simulated cluster across synchronization
//! configurations — a miniature of the paper's Figure 6 evaluation.
//!
//! Run with: `cargo run --release --example nas_cluster [ep|is|cg|mg|lu] [nodes]`

use aqs::cluster::{paper_sweep, ClusterConfig, Experiment};
use aqs::core::SyncConfig;
use aqs::metrics::render_table;
use aqs::workloads::{nas, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("cg");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let spec = match which {
        "ep" => nas::ep(n, Scale::Mini),
        "is" => nas::is(n, Scale::Mini),
        "cg" => nas::cg(n, Scale::Mini),
        "mg" => nas::mg(n, Scale::Mini),
        "lu" => nas::lu(n, Scale::Mini),
        other => {
            eprintln!("unknown benchmark {other}; expected ep|is|cg|mg|lu");
            std::process::exit(2);
        }
    };

    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(42);
    let result = Experiment::new(spec, base, paper_sweep()).run();

    println!(
        "{} on {} nodes — ground truth: {} in {} host time",
        result.name, result.n_nodes, result.baseline_metric, result.baseline.host_elapsed
    );
    let rows: Vec<Vec<String>> = result
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.1}x", o.speedup),
                format!("{:.2}%", o.accuracy_error * 100.0),
                format!("{}", o.result.stragglers.count()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["config", "speedup", "error", "stragglers"], &rows)
    );

    // The paper's headline claim, checked live:
    let dyn1 = &result.outcomes[3];
    let f1000 = &result.outcomes[2];
    println!(
        "adaptive vs fixed-1000µs: {:.0}% of the speed at {:.1}% of the error",
        100.0 * dyn1.speedup / f1000.speedup,
        100.0 * dyn1.accuracy_error / f1000.accuracy_error.max(1e-9),
    );
}
