//! The scenario model: what a `.toml` scenario file describes, and how it
//! becomes programs, a switch, and a chaos overlay.
//!
//! # Schema
//!
//! ```toml
//! name    = "allreduce-chaos"       # required
//! nodes   = 8                        # required, >= 2
//! seed    = 42                       # default 42
//! policy  = "truth"                  # truth | dyn1 | dyn2 | pred | fixed:<µs>
//! engines = ["deterministic", "threaded", "sharded"]
//! shards  = [1, 2, 4]                # worker counts for the sharded engine
//!
//! [topology]                         # optional; default perfect switch
//! kind       = "fabric"              # perfect | latency-matrix | fabric
//! latency_us = 2                     # latency-matrix only
//! rack_size  = 4                     # fabric only
//! uplinks    = 2                     # fabric only
//!
//! [[phases]]                         # at least one; run back to back
//! workload = "ml-allreduce"          # any name `Workload::parse` accepts
//! steps    = 2                       # workload parameters override defaults
//!
//! [chaos]                            # optional seeded fault injection
//! link_flap = 0.05                   # probabilities per chaos epoch
//! loss      = 0.1
//! retransmit_us = 150
//!
//! [asserts]                          # optional; checked after the runs
//! cross_engine_identical = true      # default true
//! conservation           = true      # default true
//! zero_stragglers        = false
//! min_messages           = 100
//! max_sim_ms             = 500
//! ```
//!
//! Parsing errors surface as [`SimError::ScenarioParse`] with the file and
//! 1-based line; semantic errors (a probability out of range, an unknown
//! engine) as [`SimError::ScenarioValidate`].

use crate::toml::{self, Item, Table, Value};
use aqs_cluster::{EngineKind, SimError, SimSwitch};
use aqs_core::SyncConfig;
use aqs_net::{ChaosConfig, FabricConfig, LatencyMatrixSwitch};
use aqs_node::{Op, Program, Tag};
use aqs_time::SimDuration;
use aqs_workloads::{Scale, Workload};
use std::path::Path;

/// Tags of one phase must stay below this bound so phases can be remapped
/// into disjoint tag ranges (phase `i` gets offset `i << 22`).
const TAG_SPAN: u32 = 1 << 22;

/// Hard cap on phases: keeps every remapped tag below
/// [`u32::MAX`] (reserved for background traffic).
const MAX_PHASES: usize = 256;

/// The network topology a scenario runs on.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// Infinite bandwidth, zero transit delay.
    Perfect,
    /// Uniform per-hop latency between every pair.
    LatencyMatrix {
        /// One-way latency between any two nodes.
        latency: SimDuration,
    },
    /// The modeled fat-tree fabric.
    Fabric {
        /// Hosts per rack (`None` keeps the fabric default).
        rack_size: Option<u32>,
        /// Uplinks per rack (`None` keeps the fabric default).
        uplinks: Option<u32>,
    },
}

impl Topology {
    /// The [`SimSwitch`] this topology builds to.
    pub fn switch(&self, n: usize) -> SimSwitch {
        match self {
            Topology::Perfect => SimSwitch::Perfect,
            Topology::LatencyMatrix { latency } => {
                SimSwitch::LatencyMatrix(LatencyMatrixSwitch::uniform(n, *latency))
            }
            Topology::Fabric { rack_size, uplinks } => {
                let mut cfg = FabricConfig::fat_tree();
                if let Some(r) = rack_size {
                    cfg = cfg.with_rack_size(*r);
                }
                if let Some(u) = uplinks {
                    cfg = cfg.with_uplinks_per_rack(*u);
                }
                SimSwitch::Fabric(cfg)
            }
        }
    }
}

/// One phase: a workload with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// The workload to generate.
    pub workload: Workload,
}

/// The property assertions checked after the runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Asserts {
    /// Every engine × worker-count run must produce the same
    /// [`SimulatedOutcome`](aqs_cluster::SimulatedOutcome), bit for bit.
    pub cross_engine_identical: bool,
    /// Every posted `Recv` must have completed: `messages_received` equals
    /// the total receive count of the generated programs (no packet lost,
    /// none duplicated — chaos only delays).
    pub conservation: bool,
    /// No stragglers in any run (holds under the safe quantum `Q ≤ T`).
    pub zero_stragglers: bool,
    /// Lower bound on `messages_received` (guards against a scenario that
    /// silently generates no traffic).
    pub min_messages: Option<u64>,
    /// Upper bound on the simulated completion time, in milliseconds.
    pub max_sim_ms: Option<u64>,
    /// Upper bound on the straggler count of any run.
    pub max_stragglers: Option<u64>,
}

impl Default for Asserts {
    fn default() -> Self {
        Self {
            cross_engine_identical: true,
            conservation: true,
            zero_stragglers: false,
            min_messages: None,
            max_sim_ms: None,
            max_stragglers: None,
        }
    }
}

/// A parsed, validated scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Cluster size.
    pub nodes: usize,
    /// Base seed: phase `i` builds its workload with `seed + i`, and the
    /// engines and the chaos overlay (unless overridden) draw from it too.
    pub seed: u64,
    /// Synchronization policy.
    pub policy: SyncConfig,
    /// Engines to run (every one must produce the same outcome when
    /// `cross_engine_identical` is asserted).
    pub engines: Vec<EngineKind>,
    /// Worker counts for the sharded engine.
    pub shards: Vec<usize>,
    /// Network topology.
    pub topology: Topology,
    /// Workload phases, run back to back.
    pub phases: Vec<Phase>,
    /// Chaos injection, when the scenario asks for it.
    pub chaos: Option<ChaosConfig>,
    /// Property assertions.
    pub asserts: Asserts,
    /// Source file path, for error reporting.
    pub file: String,
}

fn perr(file: &str, line: usize, message: impl Into<String>) -> SimError {
    SimError::ScenarioParse {
        file: file.to_string(),
        line,
        message: message.into(),
    }
}

fn verr(file: &str, message: impl Into<String>) -> SimError {
    SimError::ScenarioValidate {
        file: file.to_string(),
        message: message.into(),
    }
}

/// Typed accessors over a parsed table, with file/line error context.
struct Reader<'a> {
    table: &'a Table,
    file: &'a str,
    /// What this table is called in error messages (`scenario`, `[chaos]`…).
    what: &'a str,
}

impl<'a> Reader<'a> {
    fn new(table: &'a Table, file: &'a str, what: &'a str) -> Self {
        Self { table, file, what }
    }

    fn item(&self, key: &str) -> Option<&'a Item> {
        self.table.get(key)
    }

    fn mismatch(&self, key: &str, item: &Item, want: &str) -> SimError {
        perr(
            self.file,
            item.line,
            format!(
                "{} key `{key}`: expected {want}, got {}",
                self.what,
                item.value.type_name()
            ),
        )
    }

    fn str(&self, key: &str) -> Result<Option<&'a str>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Str(s) => Ok(Some(s)),
                _ => Err(self.mismatch(key, item, "a string")),
            },
        }
    }

    fn bool(&self, key: &str) -> Result<Option<bool>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match item.value {
                Value::Bool(b) => Ok(Some(b)),
                _ => Err(self.mismatch(key, item, "a boolean")),
            },
        }
    }

    fn u64(&self, key: &str) -> Result<Option<u64>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match item.value {
                Value::Int(i) if i >= 0 => Ok(Some(i as u64)),
                Value::Int(_) => Err(self.mismatch(key, item, "a non-negative integer")),
                _ => Err(self.mismatch(key, item, "an integer")),
            },
        }
    }

    fn u32(&self, key: &str) -> Result<Option<u32>, SimError> {
        match self.u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v).map(Some).map_err(|_| {
                let item = self.item(key).expect("key just read");
                self.mismatch(key, item, "a 32-bit integer")
            }),
        }
    }

    fn f64(&self, key: &str) -> Result<Option<f64>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match item.value {
                Value::Float(f) => Ok(Some(f)),
                Value::Int(i) => Ok(Some(i as f64)),
                _ => Err(self.mismatch(key, item, "a number")),
            },
        }
    }

    fn str_array(&self, key: &str) -> Result<Option<Vec<&'a str>>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Array(items) => items
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Ok(s.as_str()),
                        _ => Err(self.mismatch(key, item, "an array of strings")),
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some),
                _ => Err(self.mismatch(key, item, "an array of strings")),
            },
        }
    }

    fn usize_array(&self, key: &str) -> Result<Option<Vec<usize>>, SimError> {
        match self.item(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Array(items) => items
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) if *i >= 0 => Ok(*i as usize),
                        _ => Err(self.mismatch(key, item, "an array of non-negative integers")),
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some),
                _ => Err(self.mismatch(key, item, "an array of integers")),
            },
        }
    }

    /// Rejects any key outside `allowed`, pointing at its line.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), SimError> {
        for (key, item) in &self.table.entries {
            if !allowed.contains(&key.as_str()) {
                return Err(perr(
                    self.file,
                    item.line,
                    format!(
                        "unknown {} key `{key}` (expected one of: {})",
                        self.what,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

fn parse_policy(spec: &str, file: &str, line: usize) -> Result<SyncConfig, SimError> {
    match spec {
        "truth" => Ok(SyncConfig::ground_truth()),
        "dyn1" => Ok(SyncConfig::paper_dyn1()),
        "dyn2" => Ok(SyncConfig::paper_dyn2()),
        "pred" => Ok(SyncConfig::Predictive(
            aqs_core::PredictiveConfig::default_1_1000(),
        )),
        other => {
            if let Some(us) = other.strip_prefix("fixed:") {
                let us: u64 = us
                    .parse()
                    .map_err(|_| perr(file, line, format!("bad fixed policy `{other}`")))?;
                if us == 0 {
                    return Err(perr(file, line, "a fixed quantum must be nonzero"));
                }
                return Ok(SyncConfig::fixed_micros(us));
            }
            Err(perr(
                file,
                line,
                format!("unknown policy `{other}` (truth | dyn1 | dyn2 | pred | fixed:<µs>)"),
            ))
        }
    }
}

fn parse_engine(name: &str, file: &str, line: usize) -> Result<EngineKind, SimError> {
    match name {
        "deterministic" => Ok(EngineKind::Deterministic),
        "threaded" => Ok(EngineKind::Threaded),
        "sharded" => Ok(EngineKind::Sharded),
        "optimistic" => Ok(EngineKind::Optimistic),
        "sharded-optimistic" => Ok(EngineKind::ShardedOptimistic),
        "hybrid" => Ok(EngineKind::Hybrid),
        other => Err(perr(
            file,
            line,
            format!(
                "unknown engine `{other}` (deterministic | threaded | sharded | optimistic \
                 | sharded-optimistic | hybrid)"
            ),
        )),
    }
}

fn parse_scale(name: &str, file: &str, line: usize) -> Result<Scale, SimError> {
    match name {
        "tiny" => Ok(Scale::Tiny),
        "mini" => Ok(Scale::Mini),
        "full" => Ok(Scale::Full),
        other => Err(perr(
            file,
            line,
            format!("unknown scale `{other}` (tiny | mini | full)"),
        )),
    }
}

/// Overrides one workload parameter. Returns an error message when the
/// workload has no such parameter or the value has the wrong shape.
fn apply_param(w: &mut Workload, key: &str, r: &Reader<'_>) -> Result<bool, SimError> {
    fn set_usize(slot: &mut usize, key: &str, r: &Reader<'_>) -> Result<bool, SimError> {
        if let Some(v) = r.u64(key)? {
            *slot = v as usize;
            return Ok(true);
        }
        Ok(false)
    }
    fn set_u64(slot: &mut u64, key: &str, r: &Reader<'_>) -> Result<bool, SimError> {
        if let Some(v) = r.u64(key)? {
            *slot = v;
            return Ok(true);
        }
        Ok(false)
    }
    match w {
        Workload::PingPong { rounds, bytes } => match key {
            "rounds" => set_usize(rounds, key, r),
            "bytes" => set_u64(bytes, key, r),
            _ => Ok(false),
        },
        Workload::Burst { compute, bytes } => match key {
            "compute" => set_u64(compute, key, r),
            "bytes" => set_u64(bytes, key, r),
            _ => Ok(false),
        },
        Workload::UniformCompute { ops, spread } => match key {
            "ops" => set_u64(ops, key, r),
            "spread" => {
                if let Some(v) = r.f64(key)? {
                    *spread = v;
                    return Ok(true);
                }
                Ok(false)
            }
            _ => Ok(false),
        },
        // NAS and NAMD are parameterized by `scale` alone, handled upstream.
        Workload::Nas { .. } | Workload::Namd { .. } => Ok(false),
        Workload::MlAllreduce {
            steps,
            buckets,
            bucket_bytes,
            compute,
        } => match key {
            "steps" => set_usize(steps, key, r),
            "buckets" => set_usize(buckets, key, r),
            "bucket_bytes" => set_u64(bucket_bytes, key, r),
            "compute" => set_u64(compute, key, r),
            _ => Ok(false),
        },
        Workload::ParameterServer {
            steps,
            push_bytes,
            compute,
        } => match key {
            "steps" => set_usize(steps, key, r),
            "push_bytes" => set_u64(push_bytes, key, r),
            "compute" => set_u64(compute, key, r),
            _ => Ok(false),
        },
        Workload::RpcFanout {
            requests,
            fanout,
            request_bytes,
            response_bytes,
            service_ops,
        } => match key {
            "requests" => set_usize(requests, key, r),
            "fanout" => set_usize(fanout, key, r),
            "request_bytes" => set_u64(request_bytes, key, r),
            "response_bytes" => set_u64(response_bytes, key, r),
            "service_ops" => set_u64(service_ops, key, r),
            _ => Ok(false),
        },
        Workload::Gossip {
            rounds,
            fanout,
            digest_bytes,
        } => match key {
            "rounds" => set_usize(rounds, key, r),
            "fanout" => set_usize(fanout, key, r),
            "digest_bytes" => set_u64(digest_bytes, key, r),
            _ => Ok(false),
        },
    }
}

impl Scenario {
    /// Loads and parses a scenario file.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, SimError> {
        let path = path.as_ref();
        let file = path.display().to_string();
        let src = std::fs::read_to_string(path)
            .map_err(|e| perr(&file, 0, format!("cannot read file: {e}")))?;
        Self::from_str(&src, &file)
    }

    /// Parses scenario text. `file` labels errors (use the path, or a
    /// placeholder like `<inline>` for generated text).
    #[allow(clippy::should_implement_trait)] // fallible, two-argument parse
    pub fn from_str(src: &str, file: &str) -> Result<Scenario, SimError> {
        let doc = toml::parse(src).map_err(|e| perr(file, e.line, e.message))?;

        for name in doc.tables.keys() {
            if !["topology", "chaos", "asserts"].contains(&name.as_str()) {
                let line = doc.tables[name].line;
                return Err(perr(
                    file,
                    line,
                    format!("unknown table `[{name}]` (expected topology, chaos, or asserts)"),
                ));
            }
        }
        for name in doc.arrays.keys() {
            if name != "phases" {
                let line = doc.arrays[name][0].line;
                return Err(perr(
                    file,
                    line,
                    format!("unknown array `[[{name}]]` (expected phases)"),
                ));
            }
        }

        let root = Reader::new(&doc.root, file, "scenario");
        root.reject_unknown(&["name", "nodes", "seed", "policy", "engines", "shards"])?;

        let name = root
            .str("name")?
            .ok_or_else(|| verr(file, "missing required key `name`"))?
            .to_string();
        let nodes =
            root.u64("nodes")?
                .ok_or_else(|| verr(file, "missing required key `nodes`"))? as usize;
        if nodes < 2 {
            return Err(verr(
                file,
                format!("a cluster needs at least 2 nodes, got {nodes}"),
            ));
        }
        let seed = root.u64("seed")?.unwrap_or(42);
        let policy = match root.str("policy")? {
            Some(spec) => {
                let line = root.item("policy").expect("policy just read").line;
                parse_policy(spec, file, line)?
            }
            None => SyncConfig::ground_truth(),
        };

        let engines = match root.str_array("engines")? {
            Some(names) => {
                let line = root.item("engines").expect("engines just read").line;
                if names.is_empty() {
                    return Err(verr(file, "`engines` must name at least one engine"));
                }
                names
                    .iter()
                    .map(|n| parse_engine(n, file, line))
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => vec![
                EngineKind::Deterministic,
                EngineKind::Threaded,
                EngineKind::Sharded,
            ],
        };
        let shards = root.usize_array("shards")?.unwrap_or_else(|| vec![1, 2, 4]);
        if shards.is_empty() || shards.contains(&0) {
            return Err(verr(file, "`shards` must list worker counts of at least 1"));
        }

        let topology = match doc.tables.get("topology") {
            None => Topology::Perfect,
            Some(t) => Self::parse_topology(t, file)?,
        };

        let empty = Vec::new();
        let phase_tables = doc.arrays.get("phases").unwrap_or(&empty);
        if phase_tables.is_empty() {
            return Err(verr(file, "a scenario needs at least one [[phases]] entry"));
        }
        if phase_tables.len() > MAX_PHASES {
            return Err(verr(
                file,
                format!("too many phases: {} (max {MAX_PHASES})", phase_tables.len()),
            ));
        }
        let mut phases = Vec::with_capacity(phase_tables.len());
        for t in phase_tables {
            phases.push(Self::parse_phase(t, file)?);
        }

        let chaos = match doc.tables.get("chaos") {
            None => None,
            Some(t) => Some(Self::parse_chaos(t, file, seed)?),
        };
        if let Some(c) = &chaos {
            c.validate()
                .map_err(|reason| verr(file, format!("invalid chaos configuration: {reason}")))?;
            if engines.contains(&EngineKind::Optimistic) {
                return Err(verr(
                    file,
                    "the optimistic engine does not support chaos injection; \
                     drop it from `engines` or remove [chaos]",
                ));
            }
        }

        let asserts = match doc.tables.get("asserts") {
            None => Asserts::default(),
            Some(t) => Self::parse_asserts(t, file)?,
        };

        Ok(Scenario {
            name,
            nodes,
            seed,
            policy,
            engines,
            shards,
            topology,
            phases,
            chaos,
            asserts,
            file: file.to_string(),
        })
    }

    fn parse_topology(t: &Table, file: &str) -> Result<Topology, SimError> {
        let r = Reader::new(t, file, "[topology]");
        r.reject_unknown(&["kind", "latency_us", "rack_size", "uplinks"])?;
        let kind = r.str("kind")?.unwrap_or("perfect");
        match kind {
            "perfect" => {
                for key in ["latency_us", "rack_size", "uplinks"] {
                    if let Some(item) = r.item(key) {
                        return Err(perr(
                            file,
                            item.line,
                            format!("`{key}` does not apply to the perfect topology"),
                        ));
                    }
                }
                Ok(Topology::Perfect)
            }
            "latency-matrix" => {
                let us = r
                    .u64("latency_us")?
                    .ok_or_else(|| verr(file, "the latency-matrix topology needs `latency_us`"))?;
                if us == 0 {
                    return Err(verr(file, "`latency_us` must be nonzero"));
                }
                for key in ["rack_size", "uplinks"] {
                    if let Some(item) = r.item(key) {
                        return Err(perr(
                            file,
                            item.line,
                            format!("`{key}` does not apply to the latency-matrix topology"),
                        ));
                    }
                }
                Ok(Topology::LatencyMatrix {
                    latency: SimDuration::from_micros(us),
                })
            }
            "fabric" => {
                if let Some(item) = r.item("latency_us") {
                    return Err(perr(
                        file,
                        item.line,
                        "`latency_us` does not apply to the fabric topology",
                    ));
                }
                Ok(Topology::Fabric {
                    rack_size: r.u32("rack_size")?,
                    uplinks: r.u32("uplinks")?,
                })
            }
            other => {
                let line = r.item("kind").expect("kind just read").line;
                Err(perr(
                    file,
                    line,
                    format!("unknown topology `{other}` (perfect | latency-matrix | fabric)"),
                ))
            }
        }
    }

    fn parse_phase(t: &Table, file: &str) -> Result<Phase, SimError> {
        let r = Reader::new(t, file, "phase");
        let Some(name) = r.str("workload")? else {
            return Err(perr(file, t.line, "every phase needs a `workload` key"));
        };
        let line = r.item("workload").expect("workload just read").line;
        let Some(mut workload) = Workload::parse(name) else {
            return Err(perr(file, line, format!("unknown workload `{name}`")));
        };
        if let Some(scale) = r.str("scale")? {
            let line = r.item("scale").expect("scale just read").line;
            workload = workload.with_scale(parse_scale(scale, file, line)?);
        }
        for (key, item) in &t.entries {
            if key == "workload" || key == "scale" {
                continue;
            }
            if !apply_param(&mut workload, key, &r)? {
                return Err(perr(
                    file,
                    item.line,
                    format!("workload `{name}` has no parameter `{key}`"),
                ));
            }
        }
        Ok(Phase { workload })
    }

    fn parse_chaos(t: &Table, file: &str, default_seed: u64) -> Result<ChaosConfig, SimError> {
        let r = Reader::new(t, file, "[chaos]");
        r.reject_unknown(&[
            "seed",
            "epoch_us",
            "link_flap",
            "pause",
            "partition",
            "partition_groups",
            "hold_scan_epochs",
            "loss",
            "retransmit_us",
            "max_retransmits",
            "jitter_us",
            "spike",
            "spike_delay_us",
        ])?;
        let mut c = ChaosConfig::new(r.u64("seed")?.unwrap_or(default_seed));
        if let Some(us) = r.u64("epoch_us")? {
            c.epoch = SimDuration::from_micros(us);
        }
        if let Some(p) = r.f64("link_flap")? {
            c.link_flap = p;
        }
        if let Some(p) = r.f64("pause")? {
            c.pause = p;
        }
        if let Some(p) = r.f64("partition")? {
            c.partition = p;
        }
        if let Some(g) = r.u32("partition_groups")? {
            c.partition_groups = g;
        }
        if let Some(e) = r.u32("hold_scan_epochs")? {
            c.hold_scan_epochs = e;
        }
        if let Some(p) = r.f64("loss")? {
            c.loss = p;
        }
        if let Some(us) = r.u64("retransmit_us")? {
            c.retransmit = SimDuration::from_micros(us);
        }
        if let Some(m) = r.u32("max_retransmits")? {
            c.max_retransmits = m;
        }
        if let Some(us) = r.u64("jitter_us")? {
            c.jitter = SimDuration::from_micros(us);
        }
        if let Some(p) = r.f64("spike")? {
            c.spike = p;
        }
        if let Some(us) = r.u64("spike_delay_us")? {
            c.spike_delay = SimDuration::from_micros(us);
        }
        Ok(c)
    }

    fn parse_asserts(t: &Table, file: &str) -> Result<Asserts, SimError> {
        let r = Reader::new(t, file, "[asserts]");
        r.reject_unknown(&[
            "cross_engine_identical",
            "conservation",
            "zero_stragglers",
            "min_messages",
            "max_sim_ms",
            "max_stragglers",
        ])?;
        let d = Asserts::default();
        Ok(Asserts {
            cross_engine_identical: r
                .bool("cross_engine_identical")?
                .unwrap_or(d.cross_engine_identical),
            conservation: r.bool("conservation")?.unwrap_or(d.conservation),
            zero_stragglers: r.bool("zero_stragglers")?.unwrap_or(d.zero_stragglers),
            min_messages: r.u64("min_messages")?,
            max_sim_ms: r.u64("max_sim_ms")?,
            max_stragglers: r.u64("max_stragglers")?,
        })
    }

    /// Builds the concatenated programs: phase `i` is generated with seed
    /// `seed + i` and its tags are shifted into the disjoint range
    /// `[i·2²², (i+1)·2²²)`, so sends of one phase can never match receives
    /// of another. The background tag (`u32::MAX`) is preserved.
    pub fn build_programs(&self) -> Result<Vec<Program>, SimError> {
        let mut per_rank: Vec<Vec<Op>> = vec![Vec::new(); self.nodes];
        for (i, phase) in self.phases.iter().enumerate() {
            let spec = phase.workload.build(self.nodes, self.seed + i as u64);
            let offset = (i as u32) << 22;
            for program in &spec.programs {
                let ops = per_rank
                    .get_mut(program.rank().index())
                    .expect("workload ranks fit the cluster");
                for op in program.ops() {
                    ops.push(remap_tag(*op, offset).map_err(|tag| {
                        verr(
                            &self.file,
                            format!(
                                "phase {i} ({}) uses tag {tag}, which exceeds the \
                                 per-phase tag span of {TAG_SPAN}",
                                phase.workload.name()
                            ),
                        )
                    })?);
                }
            }
        }
        Ok(per_rank
            .into_iter()
            .enumerate()
            .map(|(rank, ops)| Program::new(aqs_node::Rank::new(rank as u32), ops))
            .collect())
    }
}

/// Shifts an op's tag by `offset`, leaving the background tag alone.
/// Returns the offending tag when it falls outside the per-phase span.
fn remap_tag(op: Op, offset: u32) -> Result<Op, u32> {
    let shift = |tag: Tag| -> Result<Tag, u32> {
        let raw = tag.as_u32();
        if raw == u32::MAX {
            return Ok(tag); // background traffic stays phase-global
        }
        if raw >= TAG_SPAN {
            return Err(raw);
        }
        Ok(Tag::new(raw + offset))
    };
    Ok(match op {
        Op::Send { dst, bytes, tag } => Op::Send {
            dst,
            bytes,
            tag: shift(tag)?,
        },
        Op::Recv { src, tag } => Op::Recv {
            src,
            tag: shift(tag)?,
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
name = "mini"
nodes = 4
[[phases]]
workload = "burst"
"#;

    #[test]
    fn minimal_scenario_gets_the_defaults() {
        let sc = Scenario::from_str(MINIMAL, "<test>").expect("parses");
        assert_eq!(sc.name, "mini");
        assert_eq!(sc.nodes, 4);
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.policy, SyncConfig::ground_truth());
        assert_eq!(sc.engines.len(), 3);
        assert_eq!(sc.shards, vec![1, 2, 4]);
        assert_eq!(sc.topology, Topology::Perfect);
        assert!(sc.chaos.is_none());
        assert!(sc.asserts.cross_engine_identical);
        assert!(sc.asserts.conservation);
    }

    #[test]
    fn phases_remap_tags_into_disjoint_ranges() {
        let sc = Scenario::from_str(
            r#"
name = "two-phase"
nodes = 4
[[phases]]
workload = "pingpong"
rounds = 3
[[phases]]
workload = "pingpong"
rounds = 3
"#,
            "<test>",
        )
        .expect("parses");
        let programs = sc.build_programs().expect("builds");
        assert_eq!(programs.len(), 4);
        let tags: Vec<u32> = programs[0]
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Send { tag, .. } => Some(tag.as_u32()),
                _ => None,
            })
            .collect();
        assert!(!tags.is_empty());
        assert!(tags.iter().any(|t| *t < TAG_SPAN), "phase 0 in low range");
        assert!(
            tags.iter().any(|t| (TAG_SPAN..2 * TAG_SPAN).contains(t)),
            "phase 1 in second range: {tags:?}"
        );
    }

    #[test]
    fn chaos_and_asserts_parse() {
        let sc = Scenario::from_str(
            r#"
name = "chaotic"
nodes = 8
seed = 7
policy = "fixed:1"
engines = ["deterministic", "sharded"]
shards = [2]
[topology]
kind = "latency-matrix"
latency_us = 2
[[phases]]
workload = "gossip"
rounds = 2
[chaos]
link_flap = 0.05
loss = 0.1
retransmit_us = 150
jitter_us = 3
[asserts]
zero_stragglers = true
min_messages = 10
"#,
            "<test>",
        )
        .expect("parses");
        let chaos = sc.chaos.expect("chaos configured");
        assert_eq!(chaos.seed, 7, "chaos inherits the scenario seed");
        assert_eq!(chaos.loss, 0.1);
        assert_eq!(chaos.retransmit, SimDuration::from_micros(150));
        assert!(sc.asserts.zero_stragglers);
        assert_eq!(sc.asserts.min_messages, Some(10));
        assert!(matches!(sc.topology, Topology::LatencyMatrix { .. }));
    }

    #[test]
    fn rollback_engines_parse_and_accept_chaos() {
        // The blanket chaos rejection is scoped to the plain optimistic
        // engine (which routes with NIC minimum latency and bypasses the
        // switch): the checkpointing engines route every packet through the
        // chaos overlay like the conservative ones do.
        let sc = Scenario::from_str(
            r#"
name = "rollback"
nodes = 4
engines = ["deterministic", "sharded-optimistic", "hybrid"]
[[phases]]
workload = "burst"
[chaos]
loss = 0.1
retransmit_us = 100
"#,
            "<test>",
        )
        .expect("parses");
        assert_eq!(
            sc.engines,
            vec![
                EngineKind::Deterministic,
                EngineKind::ShardedOptimistic,
                EngineKind::Hybrid,
            ]
        );
        assert!(sc.chaos.is_some());
    }

    #[test]
    fn rejection_suite() {
        // (source, expect_parse_error, fragment)
        let cases: &[(&str, bool, &str)] = &[
            ("nodes = 4\n[[phases]]\nworkload = \"burst\"", false, "missing required key `name`"),
            ("name = \"x\"\n[[phases]]\nworkload = \"burst\"", false, "missing required key `nodes`"),
            ("name = \"x\"\nnodes = 1\n[[phases]]\nworkload = \"burst\"", false, "at least 2 nodes"),
            ("name = \"x\"\nnodes = 4", false, "at least one [[phases]]"),
            ("name = \"x\"\nnodes = 4\n[[phases]]\nworkload = \"no-such\"", true, "unknown workload"),
            ("name = \"x\"\nnodes = 4\n[[phases]]\nworkload = \"burst\"\nrounds = 3", true, "no parameter `rounds`"),
            ("name = \"x\"\nnodes = 4\npolicy = \"warp\"\n[[phases]]\nworkload = \"burst\"", true, "unknown policy"),
            ("name = \"x\"\nnodes = 4\nengines = [\"quantum\"]\n[[phases]]\nworkload = \"burst\"", true, "unknown engine"),
            ("name = \"x\"\nnodes = 4\nshards = [0]\n[[phases]]\nworkload = \"burst\"", false, "at least 1"),
            ("name = \"x\"\nnodes = 4\nbogus = 1\n[[phases]]\nworkload = \"burst\"", true, "unknown scenario key `bogus`"),
            ("name = \"x\"\nnodes = 4\n[typo]\n[[phases]]\nworkload = \"burst\"", true, "unknown table `[typo]`"),
            ("name = \"x\"\nnodes = 4\n[[phases]]\nworkload = \"burst\"\n[chaos]\nloss = 1.5", false, "invalid chaos"),
            (
                "name = \"x\"\nnodes = 4\nengines = [\"optimistic\"]\n[[phases]]\nworkload = \"burst\"\n[chaos]\nloss = 0.1",
                false,
                "does not support chaos",
            ),
            ("name = \"x\"\nnodes = 4\n[topology]\nkind = \"torus\"\n[[phases]]\nworkload = \"burst\"", true, "unknown topology"),
            ("name = \"x\"\nnodes = 4\n[topology]\nkind = \"latency-matrix\"\n[[phases]]\nworkload = \"burst\"", false, "needs `latency_us`"),
            ("name = \"x\"\nnodes = 4\n[topology]\nkind = \"perfect\"\nlatency_us = 2\n[[phases]]\nworkload = \"burst\"", true, "does not apply"),
            ("name = \"x\"\nnodes = -4\n[[phases]]\nworkload = \"burst\"", true, "non-negative"),
            ("name = 7\nnodes = 4\n[[phases]]\nworkload = \"burst\"", true, "expected a string"),
        ];
        for (src, parse_error, fragment) in cases {
            let err = Scenario::from_str(src, "<test>").expect_err(src);
            let text = err.to_string();
            assert!(text.contains(fragment), "{src:?}: got `{text}`");
            match (&err, parse_error) {
                (SimError::ScenarioParse { .. }, true)
                | (SimError::ScenarioValidate { .. }, false) => {}
                _ => panic!("{src:?}: wrong error kind {err:?}"),
            }
        }
    }

    #[test]
    fn parse_errors_point_at_the_line() {
        let err = Scenario::from_str(
            "name = \"x\"\nnodes = 4\n\nbogus = 1\n[[phases]]\nworkload = \"burst\"",
            "demo.toml",
        )
        .unwrap_err();
        match err {
            SimError::ScenarioParse { file, line, .. } => {
                assert_eq!(file, "demo.toml");
                assert_eq!(line, 4);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
