//! A minimal TOML-subset parser, hand-rolled for the offline build.
//!
//! The build container has no cargo registry, so scenario files cannot pull
//! in the real `toml` crate. This module parses exactly the subset the
//! scenario schema needs — and rejects everything else with a line-numbered
//! error:
//!
//! * `[table]` headers and `[[array-of-tables]]` headers (one segment,
//!   bare names only — no dotted keys);
//! * `key = value` pairs with bare keys;
//! * values: basic strings (`"…"`, no escape sequences), integers
//!   (optional sign, `_` separators), floats, booleans, and flat arrays.
//!
//! Comments (`#` to end of line, outside strings) and blank lines are
//! skipped. Duplicate keys and duplicate table headers are errors — a
//! scenario that says two different things is wrong, not last-writer-wins.

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure: 1-based line plus what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of values.
    Array(Vec<Value>),
}

impl Value {
    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` entry: the value plus the line it was written on.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the entry.
    pub line: usize,
}

/// A table: the entries under one `[header]` (or the document root).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Entries in key order.
    pub entries: BTreeMap<String, Item>,
    /// 1-based line of the table header (0 for the root table).
    pub line: usize,
}

impl Table {
    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.get(key)
    }
}

/// A parsed document: root entries, named tables, and arrays of tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Doc {
    /// Entries before the first header.
    pub root: Table,
    /// `[name]` tables.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays of tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

/// Which table subsequent `key = value` lines land in.
enum Target {
    Root,
    Table(String),
    Array(String),
}

/// Parses a document, failing on the first line it cannot understand.
pub fn parse(src: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut target = Target::Root;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw, lineno)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return err(lineno, "array-of-tables header must end with `]]`");
            };
            let name = check_key(name.trim(), lineno)?;
            if doc.tables.contains_key(&name) {
                return err(lineno, format!("`{name}` is already a plain table"));
            }
            doc.arrays.entry(name.clone()).or_default().push(Table {
                entries: BTreeMap::new(),
                line: lineno,
            });
            target = Target::Array(name);
        } else if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(lineno, "table header must end with `]`");
            };
            let name = check_key(name.trim(), lineno)?;
            if doc.tables.contains_key(&name) {
                return err(lineno, format!("duplicate table `[{name}]`"));
            }
            if doc.arrays.contains_key(&name) {
                return err(lineno, format!("`{name}` is already an array of tables"));
            }
            doc.tables.insert(
                name.clone(),
                Table {
                    entries: BTreeMap::new(),
                    line: lineno,
                },
            );
            target = Target::Table(name);
        } else {
            let Some(eq) = find_top_level_eq(line) else {
                return err(lineno, "expected `key = value`, a `[table]`, or a comment");
            };
            let key = check_key(line[..eq].trim(), lineno)?;
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = match &target {
                Target::Root => &mut doc.root,
                Target::Table(name) => doc.tables.get_mut(name).expect("current table exists"),
                Target::Array(name) => doc
                    .arrays
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .expect("current array table exists"),
            };
            if table.entries.contains_key(&key) {
                return err(lineno, format!("duplicate key `{key}`"));
            }
            table.entries.insert(
                key,
                Item {
                    value,
                    line: lineno,
                },
            );
        }
    }
    Ok(doc)
}

/// Removes a trailing `#` comment, respecting strings. Rejects backslashes
/// inside strings (escape sequences are outside the subset) and unclosed
/// strings.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, ParseError> {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '\\' if in_string => {
                return err(lineno, "escape sequences in strings are not supported");
            }
            '#' if !in_string => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_string {
        return err(lineno, "unclosed string");
    }
    Ok(line)
}

/// Position of the first `=` outside any string, if any.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '=' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validates a bare key / table name: `[A-Za-z0-9_-]+`.
fn check_key(key: &str, lineno: usize) -> Result<String, ParseError> {
    if key.is_empty() {
        return err(lineno, "empty key");
    }
    if let Some(bad) = key
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return err(
            lineno,
            format!("invalid character `{bad}` in key `{key}` (bare keys only)"),
        );
    }
    Ok(key.to_string())
}

fn parse_value(s: &str, lineno: usize) -> Result<Value, ParseError> {
    if s.is_empty() {
        return err(lineno, "missing value after `=`");
    }
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(lineno, "unclosed string");
        };
        if inner.contains('"') {
            return err(lineno, "only one string per value");
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return err(lineno, "unclosed array");
        };
        let mut items = Vec::new();
        for part in split_array_items(inner, lineno)? {
            items.push(parse_value(part.trim(), lineno)?);
        }
        return Ok(Value::Array(items));
    }
    parse_number(s, lineno)
}

/// Splits the inside of a (flat or nested) array on top-level commas. A
/// trailing comma is allowed, empty elements are not.
fn split_array_items(inner: &str, lineno: usize) -> Result<Vec<&str>, ParseError> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                if depth == 0 {
                    return err(lineno, "unbalanced `]` in array");
                }
                depth -= 1;
            }
            ',' if !in_string && depth == 0 => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return err(lineno, "unclosed string in array");
    }
    if depth != 0 {
        return err(lineno, "unbalanced `[` in array");
    }
    // A trailing comma leaves an empty tail, which is fine; an empty
    // element *between* commas is caught below.
    if !inner[start..].trim().is_empty() {
        parts.push(&inner[start..]);
    }
    for p in &parts {
        if p.trim().is_empty() {
            return err(lineno, "empty array element");
        }
    }
    Ok(parts)
}

fn parse_number(s: &str, lineno: usize) -> Result<Value, ParseError> {
    let cleaned: String = s.chars().filter(|c| *c != '_').collect();
    let looks_float = cleaned.contains(['.', 'e', 'E']);
    if looks_float {
        if let Ok(f) = cleaned.parse::<f64>() {
            if !f.is_finite() {
                return err(lineno, format!("non-finite float `{s}`"));
            }
            return Ok(Value::Float(f));
        }
    } else if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    err(lineno, format!("cannot parse value `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let doc = parse(
            r#"
# a scenario
name = "demo"      # trailing comment
nodes = 8
ratio = 0.25
big = 1_000_000
flag = true

[chaos]
loss = 0.1
shards = [1, 2, 4]
names = ["a", "b"]

[[phases]]
workload = "gossip"

[[phases]]
workload = "burst"
compute = -5
"#,
        )
        .expect("parses");
        assert_eq!(
            doc.root.get("name").unwrap().value,
            Value::Str("demo".into())
        );
        assert_eq!(doc.root.get("nodes").unwrap().value, Value::Int(8));
        assert_eq!(doc.root.get("ratio").unwrap().value, Value::Float(0.25));
        assert_eq!(doc.root.get("big").unwrap().value, Value::Int(1_000_000));
        assert_eq!(doc.root.get("flag").unwrap().value, Value::Bool(true));
        let chaos = &doc.tables["chaos"];
        assert_eq!(chaos.get("loss").unwrap().value, Value::Float(0.1));
        assert_eq!(
            chaos.get("shards").unwrap().value,
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(4)])
        );
        let phases = &doc.arrays["phases"];
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].get("compute").unwrap().value, Value::Int(-5));
    }

    #[test]
    fn errors_carry_the_line_number() {
        for (src, want_line, want_fragment) in [
            ("nodes 8", 1, "expected `key = value`"),
            ("\nname = \"a\"\nname = \"b\"", 3, "duplicate key"),
            ("[a]\nx = 1\n[a]", 3, "duplicate table"),
            ("[[p]]\n[p]", 2, "already an array of tables"),
            ("[p]\n[[p]]", 2, "already a plain table"),
            ("x = \"unclosed", 1, "unclosed string"),
            ("x = \"a\\n\"", 1, "escape sequences"),
            ("x = [1, ]2", 1, "unclosed array"),
            ("x = [1,,2]", 1, "empty array element"),
            ("x = 1.2.3", 1, "cannot parse"),
            ("x =", 1, "missing value"),
            ("a.b = 1", 1, "invalid character `.`"),
            ("[t", 1, "must end with `]`"),
            ("x = nan", 1, "cannot parse"),
        ] {
            let e = parse(src).expect_err(src);
            assert_eq!(e.line, want_line, "{src}: {e}");
            assert!(e.message.contains(want_fragment), "{src}: {e}");
        }
    }

    #[test]
    fn comments_do_not_hide_inside_strings() {
        let doc = parse("x = \"a # b\"").unwrap();
        assert_eq!(doc.root.get("x").unwrap().value, Value::Str("a # b".into()));
    }

    #[test]
    fn trailing_comma_in_array_is_allowed() {
        let doc = parse("x = [1, 2,]").unwrap();
        assert_eq!(
            doc.root.get("x").unwrap().value,
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
