//! Declarative scenario files for the cluster simulator.
//!
//! A scenario is a small TOML file (parsed by the offline [`toml`] subset
//! parser — the build container has no registry access) describing a
//! multi-phase experiment: cluster size, topology, synchronization policy,
//! a sequence of workload phases, optional seeded chaos injection, and the
//! properties the runs must satisfy. The [`runner`] executes it on every
//! configured engine × worker-count combination and checks that they all
//! agree bit for bit — the repo's differential-testing story, scriptable
//! from a file:
//!
//! ```toml
//! name  = "demo"
//! nodes = 4
//!
//! [[phases]]
//! workload = "ml-allreduce"
//! steps = 2
//!
//! [chaos]
//! link_flap = 0.05
//! loss = 0.1
//! retransmit_us = 150
//! ```
//!
//! Chaos is deterministic middleware ([`aqs_net::ChaosOverlay`]): every
//! fault draw is a pure function of `(seed, epoch, flow)`, so the same
//! scenario file produces the same faults — and the same simulated outcome
//! — on the deterministic, threaded, and sharded engines, for every worker
//! count. See the schema in [`model`] and the corpus under `scenarios/`.
//!
//! # Examples
//!
//! ```
//! use aqs_scenario::{run_scenario, Scenario};
//!
//! let scenario = Scenario::from_str(
//!     r#"
//! name = "doc"
//! nodes = 4
//! [[phases]]
//! workload = "pingpong"
//! rounds = 5
//! "#,
//!     "<doc>",
//! )
//! .unwrap();
//! let report = run_scenario(&scenario).unwrap();
//! assert!(report.checks.iter().any(|c| c.contains("cross_engine_identical")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod runner;
pub mod toml;

pub use model::{Asserts, Phase, Scenario, Topology};
pub use runner::{run_scenario, run_scenario_file, EngineRun, ScenarioError, ScenarioReport};
