//! Runs a [`Scenario`]: every engine × worker-count combination on the same
//! concatenated programs, then the property assertions over the reports.

use crate::model::Scenario;
use aqs_cluster::{EngineKind, RunReport, Sim, SimError, SimulatedOutcome};
use std::fmt;

/// One engine run inside a scenario execution.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Display label (`deterministic`, `sharded m=2`, …).
    pub label: String,
    /// The engine's report.
    pub report: RunReport,
}

/// The result of a successful scenario execution: every configured run
/// completed and every assertion held.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Cluster size.
    pub nodes: usize,
    /// Number of workload phases.
    pub phases: usize,
    /// Whether chaos injection was active.
    pub chaos: bool,
    /// Every engine run, in execution order.
    pub runs: Vec<EngineRun>,
    /// The (shared, when `cross_engine_identical` holds) functional outcome
    /// of the first run.
    pub outcome: SimulatedOutcome,
    /// Human-readable descriptions of the assertions that passed.
    pub checks: Vec<String>,
}

/// Why a scenario execution failed.
#[derive(Clone, Debug)]
pub enum ScenarioError {
    /// The scenario file was invalid (parse/validation), before any run.
    Sim(SimError),
    /// One engine run failed mid-scenario. The label names the engine ×
    /// worker-count combination; when the failure reproduces on a single
    /// phase in isolation, `phase` names the first phase that does.
    Run {
        /// The scenario that failed.
        scenario: String,
        /// The engine run that failed (`sharded m=2`, …).
        label: String,
        /// First phase reproducing the failure in isolation, as
        /// `(index, workload name)` — `None` when the failure only
        /// manifests with the phases concatenated.
        phase: Option<(usize, String)>,
        /// The engine's typed error (boxed to keep the `Err` variant
        /// small — `clippy::result_large_err`).
        error: Box<SimError>,
    },
    /// The runs completed but an assertion failed.
    Assert {
        /// The scenario that failed.
        scenario: String,
        /// Every failed assertion, one message each (each names the
        /// assertion and the offending run).
        failures: Vec<String>,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Sim(e) => write!(f, "{e}"),
            ScenarioError::Run {
                scenario,
                label,
                phase,
                error,
            } => {
                write!(f, "scenario `{scenario}`: run `{label}` failed")?;
                if let Some((i, name)) = phase {
                    write!(f, " in phase {i} ({name})")?;
                }
                write!(f, ": {error}")
            }
            ScenarioError::Assert { scenario, failures } => {
                write!(
                    f,
                    "scenario `{scenario}`: {} assertion(s) failed:",
                    failures.len()
                )?;
                for failure in failures {
                    write!(f, "\n  - {failure}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

/// Replays each phase in isolation on the deterministic engine and returns
/// the first one that reproduces a failure. A deadlock or cap overflow in
/// the concatenated run is almost always one phase's workload; naming it
/// turns "scenario failed" into an actionable report. Phases are capped at
/// a generous quantum budget so a hung phase attributes instead of hanging
/// the attribution.
fn attribute_failing_phase(scenario: &Scenario) -> Option<(usize, String)> {
    for (i, phase) in scenario.phases.iter().enumerate() {
        let spec = phase
            .workload
            .build(scenario.nodes, scenario.seed + i as u64);
        let mut sim = Sim::new(spec.programs)
            .sync(scenario.policy.clone())
            .seed(scenario.seed)
            .max_quanta(10_000_000)
            .switch(scenario.topology.switch(scenario.nodes));
        if let Some(chaos) = scenario.chaos {
            sim = sim.chaos(chaos);
        }
        if sim.try_run().is_err() {
            return Some((i, phase.workload.name().to_string()));
        }
    }
    None
}

/// Loads, runs, and checks the scenario at `path`.
pub fn run_scenario_file(path: &str) -> Result<ScenarioReport, ScenarioError> {
    let scenario = Scenario::load(path)?;
    run_scenario(&scenario)
}

/// Runs and checks a parsed scenario.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    let programs = scenario.build_programs()?;
    let expected_recvs: u64 = programs.iter().map(|p| p.recv_count() as u64).sum();

    let mut runs = Vec::new();
    for &engine in &scenario.engines {
        // Every engine on the sharded substrate sweeps the configured worker
        // counts; the single-timeline engines run once.
        let sharded_substrate = matches!(
            engine,
            EngineKind::Sharded | EngineKind::ShardedOptimistic | EngineKind::Hybrid
        );
        let worker_counts: Vec<Option<usize>> = if sharded_substrate {
            scenario.shards.iter().map(|m| Some(*m)).collect()
        } else {
            vec![None]
        };
        for m in worker_counts {
            let mut sim = Sim::new(programs.clone())
                .engine(engine)
                .sync(scenario.policy.clone())
                .seed(scenario.seed)
                .switch(scenario.topology.switch(scenario.nodes));
            if let Some(chaos) = scenario.chaos {
                sim = sim.chaos(chaos);
            }
            let label = match m {
                Some(m) => {
                    sim = sim.shards(m);
                    format!("{} m={m}", engine.name())
                }
                None => engine.name().to_string(),
            };
            let report = match sim.try_run() {
                Ok(r) => r,
                Err(error) => {
                    // Only engine-runtime failures can be a phase's fault;
                    // configuration rejections concern the whole scenario.
                    let phase = match &error {
                        SimError::Deadlock { .. }
                        | SimError::QuantumCapExceeded { .. }
                        | SimError::WindowNonConvergence { .. }
                        | SimError::EngineInvariant { .. } => attribute_failing_phase(scenario),
                        _ => None,
                    };
                    return Err(ScenarioError::Run {
                        scenario: scenario.name.clone(),
                        label,
                        phase,
                        error: Box::new(error),
                    });
                }
            };
            runs.push(EngineRun { label, report });
        }
    }

    let outcome = runs[0].report.simulated_outcome();
    let mut checks = Vec::new();
    let mut failures = Vec::new();
    let asserts = &scenario.asserts;

    if asserts.cross_engine_identical {
        let mut identical = true;
        for run in &runs[1..] {
            let other = run.report.simulated_outcome();
            if other != outcome {
                identical = false;
                failures.push(format!(
                    "cross_engine_identical: `{}` diverged from `{}` \
                     (sim_end {} vs {}, messages {} vs {})",
                    run.label,
                    runs[0].label,
                    other.sim_end,
                    outcome.sim_end,
                    other.messages_received,
                    outcome.messages_received,
                ));
            }
        }
        if identical {
            checks.push(format!(
                "cross_engine_identical: {} runs produced one bit-identical outcome",
                runs.len()
            ));
        }
    }

    if asserts.conservation {
        let mut conserved = true;
        for run in &runs {
            if run.report.messages_received != expected_recvs {
                conserved = false;
                failures.push(format!(
                    "conservation: `{}` received {} messages, programs posted {} receives",
                    run.label, run.report.messages_received, expected_recvs
                ));
            }
        }
        if conserved {
            checks.push(format!(
                "conservation: all {expected_recvs} posted receives completed in every run"
            ));
        }
    }

    if asserts.zero_stragglers {
        let mut clean = true;
        for run in &runs {
            let count = run.report.stragglers.count();
            if count > 0 {
                clean = false;
                failures.push(format!(
                    "zero_stragglers: `{}` observed {count} stragglers",
                    run.label
                ));
            }
        }
        if clean {
            checks.push("zero_stragglers: no run observed a straggler".to_string());
        }
    }

    if let Some(max) = asserts.max_stragglers {
        let worst = runs
            .iter()
            .map(|r| r.report.stragglers.count())
            .max()
            .unwrap_or(0);
        if worst > max {
            failures.push(format!(
                "max_stragglers: worst run observed {worst} stragglers (cap {max})"
            ));
        } else {
            checks.push(format!("max_stragglers: worst run {worst} <= {max}"));
        }
    }

    if let Some(min) = asserts.min_messages {
        if outcome.messages_received < min {
            failures.push(format!(
                "min_messages: `{}` received only {} messages (need at least {min})",
                runs[0].label, outcome.messages_received
            ));
        } else {
            checks.push(format!(
                "min_messages: {} >= {min}",
                outcome.messages_received
            ));
        }
    }

    if let Some(ms) = asserts.max_sim_ms {
        let cap_nanos = ms.saturating_mul(1_000_000);
        if outcome.sim_end.as_nanos() > cap_nanos {
            failures.push(format!(
                "max_sim_ms: `{}` simulated end {} exceeds {ms} ms",
                runs[0].label, outcome.sim_end
            ));
        } else {
            checks.push(format!("max_sim_ms: {} <= {ms} ms", outcome.sim_end));
        }
    }

    if !failures.is_empty() {
        return Err(ScenarioError::Assert {
            scenario: scenario.name.clone(),
            failures,
        });
    }

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        nodes: scenario.nodes,
        phases: scenario.phases.len(),
        chaos: scenario.chaos.is_some(),
        runs,
        outcome,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(src: &str) -> Scenario {
        Scenario::from_str(src, "<test>").expect("scenario parses")
    }

    #[test]
    fn clean_scenario_passes_default_asserts() {
        let report = run_scenario(&scenario(
            r#"
name = "clean"
nodes = 4
shards = [1, 2]
[[phases]]
workload = "burst"
compute = 20000
[[phases]]
workload = "pingpong"
rounds = 5
"#,
        ))
        .expect("passes");
        // deterministic + threaded + sharded m=1 + sharded m=2
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.phases, 2);
        assert!(!report.chaos);
        assert!(report.checks.iter().any(|c| c.contains("cross_engine")));
        assert!(report.outcome.messages_received > 0);
    }

    #[test]
    fn chaos_scenario_stays_identical_and_slower() {
        let base = r#"
name = "chaotic"
nodes = 4
shards = [1, 2, 4]
[[phases]]
workload = "burst"
compute = 20000
bytes = 4096
"#;
        let clean = run_scenario(&scenario(base)).expect("clean passes");
        let chaotic = run_scenario(&scenario(&format!(
            "{base}\n[chaos]\nlink_flap = 0.1\nloss = 0.2\nretransmit_us = 150\njitter_us = 3\n"
        )))
        .expect("chaos passes");
        assert!(chaotic.chaos);
        assert_eq!(
            clean.outcome.messages_received, chaotic.outcome.messages_received,
            "chaos only delays, never loses"
        );
        assert!(
            chaotic.outcome.sim_end > clean.outcome.sim_end,
            "faults must delay completion"
        );
    }

    #[test]
    fn failed_assertion_lists_every_failure() {
        let err = run_scenario(&scenario(
            r#"
name = "impossible"
nodes = 4
engines = ["deterministic"]
[[phases]]
workload = "pingpong"
rounds = 2
[asserts]
min_messages = 1000000
max_sim_ms = 0
"#,
        ))
        .expect_err("must fail");
        match err {
            ScenarioError::Assert { scenario, failures } => {
                assert_eq!(scenario, "impossible");
                assert_eq!(failures.len(), 2, "{failures:?}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn failed_run_names_the_engine_combination() {
        // The optimistic engine rejects a latency-matrix topology at run
        // time; the error must say which run died, not just bubble the
        // bare SimError.
        let err = run_scenario(&scenario(
            r#"
name = "bad-combo"
nodes = 4
engines = ["optimistic"]
[topology]
kind = "latency-matrix"
latency_us = 5
[[phases]]
workload = "pingpong"
rounds = 2
"#,
        ))
        .expect_err("must fail");
        match &err {
            ScenarioError::Run {
                scenario,
                label,
                phase,
                error,
            } => {
                assert_eq!(scenario, "bad-combo");
                assert_eq!(label, "optimistic");
                assert_eq!(*phase, None, "a config rejection is not a phase's fault");
                assert!(
                    matches!(**error, SimError::UnsupportedSwitch { .. }),
                    "got {error:?}"
                );
            }
            other => panic!("wrong error: {other}"),
        }
        let text = err.to_string();
        assert!(text.contains("run `optimistic` failed"), "{text}");
    }

    #[test]
    fn sim_rejections_pass_through_typed() {
        // 4 phases of gossip on 3 nodes is fine; an invalid chaos config is
        // caught at scenario parse, so exercise a Sim-level rejection via
        // too-large shard count — which the sharded engine accepts (workers
        // idle), so instead check the typed error from a bad file path.
        let err = run_scenario_file("/no/such/scenario.toml").expect_err("must fail");
        match err {
            ScenarioError::Sim(SimError::ScenarioParse { line, .. }) => assert_eq!(line, 0),
            other => panic!("wrong error: {other}"),
        }
    }
}
