//! The per-quantum ring-buffer flight recorder.

use crate::hist::Log2Histogram;
use crate::recorder::{QuantumObs, Recorder};
use aqs_time::{SimDuration, SimTime};

/// Configuration of a [`FlightRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Number of most-recent quanta retained in the ring buffer. Aggregate
    /// histograms and counters always cover the whole run regardless.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 4096,
        }
    }
}

impl ObsConfig {
    /// Default configuration (4096-quantum ring).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        self.ring_capacity = capacity;
        self
    }
}

/// Fixed-size part of one recorded quantum.
#[derive(Clone, Copy, Debug, Default)]
struct SampleFixed {
    index: u64,
    start_ns: u64,
    len_ns: u64,
    packets: u64,
    active_nodes: u64,
    stragglers: u64,
    max_straggler_delay_ns: u64,
}

/// Per-quantum flight recorder with whole-run aggregate histograms.
///
/// All storage is allocated at construction: the ring holds the fixed part
/// of each sample in one flat `Vec` and the per-node lanes (barrier wait,
/// virtual-time lag) in another, so [`Recorder::record_quantum`] never
/// allocates. When the ring wraps, the oldest samples are dropped but the
/// aggregate histograms and counters keep covering every quantum of the run.
///
/// # Examples
///
/// ```
/// use aqs_obs::{FlightRecorder, ObsConfig, QuantumObs, Recorder};
/// use aqs_time::{SimDuration, SimTime};
///
/// let mut fr = FlightRecorder::new(2, ObsConfig::new());
/// fr.record_quantum(&QuantumObs {
///     index: 0,
///     start: SimTime::ZERO,
///     len: SimDuration::from_micros(1),
///     packets: 3,
///     active_nodes: 2,
///     stragglers: 0,
///     max_straggler_delay: SimDuration::ZERO,
///     barrier_wait_ns: &[10, 0],
///     vt_lag_ns: &[0, 400],
/// });
/// assert_eq!(fr.total_quanta(), 1);
/// assert_eq!(fr.total_packets(), 3);
/// assert_eq!(fr.samples().next().unwrap().packets, 3);
/// ```
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    n_nodes: usize,
    cap: usize,
    /// Physical index of the next slot to overwrite.
    head: usize,
    /// Valid samples in the ring (`<= cap`).
    len: usize,
    fixed: Vec<SampleFixed>,
    /// `cap * n_nodes * 2` lane values: per slot, `n_nodes` barrier waits
    /// followed by `n_nodes` virtual-time lags.
    lanes: Vec<u64>,
    total_quanta: u64,
    total_packets: u64,
    total_active_nodes: u64,
    total_stragglers: u64,
    quantum_len: Log2Histogram,
    straggler_delay: Log2Histogram,
    barrier_wait: Log2Histogram,
    vt_lag: Log2Histogram,
    checkpoints: u64,
    rollbacks: u64,
    wasted_ns: u64,
    /// Per-fabric-link aggregates, lazily sized on the first
    /// [`Recorder::record_link_load`] call (empty when the run had no
    /// modeled fabric): cumulative bytes, cumulative packets, and the peak
    /// per-quantum bytes seen on each link.
    link_bytes: Vec<u64>,
    link_packets: Vec<u64>,
    link_peak_bytes: Vec<u64>,
    /// Per-shard rollback attribution, lazily sized on the first
    /// [`Recorder::record_shard_rollbacks`] call (empty when the run had no
    /// sharded optimistic engine): cumulative checkpoints, rollbacks, and
    /// wasted simulated nanoseconds per shard.
    shard_checkpoints: Vec<u64>,
    shard_rollbacks: Vec<u64>,
    shard_wasted_ns: Vec<u64>,
    /// Per-shard active-node attribution, lazily sized on the first
    /// [`Recorder::record_shard_activity`] call (empty when the run had no
    /// active-set engine): cumulative executed-node counts per shard.
    shard_active_nodes: Vec<u64>,
}

/// Per-link load aggregates captured from a modeled fabric, borrowed from a
/// [`FlightRecorder`] (see [`FlightRecorder::link_load`]). All slices are
/// indexed by fabric link id and share one length.
#[derive(Clone, Copy, Debug)]
pub struct LinkLoadStats<'a> {
    /// Cumulative bytes per link over the whole run.
    pub bytes: &'a [u64],
    /// Cumulative packets per link over the whole run.
    pub packets: &'a [u64],
    /// Highest single-quantum byte count seen per link — a proxy for the
    /// link's worst queue pressure.
    pub peak_quantum_bytes: &'a [u64],
}

impl LinkLoadStats<'_> {
    /// The busiest link by cumulative bytes: `(link id, bytes)`.
    pub fn hottest(&self) -> Option<(usize, u64)> {
        self.bytes
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, b)| b)
    }

    /// Bytes summed over every link.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// Per-shard rollback attribution captured from a sharded optimistic run,
/// borrowed from a [`FlightRecorder`] (see
/// [`FlightRecorder::shard_rollback_stats`]). All slices are indexed by
/// shard and share one length.
#[derive(Clone, Copy, Debug)]
pub struct ShardRollbackStats<'a> {
    /// Cumulative checkpoints taken per shard over the whole run.
    pub checkpoints: &'a [u64],
    /// Cumulative rollbacks per shard over the whole run.
    pub rollbacks: &'a [u64],
    /// Cumulative wasted (re-executed) simulated nanoseconds per shard.
    pub wasted_ns: &'a [u64],
}

impl ShardRollbackStats<'_> {
    /// Rollbacks summed over every shard.
    pub fn total_rollbacks(&self) -> u64 {
        self.rollbacks.iter().sum()
    }

    /// Checkpoints summed over every shard.
    pub fn total_checkpoints(&self) -> u64 {
        self.checkpoints.iter().sum()
    }

    /// Wasted simulated nanoseconds summed over every shard.
    pub fn total_wasted_ns(&self) -> u64 {
        self.wasted_ns.iter().sum()
    }

    /// The shard that rolled back most: `(shard id, rollbacks)`.
    pub fn worst_shard(&self) -> Option<(usize, u64)> {
        self.rollbacks
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, r)| r)
    }
}

impl FlightRecorder {
    /// Creates a recorder for a cluster of `n_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or the configured ring capacity is zero.
    pub fn new(n_nodes: usize, config: ObsConfig) -> Self {
        assert!(n_nodes > 0, "flight recorder needs at least one node");
        assert!(config.ring_capacity > 0, "ring capacity must be positive");
        let cap = config.ring_capacity;
        Self {
            n_nodes,
            cap,
            head: 0,
            len: 0,
            fixed: vec![SampleFixed::default(); cap],
            lanes: vec![0; cap * n_nodes * 2],
            total_quanta: 0,
            total_packets: 0,
            total_active_nodes: 0,
            total_stragglers: 0,
            quantum_len: Log2Histogram::new(),
            straggler_delay: Log2Histogram::new(),
            barrier_wait: Log2Histogram::new(),
            vt_lag: Log2Histogram::new(),
            checkpoints: 0,
            rollbacks: 0,
            wasted_ns: 0,
            link_bytes: Vec::new(),
            link_packets: Vec::new(),
            link_peak_bytes: Vec::new(),
            shard_checkpoints: Vec::new(),
            shard_rollbacks: Vec::new(),
            shard_wasted_ns: Vec::new(),
            shard_active_nodes: Vec::new(),
        }
    }

    /// Number of nodes the per-quantum lanes are sized for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Samples currently held in the ring.
    pub fn ring_len(&self) -> usize {
        self.len
    }

    /// Quanta recorded over the whole run (including any evicted from the
    /// ring).
    pub fn total_quanta(&self) -> u64 {
        self.total_quanta
    }

    /// Quanta dropped from the ring because it wrapped.
    pub fn dropped(&self) -> u64 {
        self.total_quanta - self.len as u64
    }

    /// Packets summed over every recorded quantum.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Stragglers summed over every recorded quantum.
    pub fn total_stragglers(&self) -> u64 {
        self.total_stragglers
    }

    /// Executed-node counts summed over every recorded quantum. Dividing by
    /// `total_quanta × n_nodes` gives the run's activity ratio.
    pub fn total_active_nodes(&self) -> u64 {
        self.total_active_nodes
    }

    /// Per-shard cumulative executed-node counts, when the run used an
    /// active-set engine (`None` otherwise). Indexed by shard.
    pub fn shard_activity(&self) -> Option<&[u64]> {
        if self.shard_active_nodes.is_empty() {
            return None;
        }
        Some(&self.shard_active_nodes)
    }

    /// Histogram of quantum lengths (ns).
    pub fn quantum_len_hist(&self) -> &Log2Histogram {
        &self.quantum_len
    }

    /// Histogram of per-quantum maximum straggler delays (ns), over
    /// straggling quanta only.
    pub fn straggler_delay_hist(&self) -> &Log2Histogram {
        &self.straggler_delay
    }

    /// Histogram of per-node barrier waits (host ns).
    pub fn barrier_wait_hist(&self) -> &Log2Histogram {
        &self.barrier_wait
    }

    /// Histogram of per-node virtual-time lags (sim ns).
    pub fn vt_lag_hist(&self) -> &Log2Histogram {
        &self.vt_lag
    }

    /// Checkpoints reported by the engine (optimistic only).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Rollbacks reported by the engine (optimistic only).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Simulated time re-executed due to rollbacks.
    pub fn wasted_sim(&self) -> SimDuration {
        SimDuration::from_nanos(self.wasted_ns)
    }

    /// Per-link load aggregates, when the run routed through a modeled
    /// fabric (`None` otherwise).
    pub fn link_load(&self) -> Option<LinkLoadStats<'_>> {
        if self.link_bytes.is_empty() {
            return None;
        }
        Some(LinkLoadStats {
            bytes: &self.link_bytes,
            packets: &self.link_packets,
            peak_quantum_bytes: &self.link_peak_bytes,
        })
    }

    /// Per-shard rollback attribution, when the run used a sharded
    /// optimistic engine (`None` otherwise).
    pub fn shard_rollback_stats(&self) -> Option<ShardRollbackStats<'_>> {
        if self.shard_rollbacks.is_empty() {
            return None;
        }
        Some(ShardRollbackStats {
            checkpoints: &self.shard_checkpoints,
            rollbacks: &self.shard_rollbacks,
            wasted_ns: &self.shard_wasted_ns,
        })
    }

    /// Ring samples, oldest first. Each item borrows its per-node lanes
    /// straight from the ring storage.
    pub fn samples(&self) -> impl Iterator<Item = QuantumObs<'_>> {
        (0..self.len).map(move |logical| {
            let slot = (self.head + self.cap - self.len + logical) % self.cap;
            let f = &self.fixed[slot];
            let base = slot * self.n_nodes * 2;
            QuantumObs {
                index: f.index,
                start: SimTime::from_nanos(f.start_ns),
                len: SimDuration::from_nanos(f.len_ns),
                packets: f.packets,
                active_nodes: f.active_nodes,
                stragglers: f.stragglers,
                max_straggler_delay: SimDuration::from_nanos(f.max_straggler_delay_ns),
                barrier_wait_ns: &self.lanes[base..base + self.n_nodes],
                vt_lag_ns: &self.lanes[base + self.n_nodes..base + 2 * self.n_nodes],
            }
        })
    }
}

impl Recorder for FlightRecorder {
    const ENABLED: bool = true;

    fn record_quantum(&mut self, obs: &QuantumObs<'_>) {
        debug_assert!(
            obs.barrier_wait_ns.is_empty() || obs.barrier_wait_ns.len() == self.n_nodes,
            "barrier_wait lane arity mismatch"
        );
        debug_assert!(
            obs.vt_lag_ns.is_empty() || obs.vt_lag_ns.len() == self.n_nodes,
            "vt_lag lane arity mismatch"
        );
        let slot = self.head;
        self.fixed[slot] = SampleFixed {
            index: obs.index,
            start_ns: obs.start.as_nanos(),
            len_ns: obs.len.as_nanos(),
            packets: obs.packets,
            active_nodes: obs.active_nodes,
            stragglers: obs.stragglers,
            max_straggler_delay_ns: obs.max_straggler_delay.as_nanos(),
        };
        let base = slot * self.n_nodes * 2;
        let (waits, lags) = self.lanes[base..base + 2 * self.n_nodes].split_at_mut(self.n_nodes);
        if obs.barrier_wait_ns.len() == self.n_nodes {
            waits.copy_from_slice(obs.barrier_wait_ns);
        } else {
            waits.fill(0);
        }
        if obs.vt_lag_ns.len() == self.n_nodes {
            lags.copy_from_slice(obs.vt_lag_ns);
        } else {
            lags.fill(0);
        }
        self.head = (slot + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
        self.total_quanta += 1;
        self.total_packets += obs.packets;
        self.total_active_nodes += obs.active_nodes;
        self.total_stragglers += obs.stragglers;
        self.quantum_len.record(obs.len.as_nanos());
        if obs.stragglers > 0 {
            self.straggler_delay
                .record(obs.max_straggler_delay.as_nanos());
        }
        for &w in obs.barrier_wait_ns {
            self.barrier_wait.record(w);
        }
        for &l in obs.vt_lag_ns {
            self.vt_lag.record(l);
        }
    }

    fn record_checkpoints(&mut self, n: u64) {
        self.checkpoints += n;
    }

    fn record_shard_activity(&mut self, active: &[u64]) {
        if self.shard_active_nodes.is_empty() {
            self.shard_active_nodes = vec![0; active.len()];
        }
        debug_assert_eq!(self.shard_active_nodes.len(), active.len());
        for (slot, &a) in self.shard_active_nodes.iter_mut().zip(active) {
            *slot += a;
        }
    }

    fn record_link_load(&mut self, link_bytes: &[u64], link_packets: &[u64]) {
        debug_assert_eq!(
            link_bytes.len(),
            link_packets.len(),
            "link lane arity mismatch"
        );
        if self.link_bytes.is_empty() {
            self.link_bytes = vec![0; link_bytes.len()];
            self.link_packets = vec![0; link_bytes.len()];
            self.link_peak_bytes = vec![0; link_bytes.len()];
        }
        debug_assert_eq!(self.link_bytes.len(), link_bytes.len());
        for (i, (&b, &p)) in link_bytes.iter().zip(link_packets).enumerate() {
            self.link_bytes[i] += b;
            self.link_packets[i] += p;
            self.link_peak_bytes[i] = self.link_peak_bytes[i].max(b);
        }
    }

    fn record_rollback(&mut self, wasted: SimDuration) {
        self.rollbacks += 1;
        self.wasted_ns = self.wasted_ns.saturating_add(wasted.as_nanos());
    }

    fn record_shard_rollbacks(
        &mut self,
        checkpoints: &[u64],
        rollbacks: &[u64],
        wasted_ns: &[u64],
    ) {
        debug_assert_eq!(
            checkpoints.len(),
            rollbacks.len(),
            "shard lane arity mismatch"
        );
        debug_assert_eq!(
            rollbacks.len(),
            wasted_ns.len(),
            "shard lane arity mismatch"
        );
        if self.shard_rollbacks.is_empty() {
            self.shard_checkpoints = vec![0; rollbacks.len()];
            self.shard_rollbacks = vec![0; rollbacks.len()];
            self.shard_wasted_ns = vec![0; rollbacks.len()];
        }
        debug_assert_eq!(self.shard_rollbacks.len(), rollbacks.len());
        for (i, ((&c, &r), &w)) in checkpoints.iter().zip(rollbacks).zip(wasted_ns).enumerate() {
            self.shard_checkpoints[i] += c;
            self.shard_rollbacks[i] += r;
            self.shard_wasted_ns[i] = self.shard_wasted_ns[i].saturating_add(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(index: u64, packets: u64, waits: &'a [u64], lags: &'a [u64]) -> QuantumObs<'a> {
        QuantumObs {
            index,
            start: SimTime::from_nanos(index * 1000),
            len: SimDuration::from_nanos(1000),
            packets,
            active_nodes: 2,
            stragglers: 0,
            max_straggler_delay: SimDuration::ZERO,
            barrier_wait_ns: waits,
            vt_lag_ns: lags,
        }
    }

    #[test]
    fn records_and_iterates_in_order() {
        let mut fr = FlightRecorder::new(2, ObsConfig::new().with_ring_capacity(8));
        for i in 0..5 {
            fr.record_quantum(&obs(i, i, &[i, i + 1], &[0, i]));
        }
        let got: Vec<u64> = fr.samples().map(|s| s.index).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(fr.total_packets(), 10);
        let last = fr.samples().last().unwrap();
        assert_eq!(last.barrier_wait_ns, &[4, 5]);
        assert_eq!(last.vt_lag_ns, &[0, 4]);
    }

    #[test]
    fn ring_wraps_but_aggregates_cover_the_run() {
        let mut fr = FlightRecorder::new(1, ObsConfig::new().with_ring_capacity(4));
        for i in 0..10 {
            fr.record_quantum(&obs(i, 1, &[0], &[0]));
        }
        assert_eq!(fr.ring_len(), 4);
        assert_eq!(fr.dropped(), 6);
        assert_eq!(fr.total_quanta(), 10);
        assert_eq!(fr.total_packets(), 10);
        let got: Vec<u64> = fr.samples().map(|s| s.index).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(fr.quantum_len_hist().count(), 10);
    }

    #[test]
    fn straggler_and_rollback_accounting() {
        let mut fr = FlightRecorder::new(2, ObsConfig::new());
        fr.record_quantum(&QuantumObs {
            index: 0,
            start: SimTime::ZERO,
            len: SimDuration::from_micros(1),
            packets: 2,
            active_nodes: 1,
            stragglers: 3,
            max_straggler_delay: SimDuration::from_nanos(700),
            barrier_wait_ns: &[5, 9],
            vt_lag_ns: &[100, 0],
        });
        fr.record_checkpoints(4);
        fr.record_rollback(SimDuration::from_micros(2));
        assert_eq!(fr.total_stragglers(), 3);
        assert_eq!(fr.straggler_delay_hist().count(), 1);
        assert_eq!(fr.straggler_delay_hist().max(), 700);
        assert_eq!(fr.barrier_wait_hist().count(), 2);
        assert_eq!(fr.vt_lag_hist().sum(), 100);
        assert_eq!(fr.checkpoints(), 4);
        assert_eq!(fr.rollbacks(), 1);
        assert_eq!(fr.wasted_sim(), SimDuration::from_micros(2));
    }

    #[test]
    fn link_load_accumulates_and_tracks_peaks() {
        let mut fr = FlightRecorder::new(2, ObsConfig::new());
        assert!(fr.link_load().is_none(), "no fabric, no link stats");
        fr.record_link_load(&[100, 0, 50], &[1, 0, 1]);
        fr.record_link_load(&[40, 700, 0], &[1, 2, 0]);
        let ll = fr.link_load().expect("link stats recorded");
        assert_eq!(ll.bytes, &[140, 700, 50]);
        assert_eq!(ll.packets, &[2, 2, 1]);
        assert_eq!(ll.peak_quantum_bytes, &[100, 700, 50]);
        assert_eq!(ll.hottest(), Some((1, 700)));
        assert_eq!(ll.total_bytes(), 890);
    }

    #[test]
    fn shard_rollback_lanes_accumulate_per_shard() {
        let mut fr = FlightRecorder::new(4, ObsConfig::new());
        assert!(
            fr.shard_rollback_stats().is_none(),
            "no sharded optimistic run, no shard stats"
        );
        fr.record_shard_rollbacks(&[2, 2], &[1, 0], &[500, 0]);
        fr.record_shard_rollbacks(&[2, 2], &[0, 3], &[0, 900]);
        let st = fr.shard_rollback_stats().expect("shard stats recorded");
        assert_eq!(st.checkpoints, &[4, 4]);
        assert_eq!(st.rollbacks, &[1, 3]);
        assert_eq!(st.wasted_ns, &[500, 900]);
        assert_eq!(st.total_checkpoints(), 8);
        assert_eq!(st.total_rollbacks(), 4);
        assert_eq!(st.total_wasted_ns(), 1400);
        assert_eq!(st.worst_shard(), Some((1, 3)));
    }

    #[test]
    fn active_node_counts_accumulate_per_run_and_per_shard() {
        let mut fr = FlightRecorder::new(4, ObsConfig::new());
        assert!(fr.shard_activity().is_none(), "no active-set engine yet");
        fr.record_quantum(&obs(0, 1, &[], &[]));
        fr.record_quantum(&obs(1, 1, &[], &[]));
        assert_eq!(fr.total_active_nodes(), 4);
        assert_eq!(fr.samples().next().unwrap().active_nodes, 2);
        fr.record_shard_activity(&[2, 0]);
        fr.record_shard_activity(&[1, 1]);
        assert_eq!(fr.shard_activity(), Some(&[3, 1][..]));
    }

    #[test]
    fn empty_lanes_record_as_zero() {
        let mut fr = FlightRecorder::new(3, ObsConfig::new());
        fr.record_quantum(&obs(0, 1, &[], &[]));
        let s = fr.samples().next().unwrap();
        assert_eq!(s.barrier_wait_ns, &[0, 0, 0]);
        assert_eq!(s.vt_lag_ns, &[0, 0, 0]);
        // Empty lanes contribute no histogram samples.
        assert_eq!(fr.barrier_wait_hist().count(), 0);
    }
}
