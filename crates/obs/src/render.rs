//! Terminal summary rendering for the flight recorder.

use crate::flight::FlightRecorder;
use crate::hist::Log2Histogram;
use aqs_metrics::{render_histogram, render_series_log_y, render_table};

/// Formats nanoseconds with a human unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Rows of `(bucket label, count)` for every non-empty bucket of `h`.
fn hist_rows(h: &Log2Histogram) -> Vec<(String, u64)> {
    let Some((lo, hi)) = h.nonzero_range() else {
        return Vec::new();
    };
    (lo..=hi)
        .map(|i| {
            let (b_lo, b_hi) = Log2Histogram::bucket_bounds(i);
            let label = if i == 0 {
                "0".to_string()
            } else {
                format!("{}–{}", fmt_ns(b_lo), fmt_ns(b_hi))
            };
            (label, h.bucket_count(i))
        })
        .collect()
}

impl FlightRecorder {
    /// Renders a terminal summary: run counters, the quantum-length
    /// timeline, and the straggler-delay histogram.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let row = |k: &str, v: String| vec![k.to_string(), v];
        let mut rows = vec![
            row("quanta", self.total_quanta().to_string()),
            row(
                "ring window",
                format!("{} of {}", self.ring_len(), self.capacity()),
            ),
            row("packets", self.total_packets().to_string()),
            row("stragglers", self.total_stragglers().to_string()),
            row(
                "quantum len mean/max",
                format!(
                    "{} / {}",
                    fmt_ns(self.quantum_len_hist().mean() as u64),
                    fmt_ns(self.quantum_len_hist().max())
                ),
            ),
            row(
                "barrier wait mean/max",
                format!(
                    "{} / {}",
                    fmt_ns(self.barrier_wait_hist().mean() as u64),
                    fmt_ns(self.barrier_wait_hist().max())
                ),
            ),
            row(
                "vt lag mean/max",
                format!(
                    "{} / {}",
                    fmt_ns(self.vt_lag_hist().mean() as u64),
                    fmt_ns(self.vt_lag_hist().max())
                ),
            ),
        ];
        if self.checkpoints() > 0 || self.rollbacks() > 0 {
            rows.push(row("checkpoints", self.checkpoints().to_string()));
            rows.push(row("rollbacks", self.rollbacks().to_string()));
            rows.push(row("wasted sim", self.wasted_sim().to_string()));
        }
        out.push_str(&render_table(&["metric", "value"], &rows));
        out.push_str("\nquantum length over time (log y, ring window)\n");
        let series: Vec<f64> = self.samples().map(|s| s.len.as_nanos() as f64).collect();
        out.push_str(&render_series_log_y(&series, 64, 8));
        out.push_str("\nstraggler delay histogram (per-quantum max)\n");
        let rows = hist_rows(self.straggler_delay_hist());
        if rows.is_empty() {
            out.push_str("  (no stragglers)\n");
        } else {
            out.push_str(&render_histogram(&rows, 40));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, QuantumObs, Recorder};
    use aqs_time::{SimDuration, SimTime};

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn summary_covers_counters_timeline_and_histogram() {
        let mut fr = FlightRecorder::new(2, ObsConfig::new());
        for i in 0..20u64 {
            fr.record_quantum(&QuantumObs {
                index: i,
                start: SimTime::from_nanos(i * 1000),
                len: SimDuration::from_nanos(1000 + i * 100),
                packets: i % 3,
                active_nodes: 2,
                stragglers: u64::from(i % 5 == 0),
                max_straggler_delay: SimDuration::from_nanos(i * 37),
                barrier_wait_ns: &[i, 2 * i],
                vt_lag_ns: &[0, i * 10],
            });
        }
        let s = fr.render_summary();
        assert!(s.contains("quanta"));
        assert!(s.contains("quantum length over time"));
        assert!(s.contains("straggler delay histogram"));
        assert!(s.contains('*'), "timeline must plot points");
    }

    #[test]
    fn summary_without_stragglers_says_so() {
        let mut fr = FlightRecorder::new(2, ObsConfig::new());
        fr.record_quantum(&QuantumObs {
            index: 0,
            start: SimTime::ZERO,
            len: SimDuration::from_micros(1),
            packets: 0,
            active_nodes: 0,
            stragglers: 0,
            max_straggler_delay: SimDuration::ZERO,
            barrier_wait_ns: &[0, 0],
            vt_lag_ns: &[0, 0],
        });
        assert!(fr.render_summary().contains("(no stragglers)"));
    }
}
