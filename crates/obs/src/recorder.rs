//! The engine-facing recording interface.

use aqs_time::{SimDuration, SimTime};

/// Everything an engine knows about one completed quantum.
///
/// The per-node slices are indexed by rank and always have the cluster's
/// node count as length (engines may pass empty slices for quanta where the
/// per-node signals are undefined, e.g. a final partial quantum).
///
/// Units: `start`/`len`/`max_straggler_delay` are simulated time;
/// `barrier_wait_ns` is host time (modelled host nanoseconds in the
/// deterministic engine, real elapsed nanoseconds in the threaded one);
/// `vt_lag_ns` is simulated nanoseconds of idle tail — how far before the
/// quantum boundary the node ran out of useful work.
#[derive(Clone, Copy, Debug)]
pub struct QuantumObs<'a> {
    /// Zero-based quantum index.
    pub index: u64,
    /// Simulated start of the quantum.
    pub start: SimTime,
    /// Quantum length.
    pub len: SimDuration,
    /// Packets routed during the quantum (the policy's `np` signal).
    pub packets: u64,
    /// Nodes that actually executed during the quantum (the active set).
    /// Engines without active-set scheduling report the full node count.
    pub active_nodes: u64,
    /// Stragglers recorded during the quantum.
    pub stragglers: u64,
    /// Largest straggler delay in the quantum (zero if none).
    pub max_straggler_delay: SimDuration,
    /// Per-node wait between barrier arrival and barrier completion.
    pub barrier_wait_ns: &'a [u64],
    /// Per-node virtual-time lag: idle simulated time trailing the quantum.
    pub vt_lag_ns: &'a [u64],
}

/// A sink for per-quantum engine telemetry.
///
/// Engines are generic over their recorder, and every recording call is
/// guarded by [`Recorder::ENABLED`], so a [`NullRecorder`] run
/// monomorphizes to the exact unrecorded hot path — disabled telemetry
/// costs nothing.
pub trait Recorder: Send + 'static {
    /// Whether this recorder captures anything. Engines skip assembling
    /// [`QuantumObs`] (and the per-thread signal publication feeding it)
    /// when this is `false`.
    const ENABLED: bool;

    /// Called once per completed quantum (or optimistic window).
    fn record_quantum(&mut self, obs: &QuantumObs<'_>);

    /// Called by checkpointing engines when `n` checkpoints are taken.
    fn record_checkpoints(&mut self, n: u64) {
        let _ = n;
    }

    /// Called by optimistic engines on each rollback, with the simulated
    /// time that must be re-executed.
    fn record_rollback(&mut self, wasted: SimDuration) {
        let _ = wasted;
    }

    /// Called by sharded optimistic engines once per committed window with
    /// that window's per-shard checkpoint, rollback, and wasted-sim tallies,
    /// indexed by shard. The slices always share the worker count as length.
    /// Aggregate totals still flow through
    /// [`record_checkpoints`](Self::record_checkpoints) and
    /// [`record_rollback`](Self::record_rollback); this hook only attributes
    /// them to shards.
    fn record_shard_rollbacks(
        &mut self,
        checkpoints: &[u64],
        rollbacks: &[u64],
        wasted_ns: &[u64],
    ) {
        let _ = (checkpoints, rollbacks, wasted_ns);
    }

    /// Called once per quantum by active-set engines with the number of
    /// nodes each shard executed during the quantum, indexed by shard. The
    /// slice always has the worker count as length. Commutative per-shard
    /// counts merged at the quantum barrier — observation only.
    fn record_shard_activity(&mut self, active: &[u64]) {
        let _ = active;
    }

    /// Called once per quantum by engines routing through a modeled fabric,
    /// with the bytes and packets that crossed each fabric link during the
    /// quantum, indexed by link id. The slices always have the fabric's link
    /// count as length. These are commutative per-shard sums merged at the
    /// quantum barrier — observation only, never feeding back into timing.
    fn record_link_load(&mut self, link_bytes: &[u64], link_packets: &[u64]) {
        let _ = (link_bytes, link_packets);
    }
}

/// The zero-cost default recorder: every method is a no-op and
/// [`Recorder::ENABLED`] is `false`, so recorded-path code is compiled out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_quantum(&mut self, _obs: &QuantumObs<'_>) {}
}
