//! Fixed-bucket log2 histograms.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero, one per power of two up to `2^63`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `k` (for `k >= 1`) holds values in
/// `[2^(k-1), 2^k)`. Recording is two increments and three stores — no
/// allocation, no branching beyond the zero check — so the histogram is safe
/// to update on a simulation hot path. Merging is commutative and
/// associative, which keeps per-thread histograms order-independent when the
/// barrier leader folds them together.
///
/// # Examples
///
/// ```
/// use aqs_obs::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(7);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 7);
/// assert_eq!(h.bucket_count(Log2Histogram::bucket_of(5)), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    n: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            counts: [0; LOG2_BUCKETS],
            n: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index a value falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open value range `[lo, hi)` covered by bucket `index`
    /// (bucket 0 covers exactly `[0, 1)`; bucket 64's upper bound
    /// saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= LOG2_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < LOG2_BUCKETS, "bucket {index} out of range");
        if index == 0 {
            (0, 1)
        } else {
            (
                1u64 << (index - 1),
                1u64.checked_shl(index as u32).unwrap_or(u64::MAX),
            )
        }
    }

    /// Rebuilds a histogram from its raw parts, for snapshot restore. The
    /// sample count is re-derived from the buckets; returns `None` when the
    /// bucket counts overflow `u64` (a corrupt snapshot).
    pub fn from_parts(counts: [u64; LOG2_BUCKETS], sum: u64, max: u64) -> Option<Self> {
        let n: u64 = counts.iter().try_fold(0u64, |acc, &c| acc.checked_add(c))?;
        Some(Self {
            counts,
            n,
            sum,
            max,
        })
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.n += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (commutative).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Count in one bucket.
    ///
    /// # Panics
    ///
    /// Panics if `index >= LOG2_BUCKETS`.
    #[inline]
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// All bucket counts.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Inclusive index range of non-empty buckets, or `None` when empty.
    pub fn nonzero_range(&self) -> Option<(usize, usize)> {
        let lo = self.counts.iter().position(|&c| c > 0)?;
        let hi = self.counts.iter().rposition(|&c| c > 0)?;
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for i in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(Log2Histogram::bucket_of(lo), i);
            if hi < u64::MAX {
                assert_eq!(Log2Histogram::bucket_of(hi - 1), i);
                assert_eq!(Log2Histogram::bucket_of(hi), i + 1);
            }
        }
    }

    #[test]
    fn record_tracks_aggregates() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1111);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 222.2).abs() < 1e-9);
        assert_eq!(h.nonzero_range(), Some((0, Log2Histogram::bucket_of(1000))));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_range(), None);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [3, 900, 0] {
            a.record(v);
        }
        for v in [12, 7_000_000] {
            b.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
    }

    #[test]
    fn round_trips_through_serde() {
        let mut h = Log2Histogram::new();
        h.record(42);
        h.record(0);
        let json = serde_json::to_string(&h).unwrap();
        let back: Log2Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
