//! JSONL / CSV export of flight-recorder samples.
//!
//! The JSONL schema (one object per line, one line per quantum in the ring,
//! oldest first) is documented in the repository's EXPERIMENTS.md.

use crate::flight::FlightRecorder;
use serde_json::Value;
use std::fmt::Write as _;

fn sample_value(s: &crate::QuantumObs<'_>) -> Value {
    Value::Object(vec![
        ("index".into(), Value::U64(s.index)),
        ("start_ns".into(), Value::U64(s.start.as_nanos())),
        ("len_ns".into(), Value::U64(s.len.as_nanos())),
        ("packets".into(), Value::U64(s.packets)),
        ("active_nodes".into(), Value::U64(s.active_nodes)),
        ("stragglers".into(), Value::U64(s.stragglers)),
        (
            "max_straggler_delay_ns".into(),
            Value::U64(s.max_straggler_delay.as_nanos()),
        ),
        (
            "barrier_wait_ns".into(),
            Value::Array(s.barrier_wait_ns.iter().map(|&v| Value::U64(v)).collect()),
        ),
        (
            "vt_lag_ns".into(),
            Value::Array(s.vt_lag_ns.iter().map(|&v| Value::U64(v)).collect()),
        ),
    ])
}

impl FlightRecorder {
    /// Renders the ring as JSON Lines: one object per retained quantum,
    /// oldest first. A run that used a rollback-capable engine (the shard
    /// rollback lanes are populated) appends one trailing
    /// `"event":"rollbacks"` object with the run's cumulative checkpoint,
    /// rollback, and wasted-sim counters plus their per-shard attribution.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.samples() {
            let line = serde_json::to_string(&sample_value(&s)).expect("sample serializes");
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(stats) = self.shard_rollback_stats() {
            let lane = |v: &[u64]| Value::Array(v.iter().map(|&x| Value::U64(x)).collect());
            let summary = Value::Object(vec![
                ("event".into(), Value::Str("rollbacks".into())),
                ("checkpoints".into(), Value::U64(self.checkpoints())),
                ("rollbacks".into(), Value::U64(self.rollbacks())),
                (
                    "wasted_sim_ns".into(),
                    Value::U64(self.wasted_sim().as_nanos()),
                ),
                ("shard_checkpoints".into(), lane(stats.checkpoints)),
                ("shard_rollbacks".into(), lane(stats.rollbacks)),
                ("shard_wasted_ns".into(), lane(stats.wasted_ns)),
            ]);
            let line = serde_json::to_string(&summary).expect("summary serializes");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the ring as CSV with per-node lanes reduced to their max and
    /// mean (full per-node detail is in the JSONL export).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,start_ns,len_ns,packets,active_nodes,stragglers,max_straggler_delay_ns,\
             max_barrier_wait_ns,mean_barrier_wait_ns,max_vt_lag_ns,mean_vt_lag_ns\n",
        );
        let reduce = |lane: &[u64]| -> (u64, f64) {
            let max = lane.iter().copied().max().unwrap_or(0);
            let mean = if lane.is_empty() {
                0.0
            } else {
                lane.iter().sum::<u64>() as f64 / lane.len() as f64
            };
            (max, mean)
        };
        for s in self.samples() {
            let (wmax, wmean) = reduce(s.barrier_wait_ns);
            let (lmax, lmean) = reduce(s.vt_lag_ns);
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{:.1},{},{:.1}",
                s.index,
                s.start.as_nanos(),
                s.len.as_nanos(),
                s.packets,
                s.active_nodes,
                s.stragglers,
                s.max_straggler_delay.as_nanos(),
                wmax,
                wmean,
                lmax,
                lmean
            )
            .expect("string write cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{FlightRecorder, ObsConfig, QuantumObs, Recorder};
    use aqs_time::{SimDuration, SimTime};

    fn recorded() -> FlightRecorder {
        let mut fr = FlightRecorder::new(2, ObsConfig::new());
        fr.record_quantum(&QuantumObs {
            index: 0,
            start: SimTime::ZERO,
            len: SimDuration::from_micros(1),
            packets: 7,
            active_nodes: 2,
            stragglers: 1,
            max_straggler_delay: SimDuration::from_nanos(123),
            barrier_wait_ns: &[40, 0],
            vt_lag_ns: &[0, 900],
        });
        fr
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let fr = recorded();
        let jsonl = fr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        let serde_json::Value::Object(fields) = v else {
            panic!("expected object");
        };
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("packets"), serde_json::Value::U64(7));
        assert_eq!(
            get("vt_lag_ns"),
            serde_json::Value::Array(vec![serde_json::Value::U64(0), serde_json::Value::U64(900)])
        );
    }

    #[test]
    fn rollback_runs_append_one_summary_line() {
        // Conservative runs (no shard lanes) must emit nothing extra.
        assert_eq!(recorded().to_jsonl().lines().count(), 1);

        let mut fr = recorded();
        fr.record_checkpoints(1);
        fr.record_rollback(SimDuration::from_micros(3));
        fr.record_shard_rollbacks(&[1, 0], &[1, 0], &[3_000, 0]);
        let jsonl = fr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let v: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        let serde_json::Value::Object(fields) = v else {
            panic!("expected object");
        };
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("event"), serde_json::Value::Str("rollbacks".into()));
        assert_eq!(get("rollbacks"), serde_json::Value::U64(1));
        assert_eq!(get("wasted_sim_ns"), serde_json::Value::U64(3_000));
        assert_eq!(
            get("shard_rollbacks"),
            serde_json::Value::Array(vec![serde_json::Value::U64(1), serde_json::Value::U64(0)])
        );
    }

    #[test]
    fn csv_has_header_and_reduced_lanes() {
        let fr = recorded();
        let csv = fr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("index,start_ns"));
        assert!(lines[1].contains(",40,20.0,900,450.0"));
    }
}
