//! Quantum-level observability for the aqs engines.
//!
//! The paper's argument is carried by *per-quantum dynamics* — quantum
//! length over time (the Figure 3 "speed bumps"), straggler counts and
//! delays, synchronization overhead — yet an end-of-run aggregate cannot
//! show any of them. This crate is the telemetry layer all three engines
//! share:
//!
//! * [`Log2Histogram`] — fixed-bucket base-2 histograms: recording is a
//!   couple of integer ops, merging is commutative, nothing allocates.
//! * [`Recorder`] — the engine-facing trait. Engines are generic over it
//!   and gate every recording call on [`Recorder::ENABLED`], so the
//!   default [`NullRecorder`] monomorphizes telemetry away entirely.
//! * [`FlightRecorder`] — a preallocated ring buffer of the most recent
//!   quanta (`(quantum_len, packets, stragglers, max_straggler_delay,
//!   barrier_wait_ns per node, per-node virtual-time lag)`), plus
//!   whole-run aggregate histograms, JSONL/CSV export and a terminal
//!   summary renderer.
//!
//! # Examples
//!
//! ```
//! use aqs_obs::{FlightRecorder, ObsConfig, QuantumObs, Recorder};
//! use aqs_time::{SimDuration, SimTime};
//!
//! let mut fr = FlightRecorder::new(2, ObsConfig::new());
//! fr.record_quantum(&QuantumObs {
//!     index: 0,
//!     start: SimTime::ZERO,
//!     len: SimDuration::from_micros(1),
//!     packets: 4,
//!     active_nodes: 2,
//!     stragglers: 1,
//!     max_straggler_delay: SimDuration::from_nanos(250),
//!     barrier_wait_ns: &[120, 0],
//!     vt_lag_ns: &[0, 300],
//! });
//! assert_eq!(fr.total_packets(), 4);
//! assert!(fr.to_jsonl().contains("\"packets\":4"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod flight;
mod hist;
mod recorder;
mod render;

pub use flight::{FlightRecorder, LinkLoadStats, ObsConfig, ShardRollbackStats};
pub use hist::{Log2Histogram, LOG2_BUCKETS};
pub use recorder::{NullRecorder, QuantumObs, Recorder};
