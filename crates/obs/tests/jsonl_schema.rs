//! Golden-file pin of the flight-recorder JSONL export schema.
//!
//! The JSONL log is an external interface: EXPERIMENTS.md documents it, the
//! conformance harness ships it as a failure artifact, and downstream
//! tooling parses it by field name. Renaming, reordering, or retyping a
//! field is a breaking change and must show up as a failing diff against
//! the committed golden file — not as a silent drift.
//!
//! If the change is intentional, regenerate the golden file by running this
//! test with `UPDATE_GOLDEN=1` and commit both.

use aqs_obs::{FlightRecorder, ObsConfig, QuantumObs, Recorder};
use aqs_time::{SimDuration, SimTime};

const GOLDEN_PATH: &str = "tests/golden/flight_jsonl.golden";

/// A recorder filled with fixed, hand-picked values: two nodes, three
/// quanta covering the interesting shapes (quiet, busy-with-stragglers,
/// floor-pinned).
fn fixed_recorder() -> FlightRecorder {
    let mut fr = FlightRecorder::new(2, ObsConfig::new().with_ring_capacity(8));
    fr.record_quantum(&QuantumObs {
        index: 0,
        start: SimTime::ZERO,
        len: SimDuration::from_micros(1),
        packets: 0,
        active_nodes: 0,
        stragglers: 0,
        max_straggler_delay: SimDuration::ZERO,
        barrier_wait_ns: &[0, 250],
        vt_lag_ns: &[0, 0],
    });
    fr.record_quantum(&QuantumObs {
        index: 1,
        start: SimTime::ZERO + SimDuration::from_micros(1),
        len: SimDuration::from_nanos(1_200),
        packets: 7,
        active_nodes: 2,
        stragglers: 2,
        max_straggler_delay: SimDuration::from_nanos(321),
        barrier_wait_ns: &[90, 0],
        vt_lag_ns: &[0, 880],
    });
    fr.record_quantum(&QuantumObs {
        index: 2,
        start: SimTime::ZERO + SimDuration::from_nanos(2_200),
        len: SimDuration::from_micros(1),
        packets: 1,
        active_nodes: 1,
        stragglers: 0,
        max_straggler_delay: SimDuration::ZERO,
        barrier_wait_ns: &[0, 0],
        vt_lag_ns: &[1_000, 0],
    });
    fr
}

#[test]
fn jsonl_schema_matches_golden_file() {
    let got = fixed_recorder().to_jsonl();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists and is committed");
    assert_eq!(
        got, want,
        "flight-recorder JSONL schema drifted from {GOLDEN_PATH}; if intentional, \
         rerun with UPDATE_GOLDEN=1, update EXPERIMENTS.md, and commit both"
    );
}

#[test]
fn golden_file_is_valid_jsonl_with_documented_fields() {
    // Belt and braces: the golden file itself must parse, with exactly the
    // documented field names in the documented order.
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    let expected_fields = [
        "index",
        "start_ns",
        "len_ns",
        "packets",
        "active_nodes",
        "stragglers",
        "max_straggler_delay_ns",
        "barrier_wait_ns",
        "vt_lag_ns",
    ];
    let mut lines = 0;
    for line in want.lines() {
        lines += 1;
        let v: serde_json::Value = serde_json::from_str(line).expect("golden line parses");
        let serde_json::Value::Object(fields) = v else {
            panic!("golden line is not an object: {line}");
        };
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, expected_fields, "field names/order drifted");
    }
    assert_eq!(lines, 3, "golden file should hold the three fixed quanta");
}
