//! Host-execution cost model: how much wall-clock the node simulator burns.
//!
//! The paper's speedups are ratios of *host* wall-clock between
//! configurations running on the same machine. Since we replace the physical
//! host with a model, this module defines that model explicitly:
//!
//! * simulating one nanosecond of active guest time costs
//!   `base_slowdown × jitter` host nanoseconds;
//! * *idle* guest time (a blocked MPI receive spinning in the OS idle loop)
//!   is fast-forwarded at `idle_factor` of the active cost — SimNow-style
//!   HLT skipping, and the reason a time-dilated run is not proportionally
//!   slower to simulate;
//! * `jitter` is resampled every quantum as `exp(drift + noise)`: white
//!   log-normal noise on top of a slowly drifting AR(1) component. This is
//!   the dynamic speed heterogeneity the paper describes ("the clocks …
//!   will also have dynamically changing speeds"), and it is what creates
//!   stragglers.

use aqs_rng::{Ar1, Rng, RngState};
use aqs_time::{HostDuration, SimDuration};
use serde::{Deserialize, Serialize};

/// Static parameters of the host cost model (shared by all nodes).
///
/// # Examples
///
/// ```
/// use aqs_node::HostModel;
/// let m = HostModel::default();
/// assert!((m.base_slowdown() - 30.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// Host nanoseconds per active simulated nanosecond (median).
    base_slowdown: f64,
    /// Cost multiplier for idle simulated time, in `(0, 1]`.
    idle_factor: f64,
    /// Sigma of the white per-quantum log-normal jitter.
    jitter_sigma: f64,
    /// AR(1) persistence of the slow log-speed drift.
    drift_phi: f64,
    /// AR(1) innovation sigma.
    drift_sigma: f64,
}

impl HostModel {
    /// Creates a host model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (see field docs).
    pub fn new(
        base_slowdown: f64,
        idle_factor: f64,
        jitter_sigma: f64,
        drift_phi: f64,
        drift_sigma: f64,
    ) -> Self {
        assert!(
            base_slowdown.is_finite() && base_slowdown > 0.0,
            "base_slowdown must be positive, got {base_slowdown}"
        );
        assert!(
            idle_factor.is_finite() && idle_factor > 0.0 && idle_factor <= 1.0,
            "idle_factor must be in (0, 1], got {idle_factor}"
        );
        assert!(
            jitter_sigma.is_finite() && jitter_sigma >= 0.0,
            "jitter_sigma must be >= 0"
        );
        assert!(
            (0.0..1.0).contains(&drift_phi),
            "drift_phi must be in [0, 1)"
        );
        assert!(
            drift_sigma.is_finite() && drift_sigma >= 0.0,
            "drift_sigma must be >= 0"
        );
        Self {
            base_slowdown,
            idle_factor,
            jitter_sigma,
            drift_phi,
            drift_sigma,
        }
    }

    /// A host model with **no jitter at all** — every node simulates at
    /// exactly the same speed. Useful for tests: with equal speeds no
    /// straggler can ever form (Figure 3(a), the "normal case").
    pub fn uniform(base_slowdown: f64, idle_factor: f64) -> Self {
        Self::new(base_slowdown, idle_factor, 0.0, 0.0, 0.0)
    }

    /// Median host-ns per active sim-ns.
    #[inline]
    pub fn base_slowdown(&self) -> f64 {
        self.base_slowdown
    }

    /// Idle fast-forward factor.
    #[inline]
    pub fn idle_factor(&self) -> f64 {
        self.idle_factor
    }

    /// White jitter sigma.
    #[inline]
    pub fn jitter_sigma(&self) -> f64 {
        self.jitter_sigma
    }
}

impl Default for HostModel {
    /// The calibrated defaults from DESIGN.md §6: 30× slowdown, 2 % idle
    /// cost, σ = 0.12 white jitter with a φ = 0.9, σ = 0.06 drift.
    fn default() -> Self {
        Self::new(30.0, 0.02, 0.12, 0.9, 0.06)
    }
}

/// Per-node dynamic speed state.
///
/// # Examples
///
/// ```
/// use aqs_node::{HostModel, HostSpeed};
/// use aqs_rng::Rng;
/// use aqs_time::SimDuration;
///
/// let mut speed = HostSpeed::new(HostModel::default(), Rng::substream(1, 0));
/// speed.resample();
/// let cost = speed.host_cost(SimDuration::from_micros(1), false);
/// assert!(cost.as_nanos() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct HostSpeed {
    model: HostModel,
    drift: Ar1,
    rng: Rng,
    /// Current multiplicative jitter (median 1.0).
    jitter: f64,
}

impl HostSpeed {
    /// Creates the speed state for one node with its private RNG substream.
    pub fn new(model: HostModel, rng: Rng) -> Self {
        Self {
            model,
            drift: Ar1::new(0.0, model.drift_phi, model.drift_sigma),
            rng,
            jitter: 1.0,
        }
    }

    /// Resamples the per-quantum jitter (call at every quantum start).
    pub fn resample(&mut self) {
        let drift = self.drift.step(&mut self.rng);
        let white = self.rng.normal_with(0.0, self.model.jitter_sigma);
        self.jitter = (drift + white).exp();
    }

    /// Current slowdown: host-ns per active sim-ns.
    pub fn slowdown(&self) -> f64 {
        self.model.base_slowdown * self.jitter
    }

    /// Host cost of simulating `sim` of guest time in the current quantum.
    ///
    /// `idle` marks guest-idle spans, which are fast-forwarded.
    pub fn host_cost(&self, sim: SimDuration, idle: bool) -> HostDuration {
        let factor = if idle {
            self.slowdown() * self.model.idle_factor()
        } else {
            self.slowdown()
        };
        HostDuration::from_nanos((sim.as_nanos() as f64 * factor).round() as u64)
    }

    /// The static model.
    pub fn model(&self) -> &HostModel {
        &self.model
    }

    /// Captures the dynamic speed state — RNG position, AR(1) drift value,
    /// and the current jitter — for a quantum-edge snapshot.
    pub fn export_state(&self) -> HostSpeedState {
        HostSpeedState {
            rng: self.rng.state(),
            drift_value: self.drift.value(),
            jitter: self.jitter,
        }
    }

    /// Rebuilds the speed state captured by [`Self::export_state`] under the
    /// same (configuration-derived) model. Returns `None` when the RNG state
    /// words are invalid, i.e. the snapshot bytes are corrupt.
    pub fn from_state(model: HostModel, state: HostSpeedState) -> Option<Self> {
        let mut drift = Ar1::new(0.0, model.drift_phi, model.drift_sigma);
        drift.set_value(state.drift_value);
        Some(Self {
            model,
            drift,
            rng: Rng::from_state(state.rng)?,
            jitter: state.jitter,
        })
    }
}

/// The dynamic part of a [`HostSpeed`] — everything [`HostSpeed::resample`]
/// reads or writes. The static [`HostModel`] is reconstructed from
/// configuration on resume and deliberately not part of this state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostSpeedState {
    /// The node's private RNG stream position.
    pub rng: RngState,
    /// Current AR(1) log-speed drift value.
    pub drift_value: f64,
    /// Current multiplicative jitter.
    pub jitter: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_never_jitters() {
        let mut s = HostSpeed::new(HostModel::uniform(30.0, 0.02), Rng::substream(42, 0));
        for _ in 0..50 {
            s.resample();
            assert!((s.slowdown() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn active_cost_scales_by_slowdown() {
        let s = HostSpeed::new(HostModel::uniform(30.0, 0.02), Rng::substream(1, 0));
        let cost = s.host_cost(SimDuration::from_micros(1), false);
        assert_eq!(cost, HostDuration::from_micros(30));
    }

    #[test]
    fn idle_cost_is_fast_forwarded() {
        let s = HostSpeed::new(HostModel::uniform(30.0, 0.02), Rng::substream(1, 0));
        let active = s.host_cost(SimDuration::from_micros(100), false);
        let idle = s.host_cost(SimDuration::from_micros(100), true);
        assert_eq!(idle.as_nanos() * 50, active.as_nanos());
    }

    #[test]
    fn jitter_median_is_near_base() {
        let mut s = HostSpeed::new(HostModel::default(), Rng::substream(7, 3));
        let mut vals: Vec<f64> = Vec::new();
        for _ in 0..20_001 {
            s.resample();
            vals.push(s.slowdown());
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        // The AR(1) drift widens the distribution but the median stays near
        // the base slowdown.
        assert!((median / 30.0 - 1.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn different_substreams_diverge() {
        let model = HostModel::default();
        let mut a = HostSpeed::new(model, Rng::substream(5, 0));
        let mut b = HostSpeed::new(model, Rng::substream(5, 1));
        a.resample();
        b.resample();
        assert_ne!(a.slowdown(), b.slowdown());
    }

    #[test]
    fn same_substream_is_deterministic() {
        let model = HostModel::default();
        let mut a = HostSpeed::new(model, Rng::substream(5, 2));
        let mut b = HostSpeed::new(model, Rng::substream(5, 2));
        for _ in 0..100 {
            a.resample();
            b.resample();
            assert_eq!(a.slowdown(), b.slowdown());
        }
    }

    #[test]
    #[should_panic(expected = "idle_factor")]
    fn bad_idle_factor_rejected() {
        let _ = HostModel::new(30.0, 0.0, 0.1, 0.5, 0.1);
    }

    #[test]
    fn speed_state_round_trip_resumes_the_jitter_stream() {
        let model = HostModel::default();
        let mut live = HostSpeed::new(model, Rng::substream(9, 4));
        for _ in 0..17 {
            live.resample();
        }
        let state = live.export_state();
        let mut resumed = HostSpeed::from_state(model, state).expect("valid state");
        assert_eq!(live.slowdown(), resumed.slowdown());
        for _ in 0..50 {
            live.resample();
            resumed.resample();
            assert_eq!(live.slowdown(), resumed.slowdown());
        }
    }
}
