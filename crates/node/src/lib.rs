//! Node substrate: what runs *inside* each simulated cluster node.
//!
//! The paper combines full-system (SimNow) node simulators. The adaptive
//! synchronization technique never inspects a node's internals — it only
//! observes (a) how fast the node's simulated clock advances and (b) the
//! packets its NIC emits. This crate therefore replaces the x86 full-system
//! simulator with the smallest model exposing exactly those observables:
//!
//! * [`Program`] / [`Op`] — a node's workload as a sequence of compute,
//!   idle, send, receive and region-marker operations (what an MPI rank
//!   does, as seen from the NIC).
//! * [`CpuModel`] — translates abstract operations into simulated time.
//! * [`NodeExecutor`] — a *resumable* interpreter: the cluster engine runs
//!   it up to a quantum boundary, delivers packets into its [`Mailbox`],
//!   and resumes it, exactly like the real system resumes a SimNow instance.
//! * [`HostModel`] — how much *host* time one simulated second costs, with
//!   per-quantum jitter and slow drift; this reproduces the time-skew
//!   between node simulators that creates stragglers in the first place.
//!
//! # Examples
//!
//! ```
//! use aqs_node::{Action, CpuModel, NodeExecutor, ProgramBuilder, Rank, Tag};
//! use aqs_time::SimTime;
//!
//! let prog = ProgramBuilder::new(Rank::new(0))
//!     .compute(1_000_000)
//!     .send(Rank::new(1), 9000, Tag::new(0))
//!     .build();
//! let mut exec = NodeExecutor::new(prog, CpuModel::default());
//! match exec.next_action(SimTime::ZERO) {
//!     aqs_node::Action::Advance { dur, .. } => assert!(!dur.is_zero()),
//!     other => panic!("expected compute first, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod executor;
mod host;
mod mailbox;
mod program;
mod sampling;

pub use cpu::CpuModel;
pub use executor::{Action, ExecutorState, NodeExecutor, RegionRecord};
pub use host::{HostModel, HostSpeed, HostSpeedState};
pub use mailbox::{
    AssemblingState, Mailbox, MailboxState, MatchOutcome, MessageId, MessageMeta, ReadyState,
};
pub use program::{Op, Program, ProgramBuilder, Rank, RegionId, SendTarget, Tag};
pub use sampling::{SampleMode, SamplingModel};
