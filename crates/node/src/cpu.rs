//! CPU timing model: abstract operations → simulated time.

use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};

/// A deliberately simple CPU timing model.
///
/// The paper's timing extensions model CPU latency in detail; for the
/// synchronization study all that matters is *how much simulated time a
/// given amount of work takes*, so a frequency × IPC model suffices — the
/// quantum machinery is agnostic to where durations come from.
///
/// The default mirrors the paper's host/guest: a 2.6 GHz Opteron-class core
/// retiring one operation per cycle.
///
/// # Examples
///
/// ```
/// use aqs_node::CpuModel;
///
/// let cpu = CpuModel::default();
/// // 2.6e9 ops/s → 2600 ops per µs.
/// assert_eq!(cpu.compute_duration(2_600).as_nanos(), 1_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Core frequency in Hz.
    freq_hz: u64,
    /// Average instructions (abstract ops) per cycle.
    ipc: f64,
    /// Fixed software cost charged when a receive completes (MPI stack,
    /// interrupt, copy).
    recv_overhead: SimDuration,
}

impl CpuModel {
    /// Creates a CPU model.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero or `ipc` is not strictly positive.
    pub fn new(freq_hz: u64, ipc: f64, recv_overhead: SimDuration) -> Self {
        assert!(freq_hz > 0, "CPU frequency must be positive");
        assert!(
            ipc.is_finite() && ipc > 0.0,
            "IPC must be positive, got {ipc}"
        );
        Self {
            freq_hz,
            ipc,
            recv_overhead,
        }
    }

    /// Core frequency in Hz.
    #[inline]
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Instructions per cycle.
    #[inline]
    pub fn ipc(&self) -> f64 {
        self.ipc
    }

    /// Per-completed-receive software overhead.
    #[inline]
    pub fn recv_overhead(&self) -> SimDuration {
        self.recv_overhead
    }

    /// Simulated time to execute `ops` abstract operations (rounded to the
    /// nearest nanosecond, minimum 1 ns for non-zero work).
    pub fn compute_duration(&self, ops: u64) -> SimDuration {
        if ops == 0 {
            return SimDuration::ZERO;
        }
        let secs = ops as f64 / (self.freq_hz as f64 * self.ipc);
        SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1))
    }

    /// Operations retired per second.
    pub fn ops_per_second(&self) -> f64 {
        self.freq_hz as f64 * self.ipc
    }
}

impl Default for CpuModel {
    /// 2.6 GHz, IPC 1.0, 2 µs receive overhead.
    fn default() -> Self {
        Self::new(2_600_000_000, 1.0, SimDuration::from_micros(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_opteron_class() {
        let cpu = CpuModel::default();
        assert_eq!(cpu.freq_hz(), 2_600_000_000);
        assert!((cpu.ipc() - 1.0).abs() < f64::EPSILON);
        assert_eq!(cpu.recv_overhead(), SimDuration::from_micros(2));
    }

    #[test]
    fn zero_ops_take_no_time() {
        assert_eq!(CpuModel::default().compute_duration(0), SimDuration::ZERO);
    }

    #[test]
    fn tiny_work_takes_at_least_a_nanosecond() {
        assert_eq!(
            CpuModel::default().compute_duration(1),
            SimDuration::from_nanos(1)
        );
    }

    #[test]
    fn duration_scales_with_work() {
        let cpu = CpuModel::default();
        assert_eq!(
            cpu.compute_duration(2_600_000_000),
            SimDuration::from_secs(1)
        );
        assert_eq!(cpu.compute_duration(2_600_000), SimDuration::from_millis(1));
    }

    #[test]
    fn ipc_speeds_things_up() {
        let slow = CpuModel::new(1_000_000_000, 0.5, SimDuration::ZERO);
        let fast = CpuModel::new(1_000_000_000, 2.0, SimDuration::ZERO);
        assert_eq!(slow.compute_duration(1000), SimDuration::from_nanos(2000));
        assert_eq!(fast.compute_duration(1000), SimDuration::from_nanos(500));
        assert!((fast.ops_per_second() - 2e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "IPC must be positive")]
    fn non_positive_ipc_rejected() {
        let _ = CpuModel::new(1, 0.0, SimDuration::ZERO);
    }

    proptest! {
        #[test]
        fn duration_is_monotone_in_ops(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let cpu = CpuModel::default();
            if a <= b {
                prop_assert!(cpu.compute_duration(a) <= cpu.compute_duration(b));
            }
        }
    }
}
