//! Simulator sampling — the paper's closing future-work item.
//!
//! §7: "we also plan to combine this technique with 'sampling' of the
//! individual node simulators to take further advantage of another
//! accuracy/speed tradeoff". Sampling (the authors' own ISPASS 2007 work,
//! reference [8]) alternates each node simulator between a **detailed**
//! phase — full timing models, slow — and a **fast-forward** phase —
//! functional-only execution whose timing is *estimated* from the last
//! detailed phase, much faster but slightly wrong.
//!
//! [`SamplingModel`] captures exactly the two observables the cluster
//! engine needs:
//!
//! * during fast-forward, the node simulator's host cost drops by
//!   [`speedup`](SamplingModel::new) — this multiplies with whatever the
//!   quantum policy saves;
//! * guest timing during fast-forward carries a deterministic, per-interval
//!   relative error (log-normal around 1) — this is the accuracy the
//!   combination pays, *independent of stragglers*.
//!
//! The sampling schedule runs on simulated time so it is identical across
//! synchronization policies — a prerequisite for comparing their errors.

use aqs_rng::Rng;
use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Execution mode of a sampled node simulator at some simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Full timing models (accurate, slow).
    Detailed,
    /// Functional fast-forward with estimated timing (fast, biased).
    FastForward,
}

/// A periodic detailed/fast-forward sampling schedule.
///
/// # Examples
///
/// ```
/// use aqs_node::{SampleMode, SamplingModel};
/// use aqs_time::{SimDuration, SimTime};
///
/// // 10 % detailed, 90 % fast-forwarded at 20x, 2 % timing error.
/// let s = SamplingModel::new(SimDuration::from_millis(1), 0.1, 20.0, 0.02);
/// assert_eq!(s.mode_at(SimTime::from_micros(50)), SampleMode::Detailed);
/// assert_eq!(s.mode_at(SimTime::from_micros(500)), SampleMode::FastForward);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamplingModel {
    /// Length of one detailed + fast-forward cycle.
    interval: SimDuration,
    /// Fraction of each cycle spent in detailed mode, in `(0, 1]`.
    detail_fraction: f64,
    /// Host-cost divisor during fast-forward (> 1).
    speedup: f64,
    /// Sigma of the log-normal per-interval timing bias.
    error_sigma: f64,
}

impl SamplingModel {
    /// Creates a sampling model.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, `detail_fraction` is outside `(0, 1]`,
    /// `speedup ≤ 1`, or `error_sigma` is negative.
    pub fn new(
        interval: SimDuration,
        detail_fraction: f64,
        speedup: f64,
        error_sigma: f64,
    ) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        assert!(
            detail_fraction > 0.0 && detail_fraction <= 1.0,
            "detail_fraction must be in (0,1], got {detail_fraction}"
        );
        assert!(
            speedup.is_finite() && speedup > 1.0,
            "speedup must exceed 1, got {speedup}"
        );
        assert!(
            error_sigma.is_finite() && error_sigma >= 0.0,
            "error_sigma must be >= 0"
        );
        Self {
            interval,
            detail_fraction,
            speedup,
            error_sigma,
        }
    }

    /// A typical configuration from the sampling literature: 1 ms cycles,
    /// 10 % detailed, 20x functional fast-forward, 2 % timing error.
    pub fn typical() -> Self {
        Self::new(SimDuration::from_millis(1), 0.1, 20.0, 0.02)
    }

    /// The cycle length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Which mode the node simulator is in at simulated time `t`.
    pub fn mode_at(&self, t: SimTime) -> SampleMode {
        let phase = t.as_nanos() % self.interval.as_nanos();
        let detail_end = (self.interval.as_nanos() as f64 * self.detail_fraction) as u64;
        if phase < detail_end {
            SampleMode::Detailed
        } else {
            SampleMode::FastForward
        }
    }

    /// Host-cost divisor in effect at simulated time `t`.
    pub fn host_divisor_at(&self, t: SimTime) -> f64 {
        match self.mode_at(t) {
            SampleMode::Detailed => 1.0,
            SampleMode::FastForward => self.speedup,
        }
    }

    /// Deterministic guest-timing bias for node `node` at simulated time
    /// `t` under experiment `seed`: 1.0 in detailed mode, a log-normal
    /// factor (median 1) per fast-forward interval otherwise.
    pub fn timing_bias_at(&self, seed: u64, node: usize, t: SimTime) -> f64 {
        if self.error_sigma == 0.0 || self.mode_at(t) == SampleMode::Detailed {
            return 1.0;
        }
        let interval_index = t.as_nanos() / self.interval.as_nanos();
        // One deterministic draw per (seed, node, interval).
        let mix = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node as u64) << 32)
            .wrapping_add(interval_index);
        let mut rng = Rng::seed_from_u64(mix);
        rng.lognormal(0.0, self.error_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SamplingModel {
        SamplingModel::new(SimDuration::from_micros(100), 0.2, 10.0, 0.05)
    }

    #[test]
    fn schedule_is_periodic() {
        let s = model();
        for cycle in 0..5u64 {
            let base = cycle * 100_000;
            assert_eq!(s.mode_at(SimTime::from_nanos(base)), SampleMode::Detailed);
            assert_eq!(
                s.mode_at(SimTime::from_nanos(base + 19_999)),
                SampleMode::Detailed
            );
            assert_eq!(
                s.mode_at(SimTime::from_nanos(base + 20_000)),
                SampleMode::FastForward
            );
            assert_eq!(
                s.mode_at(SimTime::from_nanos(base + 99_999)),
                SampleMode::FastForward
            );
        }
    }

    #[test]
    fn host_divisor_follows_mode() {
        let s = model();
        assert_eq!(s.host_divisor_at(SimTime::from_nanos(0)), 1.0);
        assert_eq!(s.host_divisor_at(SimTime::from_nanos(50_000)), 10.0);
    }

    #[test]
    fn bias_is_deterministic_per_interval() {
        let s = model();
        let t1 = SimTime::from_nanos(50_000); // FF, interval 0
        let t2 = SimTime::from_nanos(60_000); // FF, same interval
        let t3 = SimTime::from_nanos(150_000); // FF, interval 1
        let b1 = s.timing_bias_at(7, 3, t1);
        assert_eq!(b1, s.timing_bias_at(7, 3, t2), "same interval, same bias");
        assert_ne!(
            b1,
            s.timing_bias_at(7, 3, t3),
            "different interval, new bias"
        );
        assert_ne!(
            b1,
            s.timing_bias_at(7, 4, t1),
            "different node, different bias"
        );
        assert_ne!(
            b1,
            s.timing_bias_at(8, 3, t1),
            "different seed, different bias"
        );
        assert!(b1 > 0.0);
    }

    #[test]
    fn detailed_mode_is_unbiased() {
        let s = model();
        assert_eq!(s.timing_bias_at(7, 0, SimTime::from_nanos(5_000)), 1.0);
    }

    #[test]
    fn zero_sigma_is_unbiased_everywhere() {
        let s = SamplingModel::new(SimDuration::from_micros(100), 0.2, 10.0, 0.0);
        assert_eq!(s.timing_bias_at(7, 0, SimTime::from_nanos(50_000)), 1.0);
    }

    #[test]
    fn typical_is_valid() {
        let s = SamplingModel::typical();
        assert_eq!(s.interval(), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "speedup must exceed 1")]
    fn unity_speedup_rejected() {
        let _ = SamplingModel::new(SimDuration::from_micros(1), 0.5, 1.0, 0.0);
    }
}
