//! Receiver-side message reassembly and MPI-style matching.

use crate::program::{Rank, Tag};
use aqs_time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Globally unique message identity: sender rank + per-sender sequence
/// number (assigned in send order, which encodes MPI's non-overtaking rule).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MessageId {
    /// Sending rank.
    pub src: Rank,
    /// Sequence number within the sender's stream.
    pub seq: u64,
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.src, self.seq)
    }
}

/// Message-level metadata carried by every fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MessageMeta {
    /// Identity.
    pub id: MessageId,
    /// Matching tag.
    pub tag: Tag,
    /// Total payload size in bytes.
    pub bytes: u64,
    /// Number of link-layer fragments the message was split into.
    pub frag_count: u32,
}

#[derive(Clone, Debug)]
struct Assembling {
    meta: MessageMeta,
    received_mask: Vec<bool>,
    received: u32,
    latest_arrival: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct Ready {
    meta: MessageMeta,
    ready_at: SimTime,
}

/// Result of a matching attempt at a given simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchOutcome {
    /// A message matched and was consumed; contains its metadata and the
    /// time it became available (≤ the polling time).
    Matched(MessageMeta, SimTime),
    /// A matching message exists but only becomes available at this future
    /// simulated time; nothing was consumed.
    ReadyAt(SimTime),
    /// No matching message has (even partially) completed yet.
    NoMatch,
}

/// A node's receive-side state: in-flight reassembly plus completed
/// messages awaiting a matching `Recv`.
///
/// Matching follows MPI semantics: within one `(src, tag)` channel messages
/// match in send order (non-overtaking); a wildcard-source receive takes the
/// earliest-available candidate, breaking ties by source rank then sequence
/// number, so matching is fully deterministic.
///
/// # Examples
///
/// ```
/// use aqs_node::{Mailbox, MessageId, MessageMeta, Rank, Tag};
/// use aqs_time::SimTime;
///
/// let mut mb = Mailbox::new();
/// let meta = MessageMeta {
///     id: MessageId { src: Rank::new(1), seq: 0 },
///     tag: Tag::new(5),
///     bytes: 100,
///     frag_count: 1,
/// };
/// let ready = mb.deliver_fragment(meta, 0, SimTime::from_micros(3));
/// assert_eq!(ready, Some(SimTime::from_micros(3)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    assembling: HashMap<MessageId, Assembling>,
    ready: Vec<Ready>,
    completed_total: u64,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers one fragment that becomes visible at `arrival`.
    ///
    /// Returns `Some(ready_time)` when this fragment completes its message
    /// (the ready time is the latest fragment arrival), `None` while the
    /// message is still partial.
    ///
    /// # Panics
    ///
    /// Panics if the fragment index is out of range, if the same fragment is
    /// delivered twice, or if the same message id is re-delivered with
    /// conflicting metadata. (The caller must not redeliver fragments of a
    /// message that already completed.)
    pub fn deliver_fragment(
        &mut self,
        meta: MessageMeta,
        frag_index: u32,
        arrival: SimTime,
    ) -> Option<SimTime> {
        assert!(
            frag_index < meta.frag_count,
            "fragment index {frag_index} out of range"
        );
        let slot = self.assembling.entry(meta.id).or_insert(Assembling {
            meta,
            received_mask: vec![false; meta.frag_count as usize],
            received: 0,
            latest_arrival: SimTime::ZERO,
        });
        assert_eq!(slot.meta, meta, "conflicting metadata for {}", meta.id);
        assert!(
            !slot.received_mask[frag_index as usize],
            "duplicate fragment {frag_index} for {}",
            meta.id
        );
        slot.received_mask[frag_index as usize] = true;
        slot.received += 1;
        slot.latest_arrival = slot.latest_arrival.max(arrival);
        if slot.received == meta.frag_count {
            let done = self.assembling.remove(&meta.id).expect("slot vanished");
            self.completed_total += 1;
            self.ready.push(Ready {
                meta: done.meta,
                ready_at: done.latest_arrival,
            });
            Some(done.latest_arrival)
        } else {
            None
        }
    }

    /// Attempts to match a receive posted at simulated time `now`.
    ///
    /// See [`MatchOutcome`] for the three possible results. Only a
    /// [`MatchOutcome::Matched`] consumes the message.
    pub fn match_recv(&mut self, src: Option<Rank>, tag: Tag, now: SimTime) -> MatchOutcome {
        // Per (src, tag) channel the earliest-seq ready message is the only
        // legal match (non-overtaking); collect one candidate per source.
        let mut best: Option<(usize, Ready)> = None;
        for (i, r) in self.ready.iter().enumerate() {
            if r.meta.tag != tag {
                continue;
            }
            if let Some(want) = src {
                if r.meta.id.src != want {
                    continue;
                }
            }
            let replace = match &best {
                None => true,
                Some((_, b)) => {
                    if r.meta.id.src == b.meta.id.src {
                        // Same channel: lower seq wins regardless of time.
                        r.meta.id.seq < b.meta.id.seq
                    } else {
                        // Different sources: earliest availability wins;
                        // deterministic tie-break by (src, seq).
                        (r.ready_at, r.meta.id.src, r.meta.id.seq)
                            < (b.ready_at, b.meta.id.src, b.meta.id.seq)
                    }
                }
            };
            if replace {
                best = Some((i, *r));
            }
        }
        match best {
            None => MatchOutcome::NoMatch,
            Some((i, r)) if r.ready_at <= now => {
                self.ready.swap_remove(i);
                MatchOutcome::Matched(r.meta, r.ready_at)
            }
            Some((_, r)) => MatchOutcome::ReadyAt(r.ready_at),
        }
    }

    /// Number of fully reassembled messages not yet consumed.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of messages still missing fragments.
    pub fn assembling_len(&self) -> usize {
        self.assembling.len()
    }

    /// Total messages completed over the mailbox's lifetime.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Captures the full receive-side state for a snapshot.
    ///
    /// Partially assembled messages are emitted sorted by message id (the
    /// internal map iterates in arbitrary order); the ready list is emitted
    /// **verbatim** — [`Self::match_recv`] removes with `swap_remove`, so
    /// replaying an identical run requires the identical vector layout.
    pub fn export_state(&self) -> MailboxState {
        let mut assembling: Vec<AssemblingState> = self
            .assembling
            .values()
            .map(|a| AssemblingState {
                meta: a.meta,
                received_mask: a.received_mask.clone(),
                latest_arrival: a.latest_arrival,
            })
            .collect();
        assembling.sort_by_key(|a| a.meta.id);
        MailboxState {
            assembling,
            ready: self
                .ready
                .iter()
                .map(|r| ReadyState {
                    meta: r.meta,
                    ready_at: r.ready_at,
                })
                .collect(),
            completed_total: self.completed_total,
        }
    }

    /// Rebuilds a mailbox captured by [`Self::export_state`], validating the
    /// structural invariants a corrupt snapshot could violate.
    pub fn from_state(state: MailboxState) -> Result<Self, String> {
        let mut assembling = HashMap::with_capacity(state.assembling.len());
        for a in state.assembling {
            if a.received_mask.len() != a.meta.frag_count as usize {
                return Err(format!(
                    "message {}: mask length {} != frag_count {}",
                    a.meta.id,
                    a.received_mask.len(),
                    a.meta.frag_count
                ));
            }
            let received = a.received_mask.iter().filter(|&&b| b).count() as u32;
            if received == 0 || received >= a.meta.frag_count {
                return Err(format!(
                    "message {}: {} of {} fragments is not a partial assembly",
                    a.meta.id, received, a.meta.frag_count
                ));
            }
            if assembling
                .insert(
                    a.meta.id,
                    Assembling {
                        meta: a.meta,
                        received_mask: a.received_mask,
                        received,
                        latest_arrival: a.latest_arrival,
                    },
                )
                .is_some()
            {
                return Err(format!("duplicate assembling message {}", a.meta.id));
            }
        }
        Ok(Self {
            assembling,
            ready: state
                .ready
                .into_iter()
                .map(|r| Ready {
                    meta: r.meta,
                    ready_at: r.ready_at,
                })
                .collect(),
            completed_total: state.completed_total,
        })
    }
}

/// One partially assembled message inside a [`MailboxState`].
#[derive(Clone, Debug, PartialEq)]
pub struct AssemblingState {
    /// Message metadata.
    pub meta: MessageMeta,
    /// Which fragments have arrived (`frag_count` entries).
    pub received_mask: Vec<bool>,
    /// Latest fragment arrival seen so far.
    pub latest_arrival: SimTime,
}

/// One completed-but-unconsumed message inside a [`MailboxState`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadyState {
    /// Message metadata.
    pub meta: MessageMeta,
    /// When the message became available.
    pub ready_at: SimTime,
}

/// The full receive-side state of one node, as captured by
/// [`Mailbox::export_state`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MailboxState {
    /// In-flight reassembly, sorted by message id.
    pub assembling: Vec<AssemblingState>,
    /// Completed messages in the mailbox's exact (swap_remove-shaped) order.
    pub ready: Vec<ReadyState>,
    /// Lifetime completion counter.
    pub completed_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u32, seq: u64, tag: u32, frags: u32) -> MessageMeta {
        MessageMeta {
            id: MessageId {
                src: Rank::new(src),
                seq,
            },
            tag: Tag::new(tag),
            bytes: 9000 * frags as u64,
            frag_count: frags,
        }
    }

    #[test]
    fn single_fragment_completes_immediately() {
        let mut mb = Mailbox::new();
        let t = SimTime::from_micros(2);
        assert_eq!(mb.deliver_fragment(meta(1, 0, 0, 1), 0, t), Some(t));
        assert_eq!(mb.ready_len(), 1);
        assert_eq!(mb.completed_total(), 1);
    }

    #[test]
    fn multi_fragment_ready_at_last_arrival() {
        let mut mb = Mailbox::new();
        let m = meta(1, 0, 0, 3);
        assert_eq!(mb.deliver_fragment(m, 0, SimTime::from_micros(1)), None);
        assert_eq!(mb.deliver_fragment(m, 2, SimTime::from_micros(9)), None);
        assert_eq!(mb.assembling_len(), 1);
        assert_eq!(
            mb.deliver_fragment(m, 1, SimTime::from_micros(5)),
            Some(SimTime::from_micros(9))
        );
        assert_eq!(mb.assembling_len(), 0);
    }

    #[test]
    fn matched_consumes() {
        let mut mb = Mailbox::new();
        mb.deliver_fragment(meta(1, 0, 7, 1), 0, SimTime::from_micros(1));
        let out = mb.match_recv(Some(Rank::new(1)), Tag::new(7), SimTime::from_micros(2));
        assert!(matches!(out, MatchOutcome::Matched(m, t)
            if m.id.seq == 0 && t == SimTime::from_micros(1)));
        assert_eq!(mb.ready_len(), 0);
        assert_eq!(
            mb.match_recv(Some(Rank::new(1)), Tag::new(7), SimTime::from_micros(2)),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn future_ready_reported_not_consumed() {
        let mut mb = Mailbox::new();
        mb.deliver_fragment(meta(1, 0, 7, 1), 0, SimTime::from_micros(10));
        let out = mb.match_recv(Some(Rank::new(1)), Tag::new(7), SimTime::from_micros(2));
        assert_eq!(out, MatchOutcome::ReadyAt(SimTime::from_micros(10)));
        assert_eq!(mb.ready_len(), 1);
    }

    #[test]
    fn tag_mismatch_is_no_match() {
        let mut mb = Mailbox::new();
        mb.deliver_fragment(meta(1, 0, 7, 1), 0, SimTime::ZERO);
        assert_eq!(
            mb.match_recv(Some(Rank::new(1)), Tag::new(8), SimTime::MAX),
            MatchOutcome::NoMatch
        );
    }

    #[test]
    fn non_overtaking_within_channel() {
        let mut mb = Mailbox::new();
        // seq 1 becomes ready *earlier* than seq 0 (engineered reorder).
        mb.deliver_fragment(meta(1, 1, 0, 1), 0, SimTime::from_micros(1));
        mb.deliver_fragment(meta(1, 0, 0, 1), 0, SimTime::from_micros(5));
        let out = mb.match_recv(Some(Rank::new(1)), Tag::new(0), SimTime::from_micros(10));
        // Must match seq 0 first despite its later ready time.
        assert!(matches!(out, MatchOutcome::Matched(m, _) if m.id.seq == 0));
        let out2 = mb.match_recv(Some(Rank::new(1)), Tag::new(0), SimTime::from_micros(10));
        assert!(matches!(out2, MatchOutcome::Matched(m, _) if m.id.seq == 1));
    }

    #[test]
    fn wildcard_takes_earliest_across_sources() {
        let mut mb = Mailbox::new();
        mb.deliver_fragment(meta(2, 0, 0, 1), 0, SimTime::from_micros(4));
        mb.deliver_fragment(meta(1, 0, 0, 1), 0, SimTime::from_micros(9));
        let out = mb.match_recv(None, Tag::new(0), SimTime::from_micros(20));
        assert!(matches!(out, MatchOutcome::Matched(m, _) if m.id.src == Rank::new(2)));
    }

    #[test]
    fn wildcard_tie_breaks_by_source_rank() {
        let mut mb = Mailbox::new();
        let t = SimTime::from_micros(4);
        mb.deliver_fragment(meta(3, 0, 0, 1), 0, t);
        mb.deliver_fragment(meta(1, 0, 0, 1), 0, t);
        let out = mb.match_recv(None, Tag::new(0), SimTime::MAX);
        assert!(matches!(out, MatchOutcome::Matched(m, _) if m.id.src == Rank::new(1)));
    }

    #[test]
    fn state_round_trip_preserves_matching_order() {
        let mut mb = Mailbox::new();
        // Two ready messages (one consumed to shift swap_remove layout) and
        // one partial assembly.
        mb.deliver_fragment(meta(1, 0, 0, 1), 0, SimTime::from_micros(1));
        mb.deliver_fragment(meta(2, 0, 0, 1), 0, SimTime::from_micros(2));
        mb.deliver_fragment(meta(3, 0, 0, 1), 0, SimTime::from_micros(3));
        mb.match_recv(Some(Rank::new(1)), Tag::new(0), SimTime::MAX);
        mb.deliver_fragment(meta(1, 1, 0, 3), 0, SimTime::from_micros(4));
        mb.deliver_fragment(meta(1, 1, 0, 3), 2, SimTime::from_micros(6));
        let mut restored = Mailbox::from_state(mb.export_state()).expect("valid state");
        assert_eq!(restored.completed_total(), mb.completed_total());
        assert_eq!(restored.ready_len(), mb.ready_len());
        assert_eq!(restored.assembling_len(), 1);
        // Identical matching decisions after the round trip.
        let a = mb.match_recv(None, Tag::new(0), SimTime::MAX);
        let b = restored.match_recv(None, Tag::new(0), SimTime::MAX);
        assert_eq!(a, b);
        assert_eq!(
            restored.deliver_fragment(meta(1, 1, 0, 3), 1, SimTime::from_micros(9)),
            mb.deliver_fragment(meta(1, 1, 0, 3), 1, SimTime::from_micros(9)),
        );
    }

    #[test]
    fn corrupt_states_are_rejected() {
        let bad_mask = MailboxState {
            assembling: vec![AssemblingState {
                meta: meta(1, 0, 0, 3),
                received_mask: vec![true],
                latest_arrival: SimTime::ZERO,
            }],
            ready: vec![],
            completed_total: 0,
        };
        assert!(Mailbox::from_state(bad_mask).is_err());
        let complete_marked_partial = MailboxState {
            assembling: vec![AssemblingState {
                meta: meta(1, 0, 0, 2),
                received_mask: vec![true, true],
                latest_arrival: SimTime::ZERO,
            }],
            ready: vec![],
            completed_total: 0,
        };
        assert!(Mailbox::from_state(complete_marked_partial).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate fragment")]
    fn duplicate_fragment_panics() {
        let mut mb = Mailbox::new();
        let m = meta(1, 0, 0, 2);
        mb.deliver_fragment(m, 0, SimTime::ZERO);
        mb.deliver_fragment(m, 0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fragment_index_panics() {
        let mut mb = Mailbox::new();
        mb.deliver_fragment(meta(1, 0, 0, 2), 5, SimTime::ZERO);
    }
}
