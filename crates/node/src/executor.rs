//! The resumable node executor: a node program as a pull-based state machine.

use crate::cpu::CpuModel;
use crate::mailbox::{Mailbox, MailboxState, MatchOutcome, MessageMeta};
use crate::program::{Op, Program, Rank, RegionId, SendTarget, Tag};
use aqs_time::{SimDuration, SimTime};
use std::collections::HashMap;

/// What the node wants to do next, as reported to the cluster engine.
///
/// The engine owns the clock: the executor never advances time itself, it
/// only *describes* the next step. This is what makes it resumable across
/// quantum boundaries — the engine can execute an [`Action::Advance`] in
/// several pieces, interleaving barriers and packet deliveries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Let simulated time pass.
    Advance {
        /// How long.
        dur: SimDuration,
        /// Abstract operations retired during this span (0 for idle spans).
        ops: u64,
        /// `true` if the guest is idle (the host can fast-forward it).
        idle: bool,
    },
    /// Hand a message to the NIC at the current simulated time. The engine
    /// charges the NIC serialization time to the sender's clock and emits
    /// the fragments.
    Send {
        /// Destination.
        dst: SendTarget,
        /// Payload bytes.
        bytes: u64,
        /// Matching tag.
        tag: Tag,
    },
    /// A matching message is already reassembling/queued and becomes
    /// available at this future simulated time; the engine should idle the
    /// node to that point and poll again.
    WaitUntil(SimTime),
    /// Blocked on a receive with no candidate message yet; only a new
    /// delivery (or the end of the run) can unblock the node.
    Blocked,
    /// The program has completed.
    Finished,
}

/// A closed timed region instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionRecord {
    /// Which region.
    pub region: RegionId,
    /// Start simulated time.
    pub start: SimTime,
    /// End simulated time.
    pub end: SimTime,
}

impl RegionRecord {
    /// Duration of this instance.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Interprets a [`Program`] one action at a time.
///
/// The contract with the engine:
///
/// 1. call [`next_action`](Self::next_action) with the node's current
///    simulated time;
/// 2. fully execute the returned action (advancing the node's clock as
///    needed) before polling again — except that [`Action::WaitUntil`] and
///    [`Action::Blocked`] may be re-polled at any time, e.g. after a
///    delivery;
/// 3. feed incoming fragments through
///    [`deliver_fragment`](Self::deliver_fragment) whenever they arrive.
///
/// # Examples
///
/// ```
/// use aqs_node::{Action, CpuModel, NodeExecutor, ProgramBuilder, Rank, Tag};
/// use aqs_time::SimTime;
///
/// let prog = ProgramBuilder::new(Rank::new(0))
///     .send(Rank::new(1), 64, Tag::new(0))
///     .build();
/// let mut exec = NodeExecutor::new(prog, CpuModel::default());
/// assert!(matches!(exec.next_action(SimTime::ZERO), Action::Send { bytes: 64, .. }));
/// assert!(matches!(exec.next_action(SimTime::ZERO), Action::Finished));
/// assert!(exec.finished());
/// ```
#[derive(Clone, Debug)]
pub struct NodeExecutor {
    program: Program,
    cpu: CpuModel,
    pc: usize,
    mailbox: Mailbox,
    ops_executed: u64,
    messages_received: u64,
    /// Pending receive-completion overhead to charge before the next op.
    pending_overhead: SimDuration,
    open_regions: HashMap<RegionId, SimTime>,
    regions: Vec<RegionRecord>,
    finish_time: Option<SimTime>,
}

impl NodeExecutor {
    /// Creates an executor positioned at the first op.
    pub fn new(program: Program, cpu: CpuModel) -> Self {
        Self {
            program,
            cpu,
            pc: 0,
            mailbox: Mailbox::new(),
            ops_executed: 0,
            messages_received: 0,
            pending_overhead: SimDuration::ZERO,
            open_regions: HashMap::new(),
            regions: Vec::new(),
            finish_time: None,
        }
    }

    /// The rank this executor implements.
    pub fn rank(&self) -> Rank {
        self.program.rank()
    }

    /// Returns the next action at simulated time `now`.
    ///
    /// Zero-cost ops (region markers, already-satisfied receives with zero
    /// overhead) are consumed internally, so the returned action always
    /// represents observable progress or a terminal state.
    pub fn next_action(&mut self, now: SimTime) -> Action {
        if !self.pending_overhead.is_zero() {
            let dur = std::mem::take(&mut self.pending_overhead);
            return Action::Advance {
                dur,
                ops: 0,
                idle: false,
            };
        }
        loop {
            let Some(op) = self.program.ops().get(self.pc).copied() else {
                if self.finish_time.is_none() {
                    self.finish_time = Some(now);
                }
                return Action::Finished;
            };
            match op {
                Op::Compute { ops } => {
                    self.pc += 1;
                    self.ops_executed += ops;
                    let dur = self.cpu.compute_duration(ops);
                    if dur.is_zero() {
                        continue;
                    }
                    return Action::Advance {
                        dur,
                        ops,
                        idle: false,
                    };
                }
                Op::Idle { dur } => {
                    self.pc += 1;
                    if dur.is_zero() {
                        continue;
                    }
                    return Action::Advance {
                        dur,
                        ops: 0,
                        idle: true,
                    };
                }
                Op::Send { dst, bytes, tag } => {
                    self.pc += 1;
                    return Action::Send { dst, bytes, tag };
                }
                Op::Recv { src, tag } => match self.mailbox.match_recv(src, tag, now) {
                    MatchOutcome::Matched(_meta, _ready) => {
                        self.pc += 1;
                        self.messages_received += 1;
                        let overhead = self.cpu.recv_overhead();
                        if overhead.is_zero() {
                            continue;
                        }
                        return Action::Advance {
                            dur: overhead,
                            ops: 0,
                            idle: false,
                        };
                    }
                    MatchOutcome::ReadyAt(t) => return Action::WaitUntil(t),
                    MatchOutcome::NoMatch => return Action::Blocked,
                },
                Op::RegionStart(region) => {
                    self.pc += 1;
                    let prev = self.open_regions.insert(region, now);
                    assert!(prev.is_none(), "{region} started twice without ending");
                }
                Op::RegionEnd(region) => {
                    self.pc += 1;
                    let start = self
                        .open_regions
                        .remove(&region)
                        .unwrap_or_else(|| panic!("{region} ended without starting"));
                    self.regions.push(RegionRecord {
                        region,
                        start,
                        end: now,
                    });
                }
            }
        }
    }

    /// Delivers one fragment visible at `arrival`; returns the message
    /// ready-time when this completes a message. See
    /// [`Mailbox::deliver_fragment`].
    pub fn deliver_fragment(
        &mut self,
        meta: MessageMeta,
        frag_index: u32,
        arrival: SimTime,
    ) -> Option<SimTime> {
        self.mailbox.deliver_fragment(meta, frag_index, arrival)
    }

    /// `true` once [`Action::Finished`] has been returned.
    pub fn finished(&self) -> bool {
        self.finish_time.is_some()
    }

    /// Simulated time at which the program completed, if it has.
    pub fn finish_time(&self) -> Option<SimTime> {
        self.finish_time
    }

    /// Abstract operations retired so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Messages fully received and consumed so far.
    pub fn messages_received(&self) -> u64 {
        self.messages_received
    }

    /// All closed region instances, in completion order.
    pub fn regions(&self) -> &[RegionRecord] {
        &self.regions
    }

    /// Total time spent in all closed instances of `region`.
    pub fn region_duration(&self, region: RegionId) -> SimDuration {
        self.regions
            .iter()
            .filter(|r| r.region == region)
            .map(RegionRecord::duration)
            .sum()
    }

    /// Regions currently open (started but not ended).
    pub fn open_region_count(&self) -> usize {
        self.open_regions.len()
    }

    /// Read access to the mailbox (diagnostics).
    pub fn mailbox(&self) -> &Mailbox {
        &self.mailbox
    }

    /// Current program counter (diagnostics).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Captures the interpreter position and receive-side state for a
    /// snapshot. The program and CPU model are configuration and are
    /// reconstructed on resume. Open regions are emitted sorted by id.
    pub fn export_state(&self) -> ExecutorState {
        let mut open_regions: Vec<(RegionId, SimTime)> =
            self.open_regions.iter().map(|(&r, &t)| (r, t)).collect();
        open_regions.sort_by_key(|&(r, _)| r);
        ExecutorState {
            pc: self.pc as u64,
            ops_executed: self.ops_executed,
            messages_received: self.messages_received,
            pending_overhead: self.pending_overhead,
            open_regions,
            regions: self.regions.clone(),
            finish_time: self.finish_time,
            mailbox: self.mailbox.export_state(),
        }
    }

    /// Rebuilds an executor captured by [`Self::export_state`] over the same
    /// (configuration-derived) program and CPU model.
    pub fn from_state(
        program: Program,
        cpu: CpuModel,
        state: ExecutorState,
    ) -> Result<Self, String> {
        if state.pc as usize > program.ops().len() {
            return Err(format!(
                "pc {} beyond program length {}",
                state.pc,
                program.ops().len()
            ));
        }
        Ok(Self {
            program,
            cpu,
            pc: state.pc as usize,
            mailbox: Mailbox::from_state(state.mailbox)?,
            ops_executed: state.ops_executed,
            messages_received: state.messages_received,
            pending_overhead: state.pending_overhead,
            open_regions: state.open_regions.into_iter().collect(),
            regions: state.regions,
            finish_time: state.finish_time,
        })
    }
}

/// The dynamic state of a [`NodeExecutor`], as captured by
/// [`NodeExecutor::export_state`] at a quantum edge.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutorState {
    /// Program counter.
    pub pc: u64,
    /// Abstract operations retired so far.
    pub ops_executed: u64,
    /// Messages fully received and consumed so far.
    pub messages_received: u64,
    /// Receive-completion overhead still to charge.
    pub pending_overhead: SimDuration,
    /// Open timed regions, sorted by region id.
    pub open_regions: Vec<(RegionId, SimTime)>,
    /// Closed region instances, in completion order.
    pub regions: Vec<RegionRecord>,
    /// Completion time, if the program already finished.
    pub finish_time: Option<SimTime>,
    /// Receive-side state.
    pub mailbox: MailboxState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::MessageId;
    use crate::program::ProgramBuilder;

    fn cpu() -> CpuModel {
        // 1 GHz, IPC 1, 2 µs recv overhead → 1 op = 1 ns.
        CpuModel::new(1_000_000_000, 1.0, SimDuration::from_micros(2))
    }

    fn meta(src: u32, seq: u64, tag: u32) -> MessageMeta {
        MessageMeta {
            id: MessageId {
                src: Rank::new(src),
                seq,
            },
            tag: Tag::new(tag),
            bytes: 64,
            frag_count: 1,
        }
    }

    #[test]
    fn compute_then_finish() {
        let p = ProgramBuilder::new(Rank::new(0)).compute(1000).build();
        let mut e = NodeExecutor::new(p, cpu());
        assert_eq!(
            e.next_action(SimTime::ZERO),
            Action::Advance {
                dur: SimDuration::from_micros(1),
                ops: 1000,
                idle: false
            }
        );
        assert_eq!(e.next_action(SimTime::from_micros(1)), Action::Finished);
        assert_eq!(e.finish_time(), Some(SimTime::from_micros(1)));
        assert_eq!(e.ops_executed(), 1000);
    }

    #[test]
    fn idle_is_flagged() {
        let p = ProgramBuilder::new(Rank::new(0))
            .idle(SimDuration::from_micros(5))
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        assert_eq!(
            e.next_action(SimTime::ZERO),
            Action::Advance {
                dur: SimDuration::from_micros(5),
                ops: 0,
                idle: true
            }
        );
    }

    #[test]
    fn zero_cost_ops_are_skipped() {
        let p = ProgramBuilder::new(Rank::new(0))
            .compute(0)
            .idle(SimDuration::ZERO)
            .compute(7)
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        assert!(matches!(
            e.next_action(SimTime::ZERO),
            Action::Advance { ops: 7, .. }
        ));
    }

    #[test]
    fn recv_blocks_until_delivery_then_charges_overhead() {
        let p = ProgramBuilder::new(Rank::new(0))
            .recv(Some(Rank::new(1)), Tag::new(3))
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        assert_eq!(e.next_action(SimTime::ZERO), Action::Blocked);
        let ready = e.deliver_fragment(meta(1, 0, 3), 0, SimTime::from_micros(4));
        assert_eq!(ready, Some(SimTime::from_micros(4)));
        // Polling before availability: wait until the data is there.
        assert_eq!(
            e.next_action(SimTime::from_micros(1)),
            Action::WaitUntil(SimTime::from_micros(4))
        );
        // At availability: consume + 2 µs software overhead.
        assert_eq!(
            e.next_action(SimTime::from_micros(4)),
            Action::Advance {
                dur: SimDuration::from_micros(2),
                ops: 0,
                idle: false
            }
        );
        assert_eq!(e.next_action(SimTime::from_micros(6)), Action::Finished);
        assert_eq!(e.messages_received(), 1);
    }

    #[test]
    fn send_yields_then_proceeds() {
        let p = ProgramBuilder::new(Rank::new(0))
            .send(Rank::new(1), 9000, Tag::new(0))
            .compute(10)
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        assert_eq!(
            e.next_action(SimTime::ZERO),
            Action::Send {
                dst: SendTarget::Rank(Rank::new(1)),
                bytes: 9000,
                tag: Tag::new(0)
            }
        );
        assert!(matches!(
            e.next_action(SimTime::from_micros(7)),
            Action::Advance { ops: 10, .. }
        ));
    }

    #[test]
    fn regions_are_recorded_at_poll_times() {
        let p = ProgramBuilder::new(Rank::new(0))
            .region_start(RegionId::KERNEL)
            .compute(5000)
            .region_end(RegionId::KERNEL)
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        let a = e.next_action(SimTime::from_micros(10));
        assert!(matches!(a, Action::Advance { ops: 5000, .. }));
        assert_eq!(e.next_action(SimTime::from_micros(15)), Action::Finished);
        let regs = e.regions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].start, SimTime::from_micros(10));
        assert_eq!(regs[0].end, SimTime::from_micros(15));
        assert_eq!(
            e.region_duration(RegionId::KERNEL),
            SimDuration::from_micros(5)
        );
        assert_eq!(e.open_region_count(), 0);
    }

    #[test]
    fn repeated_region_instances_accumulate() {
        let r = RegionId::new(2);
        let mut b = ProgramBuilder::new(Rank::new(0));
        for _ in 0..2 {
            b = b.region_start(r).compute(1000).region_end(r);
        }
        let mut e = NodeExecutor::new(b.build(), cpu());
        let mut t = SimTime::ZERO;
        loop {
            match e.next_action(t) {
                Action::Advance { dur, .. } => t += dur,
                Action::Finished => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e.regions().len(), 2);
        assert_eq!(e.region_duration(r), SimDuration::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "ended without starting")]
    fn unbalanced_region_end_panics() {
        let p = ProgramBuilder::new(Rank::new(0))
            .region_end(RegionId::KERNEL)
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        let _ = e.next_action(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_region_start_panics() {
        let p = ProgramBuilder::new(Rank::new(0))
            .region_start(RegionId::KERNEL)
            .region_start(RegionId::KERNEL)
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        let _ = e.next_action(SimTime::ZERO);
    }

    #[test]
    fn finished_is_idempotent() {
        let p = ProgramBuilder::new(Rank::new(0)).build();
        let mut e = NodeExecutor::new(p, cpu());
        assert_eq!(e.next_action(SimTime::from_micros(9)), Action::Finished);
        assert_eq!(e.next_action(SimTime::from_micros(99)), Action::Finished);
        // Finish time is the first observation.
        assert_eq!(e.finish_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn state_round_trip_resumes_mid_program() {
        let p = ProgramBuilder::new(Rank::new(0))
            .region_start(RegionId::KERNEL)
            .compute(1000)
            .recv(Some(Rank::new(1)), Tag::new(3))
            .compute(500)
            .region_end(RegionId::KERNEL)
            .build();
        let mut e = NodeExecutor::new(p.clone(), cpu());
        let mut t = SimTime::ZERO;
        // Run up to the blocked receive, then deliver and stop mid-stream.
        while let Action::Advance { dur, .. } = e.next_action(t) {
            t += dur;
        }
        assert_eq!(e.next_action(t), Action::Blocked);
        e.deliver_fragment(meta(1, 0, 3), 0, t + SimDuration::from_micros(1));
        let state = e.export_state();
        let mut r = NodeExecutor::from_state(p, cpu(), state).expect("valid state");
        assert_eq!(r.pc(), e.pc());
        assert_eq!(r.open_region_count(), 1);
        // Both finish identically from here.
        let (mut ta, mut tb) = (t, t);
        loop {
            let (a, b) = (e.next_action(ta), r.next_action(tb));
            assert_eq!(a, b);
            match a {
                Action::Advance { dur, .. } => {
                    ta += dur;
                    tb += dur;
                }
                Action::WaitUntil(w) => {
                    ta = w;
                    tb = w;
                }
                Action::Finished => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e.regions(), r.regions());
        assert_eq!(e.messages_received(), r.messages_received());
    }

    #[test]
    fn out_of_range_pc_is_rejected() {
        let p = ProgramBuilder::new(Rank::new(0)).compute(10).build();
        let e = NodeExecutor::new(p.clone(), cpu());
        let mut state = e.export_state();
        state.pc = 99;
        assert!(NodeExecutor::from_state(p, cpu(), state).is_err());
    }

    #[test]
    fn wildcard_recv_takes_earliest() {
        let p = ProgramBuilder::new(Rank::new(0))
            .recv(None, Tag::new(0))
            .build();
        let mut e = NodeExecutor::new(p, cpu());
        e.deliver_fragment(meta(2, 0, 0), 0, SimTime::from_micros(8));
        e.deliver_fragment(meta(1, 0, 0), 0, SimTime::from_micros(3));
        assert_eq!(
            e.next_action(SimTime::from_micros(10)),
            Action::Advance {
                dur: SimDuration::from_micros(2),
                ops: 0,
                idle: false
            }
        );
        assert_eq!(e.messages_received(), 1);
        // The rank-1 message (earlier ready) was taken; rank-2 remains.
        assert_eq!(e.mailbox().ready_len(), 1);
    }
}
