//! Workload programs: the operation stream a simulated node executes.

use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The application-level identity of a node (its MPI rank).
///
/// Every simulated node runs exactly one rank (the paper simulates clusters
/// of single-processor nodes), so rank *r* lives on node *r*; the types stay
/// separate because one is an application concept and the other a network
/// port.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Rank(u32);

impl Rank {
    /// Creates a rank from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Dense index of this rank.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Message tag for MPI-style matching.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Tag(u32);

impl Tag {
    /// Creates a tag.
    #[inline]
    pub const fn new(v: u32) -> Self {
        Self(v)
    }

    /// Raw value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Identifier of a timed region within a program (e.g. the NAS benchmark's
/// timed kernel).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RegionId(u32);

impl RegionId {
    /// The conventional id of a workload's *main timed kernel* — the region
    /// whose duration feeds the benchmark's self-reported metric.
    pub const KERNEL: Self = Self(0);

    /// Creates a region id.
    #[inline]
    pub const fn new(v: u32) -> Self {
        Self(v)
    }

    /// Raw value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Where a message is sent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SendTarget {
    /// A single peer rank.
    Rank(Rank),
    /// Link-layer broadcast to all other ranks.
    All,
}

impl From<Rank> for SendTarget {
    fn from(r: Rank) -> Self {
        SendTarget::Rank(r)
    }
}

/// One operation of a node program.
///
/// Programs are flat op sequences: workload generators unroll their loops,
/// which keeps the executor a trivial, obviously-correct interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Execute `ops` abstract operations (counted toward MOPS); simulated
    /// duration comes from the [`CpuModel`](crate::CpuModel).
    Compute {
        /// Number of abstract operations.
        ops: u64,
    },
    /// Let simulated time pass without doing accountable work (sleep, OS
    /// housekeeping gaps).
    Idle {
        /// How long to idle.
        dur: SimDuration,
    },
    /// Hand a message to the NIC. The sender is occupied for the message's
    /// serialization time (an eager, blocking send — what LAM/MPI over TCP
    /// does for these sizes).
    Send {
        /// Destination rank or broadcast.
        dst: SendTarget,
        /// Message payload size in bytes.
        bytes: u64,
        /// Matching tag.
        tag: Tag,
    },
    /// Block until a matching message has fully arrived.
    Recv {
        /// Expected sender; `None` accepts any source (wildcard).
        src: Option<Rank>,
        /// Matching tag.
        tag: Tag,
    },
    /// Mark the start of a timed region.
    RegionStart(RegionId),
    /// Mark the end of a timed region.
    RegionEnd(RegionId),
}

/// A complete node program: the rank it implements plus its op stream.
///
/// # Examples
///
/// ```
/// use aqs_node::{ProgramBuilder, Rank, Tag};
///
/// let p = ProgramBuilder::new(Rank::new(1))
///     .recv(Some(Rank::new(0)), Tag::new(9))
///     .compute(500)
///     .send(Rank::new(0), 1024, Tag::new(9))
///     .build();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.rank(), Rank::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    rank: Rank,
    ops: Vec<Op>,
}

impl Program {
    /// Creates a program directly from parts.
    pub fn new(rank: Rank, ops: Vec<Op>) -> Self {
        Self { rank, ops }
    }

    /// The rank this program implements.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The op stream.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program has no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total abstract operations across all `Compute` ops (the workload's
    /// op budget, used for MOPS denominators).
    pub fn total_compute_ops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute { ops } => *ops,
                _ => 0,
            })
            .sum()
    }

    /// Number of `Send` ops (each may fragment into several frames).
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// Number of `Recv` ops.
    pub fn recv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Recv { .. }))
            .count()
    }
}

/// Incremental builder for [`Program`]s.
///
/// All methods take and return `self`, so loops can be written by
/// reassigning (consuming builder, per the API guidelines' builder pattern).
///
/// # Examples
///
/// ```
/// use aqs_node::{ProgramBuilder, Rank, RegionId, Tag};
///
/// let mut b = ProgramBuilder::new(Rank::new(0)).region_start(RegionId::KERNEL);
/// for _ in 0..3 {
///     b = b.compute(100).send(Rank::new(1), 64, Tag::new(0));
/// }
/// let p = b.region_end(RegionId::KERNEL).build();
/// assert_eq!(p.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    rank: Rank,
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Starts a program for `rank`.
    pub fn new(rank: Rank) -> Self {
        Self {
            rank,
            ops: Vec::new(),
        }
    }

    /// Appends a compute op.
    pub fn compute(mut self, ops: u64) -> Self {
        self.ops.push(Op::Compute { ops });
        self
    }

    /// Appends an idle op.
    pub fn idle(mut self, dur: SimDuration) -> Self {
        self.ops.push(Op::Idle { dur });
        self
    }

    /// Appends a unicast send.
    ///
    /// # Panics
    ///
    /// Panics if `dst` equals the program's own rank.
    pub fn send(mut self, dst: Rank, bytes: u64, tag: Tag) -> Self {
        assert!(dst != self.rank, "{} cannot send to itself", self.rank);
        self.ops.push(Op::Send {
            dst: SendTarget::Rank(dst),
            bytes,
            tag,
        });
        self
    }

    /// Appends a broadcast send.
    pub fn send_all(mut self, bytes: u64, tag: Tag) -> Self {
        self.ops.push(Op::Send {
            dst: SendTarget::All,
            bytes,
            tag,
        });
        self
    }

    /// Appends a blocking receive.
    ///
    /// # Panics
    ///
    /// Panics if `src` equals the program's own rank.
    pub fn recv(mut self, src: Option<Rank>, tag: Tag) -> Self {
        if let Some(s) = src {
            assert!(s != self.rank, "{} cannot receive from itself", self.rank);
        }
        self.ops.push(Op::Recv { src, tag });
        self
    }

    /// Appends a region-start marker.
    pub fn region_start(mut self, region: RegionId) -> Self {
        self.ops.push(Op::RegionStart(region));
        self
    }

    /// Appends a region-end marker.
    pub fn region_end(mut self, region: RegionId) -> Self {
        self.ops.push(Op::RegionEnd(region));
        self
    }

    /// Appends a raw op.
    pub fn push(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            rank: self.rank,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order() {
        let p = ProgramBuilder::new(Rank::new(0))
            .compute(10)
            .idle(SimDuration::from_micros(1))
            .send(Rank::new(1), 100, Tag::new(2))
            .recv(None, Tag::new(2))
            .region_start(RegionId::KERNEL)
            .region_end(RegionId::KERNEL)
            .build();
        assert_eq!(p.len(), 6);
        assert!(matches!(p.ops()[0], Op::Compute { ops: 10 }));
        assert!(matches!(p.ops()[2], Op::Send { bytes: 100, .. }));
        assert!(matches!(p.ops()[3], Op::Recv { src: None, .. }));
    }

    #[test]
    fn totals() {
        let p = ProgramBuilder::new(Rank::new(0))
            .compute(10)
            .compute(20)
            .send(Rank::new(1), 1, Tag::new(0))
            .recv(Some(Rank::new(1)), Tag::new(0))
            .build();
        assert_eq!(p.total_compute_ops(), 30);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot send to itself")]
    fn self_send_rejected() {
        let _ = ProgramBuilder::new(Rank::new(3)).send(Rank::new(3), 1, Tag::new(0));
    }

    #[test]
    #[should_panic(expected = "cannot receive from itself")]
    fn self_recv_rejected() {
        let _ = ProgramBuilder::new(Rank::new(3)).recv(Some(Rank::new(3)), Tag::new(0));
    }

    #[test]
    fn displays() {
        assert_eq!(Rank::new(4).to_string(), "rank4");
        assert_eq!(Tag::new(7).to_string(), "tag7");
        assert_eq!(RegionId::KERNEL.to_string(), "region0");
    }

    #[test]
    fn send_target_from_rank() {
        let t: SendTarget = Rank::new(2).into();
        assert_eq!(t, SendTarget::Rank(Rank::new(2)));
    }

    #[test]
    fn empty_program() {
        let p = Program::new(Rank::new(0), vec![]);
        assert!(p.is_empty());
        assert_eq!(p.total_compute_ops(), 0);
    }
}
