//! Time newtypes for the aqs cluster simulator.
//!
//! The simulator juggles two distinct notions of time, and confusing them is
//! the classic bug in parallel-simulation code, so each gets its own newtype
//! pair (see C-NEWTYPE in the Rust API guidelines):
//!
//! * **Simulated time** ([`SimTime`] / [`SimDuration`]) — the clock of the
//!   *target* machine being simulated. Packet latencies, quantum lengths and
//!   benchmark-reported wall-clock all live on this axis.
//! * **Host time** ([`HostTime`] / [`HostDuration`]) — the clock of the
//!   machine *running* the simulation. Simulation speedup is a ratio of host
//!   durations; synchronization overhead is paid in host time.
//!
//! All four types store integer **nanoseconds** in a `u64`, which covers
//! ~584 years — far beyond any simulation. Arithmetic that could overflow or
//! underflow panics in debug builds and saturates in release builds only via
//! the explicit `saturating_*` methods; plain operators use checked arithmetic
//! with a panic, because silent wraparound in a clock is never recoverable.
//!
//! # Examples
//!
//! ```
//! use aqs_time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let latency = SimDuration::from_micros(1);
//! let arrival = start + latency;
//! assert_eq!(arrival.as_nanos(), 1_000);
//! assert_eq!(arrival - start, latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Formats a nanosecond count with an adaptive unit (ns/µs/ms/s).
fn fmt_nanos(nanos: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    const S: u64 = 1_000_000_000;
    if nanos == 0 {
        write!(f, "0ns")
    } else if nanos.is_multiple_of(S) {
        write!(f, "{}s", nanos / S)
    } else if nanos >= S {
        write!(f, "{:.3}s", nanos as f64 / S as f64)
    } else if nanos.is_multiple_of(MS) {
        write!(f, "{}ms", nanos / MS)
    } else if nanos >= MS {
        write!(f, "{:.3}ms", nanos as f64 / MS as f64)
    } else if nanos.is_multiple_of(US) {
        write!(f, "{}µs", nanos / US)
    } else if nanos >= US {
        write!(f, "{:.3}µs", nanos as f64 / US as f64)
    } else {
        write!(f, "{nanos}ns")
    }
}

macro_rules! duration_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// The zero-length duration.
            pub const ZERO: Self = Self(0);
            /// The largest representable duration.
            pub const MAX: Self = Self(u64::MAX);

            /// Creates a duration from whole nanoseconds.
            #[inline]
            pub const fn from_nanos(nanos: u64) -> Self {
                Self(nanos)
            }

            /// Creates a duration from whole microseconds.
            ///
            /// # Panics
            ///
            /// Panics if the value overflows the nanosecond representation.
            #[inline]
            pub const fn from_micros(micros: u64) -> Self {
                match micros.checked_mul(1_000) {
                    Some(n) => Self(n),
                    None => panic!("duration overflow in from_micros"),
                }
            }

            /// Creates a duration from whole milliseconds.
            ///
            /// # Panics
            ///
            /// Panics if the value overflows the nanosecond representation.
            #[inline]
            pub const fn from_millis(millis: u64) -> Self {
                match millis.checked_mul(1_000_000) {
                    Some(n) => Self(n),
                    None => panic!("duration overflow in from_millis"),
                }
            }

            /// Creates a duration from whole seconds.
            ///
            /// # Panics
            ///
            /// Panics if the value overflows the nanosecond representation.
            #[inline]
            pub const fn from_secs(secs: u64) -> Self {
                match secs.checked_mul(1_000_000_000) {
                    Some(n) => Self(n),
                    None => panic!("duration overflow in from_secs"),
                }
            }

            /// Creates a duration from fractional seconds, rounding to the
            /// nearest nanosecond.
            ///
            /// # Panics
            ///
            /// Panics if `secs` is negative, NaN, or too large to represent.
            #[inline]
            pub fn from_secs_f64(secs: f64) -> Self {
                assert!(
                    secs.is_finite() && secs >= 0.0,
                    "duration seconds must be finite and non-negative, got {secs}"
                );
                let nanos = secs * 1e9;
                assert!(nanos <= u64::MAX as f64, "duration overflow in from_secs_f64");
                Self(nanos.round() as u64)
            }

            /// Returns the duration as whole nanoseconds.
            #[inline]
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// Returns the duration as fractional microseconds.
            #[inline]
            pub fn as_micros_f64(self) -> f64 {
                self.0 as f64 / 1e3
            }

            /// Returns the duration as fractional milliseconds.
            #[inline]
            pub fn as_millis_f64(self) -> f64 {
                self.0 as f64 / 1e6
            }

            /// Returns the duration as fractional seconds.
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// Returns `true` if the duration is zero.
            #[inline]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Checked addition; `None` on overflow.
            #[inline]
            pub const fn checked_add(self, rhs: Self) -> Option<Self> {
                match self.0.checked_add(rhs.0) {
                    Some(n) => Some(Self(n)),
                    None => None,
                }
            }

            /// Checked subtraction; `None` on underflow.
            #[inline]
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(n) => Some(Self(n)),
                    None => None,
                }
            }

            /// Saturating subtraction, clamping at zero.
            #[inline]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Saturating addition, clamping at [`Self::MAX`].
            #[inline]
            pub const fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Multiplies by a floating factor, rounding to the nearest
            /// nanosecond.
            ///
            /// # Panics
            ///
            /// Panics if `factor` is negative, NaN, or the result overflows.
            #[inline]
            pub fn mul_f64(self, factor: f64) -> Self {
                assert!(
                    factor.is_finite() && factor >= 0.0,
                    "duration factor must be finite and non-negative, got {factor}"
                );
                let nanos = self.0 as f64 * factor;
                assert!(nanos <= u64::MAX as f64, "duration overflow in mul_f64");
                Self(nanos.round() as u64)
            }

            /// Divides by a floating divisor, rounding to the nearest
            /// nanosecond.
            ///
            /// # Panics
            ///
            /// Panics if `divisor` is not strictly positive or the result
            /// overflows.
            #[inline]
            pub fn div_f64(self, divisor: f64) -> Self {
                assert!(
                    divisor.is_finite() && divisor > 0.0,
                    "duration divisor must be finite and positive, got {divisor}"
                );
                let nanos = self.0 as f64 / divisor;
                assert!(nanos <= u64::MAX as f64, "duration overflow in div_f64");
                Self(nanos.round() as u64)
            }

            /// Returns the ratio `self / other` as `f64`.
            ///
            /// # Panics
            ///
            /// Panics if `other` is zero.
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                assert!(!other.is_zero(), "cannot take ratio against a zero duration");
                self.0 as f64 / other.0 as f64
            }

            /// Clamps the duration into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "invalid clamp range: {lo:?} > {hi:?}");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns the larger of two durations.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two durations.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.checked_add(rhs).expect("duration addition overflowed")
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.checked_sub(rhs).expect("duration subtraction underflowed")
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<u64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: u64) -> Self {
                Self(self.0.checked_mul(rhs).expect("duration multiplication overflowed"))
            }
        }

        impl Div<u64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: u64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Rem for $name {
            type Output = Self;
            #[inline]
            fn rem(self, rhs: Self) -> Self {
                Self(self.0 % rhs.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, d| acc + d)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_nanos(self.0, f)
            }
        }
    };
}

macro_rules! instant_type {
    ($(#[$meta:meta])* $name:ident, $dur:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// The simulation epoch (t = 0).
            pub const ZERO: Self = Self(0);
            /// The largest representable instant.
            pub const MAX: Self = Self(u64::MAX);

            /// Creates an instant from whole nanoseconds since the epoch.
            #[inline]
            pub const fn from_nanos(nanos: u64) -> Self {
                Self(nanos)
            }

            /// Creates an instant from whole microseconds since the epoch.
            #[inline]
            pub const fn from_micros(micros: u64) -> Self {
                Self($dur::from_micros(micros).as_nanos())
            }

            /// Creates an instant from whole milliseconds since the epoch.
            #[inline]
            pub const fn from_millis(millis: u64) -> Self {
                Self($dur::from_millis(millis).as_nanos())
            }

            /// Returns nanoseconds since the epoch.
            #[inline]
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// Returns fractional microseconds since the epoch.
            #[inline]
            pub fn as_micros_f64(self) -> f64 {
                self.0 as f64 / 1e3
            }

            /// Returns fractional seconds since the epoch.
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// Duration elapsed since an earlier instant.
            ///
            /// # Panics
            ///
            /// Panics if `earlier` is after `self`.
            #[inline]
            pub fn duration_since(self, earlier: Self) -> $dur {
                $dur::from_nanos(
                    self.0
                        .checked_sub(earlier.0)
                        .expect("duration_since called with a later instant"),
                )
            }

            /// Duration elapsed since an earlier instant, or zero if
            /// `earlier` is actually later.
            #[inline]
            pub const fn saturating_duration_since(self, earlier: Self) -> $dur {
                $dur::from_nanos(self.0.saturating_sub(earlier.0))
            }

            /// Checked addition of a duration; `None` on overflow.
            #[inline]
            pub const fn checked_add(self, dur: $dur) -> Option<Self> {
                match self.0.checked_add(dur.as_nanos()) {
                    Some(n) => Some(Self(n)),
                    None => None,
                }
            }

            /// Returns the later of two instants.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the earlier of two instants.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add<$dur> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: $dur) -> Self {
                self.checked_add(rhs).expect("instant addition overflowed")
            }
        }

        impl AddAssign<$dur> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $dur) {
                *self = *self + rhs;
            }
        }

        impl Sub<$dur> for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: $dur) -> Self {
                Self(
                    self.0
                        .checked_sub(rhs.as_nanos())
                        .expect("instant subtraction underflowed"),
                )
            }
        }

        impl Sub for $name {
            type Output = $dur;
            #[inline]
            fn sub(self, rhs: Self) -> $dur {
                self.duration_since(rhs)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_nanos(self.0, f)
            }
        }
    };
}

duration_type! {
    /// A span of **simulated** (target-machine) time, in nanoseconds.
    ///
    /// Quantum lengths, network latencies, and benchmark-visible wall-clock
    /// are all `SimDuration`s.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_time::SimDuration;
    /// let q = SimDuration::from_micros(10);
    /// assert_eq!(q * 3, SimDuration::from_micros(30));
    /// assert_eq!(q.mul_f64(1.05), SimDuration::from_nanos(10_500));
    /// ```
    SimDuration
}

duration_type! {
    /// A span of **host** (simulation-running machine) time, in nanoseconds.
    ///
    /// Simulation speedups compare `HostDuration`s: a configuration that
    /// finishes the same workload in less host time is faster, regardless of
    /// what the simulated clocks did.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_time::HostDuration;
    /// let base = HostDuration::from_secs(26);
    /// let fast = HostDuration::from_secs(1);
    /// assert_eq!(base.ratio(fast), 26.0);
    /// ```
    HostDuration
}

instant_type! {
    /// An instant on the **simulated** timeline, in nanoseconds since the
    /// simulation epoch.
    ///
    /// Each simulated node carries its own `SimTime` clock; the quantum
    /// synchronization machinery exists to keep those clocks consistent.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_time::{SimDuration, SimTime};
    /// let t = SimTime::from_micros(3) + SimDuration::from_nanos(250);
    /// assert_eq!(t.as_nanos(), 3_250);
    /// ```
    SimTime, SimDuration
}

instant_type! {
    /// An instant on the **host** timeline, in nanoseconds since the start of
    /// the simulation run.
    ///
    /// The deterministic engine orders all events by `HostTime`; the threaded
    /// engine measures it with a real clock.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_time::{HostDuration, HostTime};
    /// let h = HostTime::ZERO + HostDuration::from_millis(5);
    /// assert_eq!(h.as_nanos(), 5_000_000);
    /// ```
    HostTime, HostDuration
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_constructors() {
        assert_eq!(SimDuration::ZERO.as_nanos(), 0);
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(HostDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(HostTime::from_millis(7).as_nanos(), 7_000_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn instant_duration_roundtrip() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(b - a, SimDuration::from_nanos(250));
        assert_eq!(a + (b - a), b);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_when_reversed() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        let _ = a.duration_since(b);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(250));
    }

    #[test]
    fn mul_div_f64() {
        let q = SimDuration::from_micros(100);
        assert_eq!(q.mul_f64(0.02), SimDuration::from_micros(2));
        assert_eq!(q.mul_f64(1.03), SimDuration::from_nanos(103_000));
        assert_eq!(q.div_f64(4.0), SimDuration::from_micros(25));
    }

    #[test]
    fn clamp_behaves() {
        let lo = SimDuration::from_micros(1);
        let hi = SimDuration::from_micros(1000);
        assert_eq!(SimDuration::from_nanos(10).clamp(lo, hi), lo);
        assert_eq!(SimDuration::from_millis(5).clamp(lo, hi), hi);
        assert_eq!(
            SimDuration::from_micros(42).clamp(lo, hi),
            SimDuration::from_micros(42)
        );
    }

    #[test]
    fn ratio_of_durations() {
        let a = HostDuration::from_secs(10);
        let b = HostDuration::from_secs(4);
        assert!((a.ratio(b) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn ratio_rejects_zero() {
        let _ = HostDuration::from_secs(1).ratio(HostDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10µs");
        assert_eq!(SimDuration::from_nanos(10_500).to_string(), "10.500µs");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimTime::from_micros(5).to_string(), "5µs");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", SimDuration::ZERO), "SimDuration(0ns)");
        assert_eq!(format!("{:?}", HostTime::from_nanos(1)), "HostTime(1ns)");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            SimDuration::ZERO.checked_sub(SimDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            SimDuration::from_nanos(5).checked_sub(SimDuration::from_nanos(3)),
            Some(SimDuration::from_nanos(2))
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(3);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = HostDuration::from_nanos(3);
        let y = HostDuration::from_nanos(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    proptest! {
        #[test]
        fn add_sub_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let x = SimDuration::from_nanos(a);
            let y = SimDuration::from_nanos(b);
            prop_assert_eq!((x + y) - y, x);
        }

        #[test]
        fn instant_ordering_matches_nanos(a in any::<u64>(), b in any::<u64>()) {
            let ta = SimTime::from_nanos(a);
            let tb = SimTime::from_nanos(b);
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }

        #[test]
        fn clamp_is_idempotent(v in any::<u64>(), lo in 0u64..1_000_000, width in 0u64..1_000_000) {
            let lo_d = SimDuration::from_nanos(lo);
            let hi_d = SimDuration::from_nanos(lo + width);
            let once = SimDuration::from_nanos(v).clamp(lo_d, hi_d);
            prop_assert_eq!(once.clamp(lo_d, hi_d), once);
            prop_assert!(once >= lo_d && once <= hi_d);
        }

        #[test]
        fn mul_f64_monotone(v in 0u64..1_000_000_000, f in 0.0f64..10.0) {
            let d = SimDuration::from_nanos(v);
            let scaled = d.mul_f64(f);
            if f >= 1.0 {
                prop_assert!(scaled >= d || v == 0);
            }
        }
    }
}
