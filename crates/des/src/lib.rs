//! A small, deterministic discrete-event simulation (DES) core.
//!
//! Parallel discrete event simulation partitions a model's state among
//! processing units that exchange timestamped events; the sequential kernel
//! underneath is always the same structure: a priority queue of
//! `(time, event)` pairs drained in time order. This crate provides that
//! kernel with the two properties the aqs cluster engine needs:
//!
//! 1. **Total determinism** — events with equal timestamps are delivered in
//!    schedule order (FIFO), so a run is a pure function of its inputs.
//! 2. **O(log n) cancellation** — an event can be invalidated after being
//!    scheduled (lazy deletion), which the engine uses when an incoming
//!    packet wakes a node that had already scheduled its quantum-boundary
//!    event.
//!
//! The queue is generic over the time axis (`SimTime`, `HostTime`, or any
//! `Ord + Copy` instant), because the cluster engine runs its outer loop on
//! *host* time while network models compute in *simulated* time.
//!
//! # Examples
//!
//! ```
//! use aqs_des::EventQueue;
//! use aqs_time::HostTime;
//!
//! let mut q: EventQueue<HostTime, &str> = EventQueue::new();
//! q.schedule(HostTime::from_nanos(20), "second");
//! q.schedule(HostTime::from_nanos(10), "first");
//! let tie_a = q.schedule(HostTime::from_nanos(30), "tie-a");
//! q.schedule(HostTime::from_nanos(30), "tie-b");
//! q.cancel(tie_a);
//!
//! let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, ["first", "second", "tie-b"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod wheel;

pub use wheel::WheelQueue;

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Handle to a scheduled event, usable for cancellation.
///
/// Ids are unique per [`EventQueue`] instance and never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

struct Entry<T, E> {
    time: T,
    seq: u64,
    payload: E,
}

impl<T: Ord, E> PartialEq for Entry<T, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T: Ord, E> Eq for Entry<T, E> {}
impl<T: Ord, E> PartialOrd for Entry<T, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord, E> Ord for Entry<T, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and break
        // timestamp ties by schedule order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic pending-event set ordered by time, FIFO within a time.
///
/// See the [crate docs](crate) for the motivating design notes.
pub struct EventQueue<T, E> {
    heap: BinaryHeap<Entry<T, E>>,
    /// Sequence numbers of events that are scheduled and not yet delivered
    /// or cancelled. Cancellation removes from this set; `pop` skips heap
    /// entries whose seq is absent (lazy deletion).
    live: HashSet<u64>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<T: Ord + Copy, E> Default for EventQueue<T, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Copy, E> EventQueue<T, E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` pending events.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            live: HashSet::with_capacity(n),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` at `time` and returns a cancellation handle.
    ///
    /// Events at equal times are delivered in the order they were scheduled.
    pub fn schedule(&mut self, time: T, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now guaranteed
    /// never to be delivered), `false` if it had already been delivered or
    /// cancelled. Cancellation is lazy: the heap slot is dropped when `pop`
    /// reaches it.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(T, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue; // cancelled
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&mut self) -> Option<T> {
        // Drop cancelled heads so the answer reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

impl<T: Ord + Copy + fmt::Debug, E> fmt::Debug for EventQueue<T, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

/// A self-contained sequential DES driver around [`EventQueue`].
///
/// `Simulation` owns the clock and hands each event to a handler that may
/// schedule further events through [`Context`]. It is the conventional
/// "event loop in a box" for models that don't need the cluster engine's
/// bespoke outer loop, and it powers several of this repository's unit
/// models and examples.
///
/// # Examples
///
/// A one-shot ping-pong between two logical processes:
///
/// ```
/// use aqs_des::Simulation;
/// use aqs_time::{SimDuration, SimTime};
///
/// #[derive(Debug)]
/// enum Ev { Ping(u32), Pong(u32) }
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, Ev::Ping(3));
/// let mut pongs = 0;
/// sim.run(|ctx, ev| match ev {
///     Ev::Ping(n) if n > 0 => {
///         ctx.schedule_in(SimDuration::from_micros(1), Ev::Pong(n));
///     }
///     Ev::Pong(n) => {
///         pongs += 1;
///         ctx.schedule_in(SimDuration::from_micros(1), Ev::Ping(n - 1));
///     }
///     Ev::Ping(_) => {}
/// });
/// assert_eq!(pongs, 3);
/// ```
pub struct Simulation<E> {
    queue: EventQueue<aqs_time::SimTime, E>,
    now: aqs_time::SimTime,
    processed: u64,
}

/// Scheduling surface handed to [`Simulation`] handlers.
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<aqs_time::SimTime, E>,
    now: aqs_time::SimTime,
}

impl<E> Context<'_, E> {
    /// Current simulated time.
    pub fn now(&self) -> aqs_time::SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — conservative DES never rewinds.
    pub fn schedule(&mut self, time: aqs_time::SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.queue.schedule(time, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: aqs_time::SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a pending event. See [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: aqs_time::SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event (before or between runs).
    pub fn schedule(&mut self, time: aqs_time::SimTime, event: E) -> EventId {
        self.queue.schedule(time, event)
    }

    /// Current simulated time (time of the last delivered event).
    pub fn now(&self) -> aqs_time::SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Context<'_, E>, E)) {
        while let Some((time, event)) = self.queue.pop() {
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.processed += 1;
            let mut ctx = Context {
                queue: &mut self.queue,
                now: time,
            };
            handler(&mut ctx, event);
        }
    }

    /// Runs until the queue is empty or the next event is later than
    /// `horizon`; events beyond the horizon remain pending.
    pub fn run_until(
        &mut self,
        horizon: aqs_time::SimTime,
        mut handler: impl FnMut(&mut Context<'_, E>, E),
    ) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked event vanished");
            self.now = time;
            self.processed += 1;
            let mut ctx = Context {
                queue: &mut self.queue,
                now: time,
            };
            handler(&mut ctx, event);
        }
    }
}

impl<E> fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_time::{HostTime, SimDuration, SimTime};
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<HostTime, u32> = EventQueue::new();
        q.schedule(HostTime::from_nanos(30), 3);
        q.schedule(HostTime::from_nanos(10), 1);
        q.schedule(HostTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((HostTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((HostTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((HostTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q: EventQueue<HostTime, u32> = EventQueue::new();
        let t = HostTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancel_pending_event() {
        let mut q: EventQueue<HostTime, &str> = EventQueue::new();
        let id = q.schedule(HostTime::from_nanos(1), "a");
        q.schedule(HostTime::from_nanos(2), "b");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((HostTime::from_nanos(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q: EventQueue<HostTime, ()> = EventQueue::new();
        assert!(!q.cancel(EventId(17)));
    }

    #[test]
    fn cancel_after_delivery_returns_false_and_keeps_len_consistent() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        let id = q.schedule(HostTime::from_nanos(1), 1);
        q.schedule(HostTime::from_nanos(2), 2);
        assert_eq!(q.pop(), Some((HostTime::from_nanos(1), 1)));
        assert!(
            !q.cancel(id),
            "cancelling a delivered event must report false"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((HostTime::from_nanos(2), 2)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q: EventQueue<HostTime, ()> = EventQueue::new();
        let id = q.schedule(HostTime::from_nanos(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        let id = q.schedule(HostTime::from_nanos(1), 1);
        q.schedule(HostTime::from_nanos(5), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(HostTime::from_nanos(5)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        let a = q.schedule(HostTime::from_nanos(1), 1);
        q.schedule(HostTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        q.schedule(HostTime::from_nanos(1), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduled_total_is_monotone() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        q.schedule(HostTime::from_nanos(1), 1);
        let id = q.schedule(HostTime::from_nanos(2), 2);
        q.cancel(id);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn simulation_runs_cascade() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule(SimTime::ZERO, 4);
        let mut seen = Vec::new();
        sim.run(|ctx, n| {
            seen.push((ctx.now(), n));
            if n > 0 {
                ctx.schedule_in(SimDuration::from_nanos(10), n - 1);
            }
        });
        assert_eq!(seen.len(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(40));
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule(SimTime::from_nanos(10), 1);
        sim.schedule(SimTime::from_nanos(50), 2);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_nanos(20), |_, n| seen.push(n));
        assert_eq!(seen, vec![1]);
        sim.run_until(SimTime::from_nanos(100), |_, n| seen.push(n));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulation<u8> = Simulation::new();
        sim.schedule(SimTime::from_nanos(100), 0);
        sim.run(|ctx, _| {
            ctx.schedule(SimTime::from_nanos(1), 1);
        });
    }

    #[test]
    fn debug_is_informative() {
        let mut q: EventQueue<HostTime, u8> = EventQueue::new();
        q.schedule(HostTime::from_nanos(1), 1);
        let s = format!("{q:?}");
        assert!(s.contains("pending"));
        let sim: Simulation<u8> = Simulation::new();
        assert!(format!("{sim:?}").contains("Simulation"));
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, regardless
        /// of schedule order and interleaved cancellations.
        #[test]
        fn pop_sequence_is_sorted(times in prop::collection::vec(0u64..1_000, 1..200),
                                  cancel_mask in prop::collection::vec(any::<bool>(), 1..200)) {
            let mut q: EventQueue<HostTime, usize> = EventQueue::new();
            let ids: Vec<EventId> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| q.schedule(HostTime::from_nanos(t), i))
                .collect();
            for (id, &c) in ids.iter().zip(cancel_mask.iter().cycle()) {
                if c {
                    q.cancel(*id);
                }
            }
            let mut last = HostTime::ZERO;
            let mut popped = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            let cancelled = ids.iter().zip(cancel_mask.iter().cycle()).filter(|(_, &c)| c).count();
            prop_assert_eq!(popped, times.len() - cancelled);
        }

        /// FIFO within equal timestamps holds for any number of duplicates.
        #[test]
        fn fifo_within_ties(groups in prop::collection::vec(0u64..10, 1..100)) {
            let mut q: EventQueue<HostTime, usize> = EventQueue::new();
            for (i, &g) in groups.iter().enumerate() {
                q.schedule(HostTime::from_nanos(g), i);
            }
            let mut last_per_time = std::collections::HashMap::new();
            while let Some((t, i)) = q.pop() {
                if let Some(&prev) = last_per_time.get(&t) {
                    prop_assert!(i > prev, "FIFO violated at {t}: {i} after {prev}");
                }
                last_per_time.insert(t, i);
            }
        }
    }
}
