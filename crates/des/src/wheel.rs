//! A hierarchical timer wheel — the classic alternative to a binary heap
//! for discrete-event simulators with bounded time horizons.
//!
//! The cluster engine's event pattern is heap-friendly (few pending events,
//! wildly varying deltas), but DES kernels facing millions of near-future
//! timers traditionally use timing wheels (Varghese & Lauck, SOSP '87) for
//! O(1) schedule/expire. [`WheelQueue`] implements a 4-level hierarchical
//! wheel over `u64` nanoseconds with the same deterministic FIFO-within-
//! timestamp contract as [`EventQueue`](crate::EventQueue); the `primitives`
//! Criterion bench compares the two, and a property test pins down their
//! behavioural equivalence.
//!
//! # Examples
//!
//! ```
//! use aqs_des::WheelQueue;
//! use aqs_time::HostTime;
//!
//! let mut w: WheelQueue<&str> = WheelQueue::new();
//! w.schedule(HostTime::from_nanos(300), "b");
//! w.schedule(HostTime::from_nanos(5), "a");
//! assert_eq!(w.pop(), Some((HostTime::from_nanos(5), "a")));
//! assert_eq!(w.pop(), Some((HostTime::from_nanos(300), "b")));
//! assert_eq!(w.pop(), None);
//! ```

use aqs_time::HostTime;
use std::collections::VecDeque;

/// Slots per wheel level (must be a power of two).
const SLOTS: usize = 256;
/// Bits per level.
const BITS: u32 = 8;
/// Number of levels; covers 2^(8·4) = 2^32 ns ≈ 4.3 s of horizon per
/// cascade cycle, with overflow handled by re-cascading.
const LEVELS: usize = 4;

#[derive(Clone, Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    payload: E,
}

/// A deterministic hierarchical timing wheel keyed by [`HostTime`].
///
/// Semantics match [`EventQueue`](crate::EventQueue) minus cancellation:
/// `pop` returns events in time order, FIFO within equal timestamps, and
/// scheduling into the past (before the last popped event) is rejected —
/// wheels, unlike heaps, cannot rewind their cursor.
#[derive(Clone, Debug)]
pub struct WheelQueue<E> {
    /// `levels[l][slot]`: events whose expiry shares the cursor's prefix
    /// above level `l`.
    levels: Vec<Vec<VecDeque<Entry<E>>>>,
    /// Events beyond the wheel horizon, kept unsorted until they cascade.
    overflow: Vec<Entry<E>>,
    /// Smallest timestamp parked above level 0 (levels 1+ or overflow).
    /// `pop` must cascade before delivering any level-0 event at or past
    /// this time, or an equal-timestamp event with a smaller sequence
    /// number could be overtaken.
    min_upper: Option<u64>,
    /// Current time cursor (everything below is already delivered).
    cursor: u64,
    next_seq: u64,
    len: usize,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty wheel at time zero.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            overflow: Vec::new(),
            min_upper: None,
            cursor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current time cursor (time of the last popped event).
    pub fn now(&self) -> HostTime {
        HostTime::from_nanos(self.cursor)
    }

    fn slot_for(&self, time: u64) -> Option<(usize, usize)> {
        let delta = time - self.cursor;
        for level in 0..LEVELS {
            let span = 1u64 << (BITS * (level as u32 + 1));
            if delta < span {
                let shift = BITS * level as u32;
                let slot = ((time >> shift) as usize) & (SLOTS - 1);
                return Some((level, slot));
            }
        }
        None
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the wheel's cursor (the past).
    pub fn schedule(&mut self, time: HostTime, payload: E) {
        let t = time.as_nanos();
        assert!(
            t >= self.cursor,
            "cannot schedule into the past ({t} < {})",
            self.cursor
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry {
            time: t,
            seq,
            payload,
        };
        match self.slot_for(t) {
            Some((0, slot)) => self.levels[0][slot].push_back(entry),
            Some((level, slot)) => {
                self.min_upper = Some(self.min_upper.map_or(t, |m| m.min(t)));
                self.levels[level][slot].push_back(entry);
            }
            None => {
                self.min_upper = Some(self.min_upper.map_or(t, |m| m.min(t)));
                self.overflow.push(entry);
            }
        }
    }

    /// Re-files every event of a higher-level slot (or the overflow list)
    /// into finer wheels, preserving FIFO order via sequence numbers.
    fn cascade(&mut self, entries: Vec<Entry<E>>) {
        for entry in entries {
            match self.slot_for(entry.time) {
                Some((level, slot)) => {
                    if level > 0 {
                        self.min_upper =
                            Some(self.min_upper.map_or(entry.time, |m| m.min(entry.time)));
                    }
                    // Keep each slot queue ordered by (time, seq): entries
                    // cascade in insertion order, so pushing back suffices
                    // only within one cascade; merge-insert keeps the
                    // invariant across cascades.
                    let q = &mut self.levels[level][slot];
                    let pos = q
                        .iter()
                        .position(|e| (e.time, e.seq) > (entry.time, entry.seq))
                        .unwrap_or(q.len());
                    q.insert(pos, entry);
                }
                None => {
                    self.min_upper = Some(self.min_upper.map_or(entry.time, |m| m.min(entry.time)));
                    self.overflow.push(entry);
                }
            }
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(HostTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Every level-0 entry lies in [cursor, cursor + 256): deltas
            // were < 256 at insert time and the cursor only advances. Walk
            // the window in time order — the slot for `cursor + offset`
            // wraps around the array, which is exactly the hashed-wheel
            // property.
            let mut cascaded = false;
            for offset in 0..SLOTS as u64 {
                let t = self.cursor + offset;
                let slot = (t as usize) & (SLOTS - 1);
                if self.levels[0][slot].front().is_some() {
                    // An equal-or-earlier event parked above level 0 must
                    // come down first, or FIFO-within-timestamp breaks.
                    if self.min_upper.is_some_and(|m| m <= t) {
                        assert!(self.cascade_next(), "min_upper points at nothing");
                        cascaded = true;
                        break;
                    }
                    let entry = self.levels[0][slot].pop_front().expect("front exists");
                    debug_assert_eq!(entry.time, t, "level-0 invariant violated");
                    self.cursor = entry.time;
                    self.len -= 1;
                    return Some((HostTime::from_nanos(entry.time), entry.payload));
                }
            }
            if cascaded {
                continue;
            }
            // Level 0 is empty: pull the next populated region down.
            if !self.cascade_next() {
                // Nothing anywhere but len > 0 is impossible.
                unreachable!("wheel lost events");
            }
        }
    }

    /// Moves the cursor to the next populated region and cascades it down.
    /// Returns `false` only if the wheel is completely empty.
    fn cascade_next(&mut self) -> bool {
        // Find the earliest event anywhere above level 0 (including
        // overflow); O(slots · levels) scan — amortized fine because each
        // cascade delivers many events.
        let mut best: Option<u64> = None;
        for level in 1..LEVELS {
            for slot in 0..SLOTS {
                if let Some(t) = self.levels[level][slot].iter().map(|e| e.time).min() {
                    best = Some(best.map_or(t, |b: u64| b.min(t)));
                }
            }
        }
        if let Some(t) = self.overflow.iter().map(|e| e.time).min() {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        let Some(target) = best else {
            return false;
        };
        debug_assert_eq!(Some(target), self.min_upper, "min_upper out of sync");
        self.min_upper = None;
        // Jump the cursor to the start of the target's level-0 window (but
        // never backwards) and re-file everything that now fits lower.
        self.cursor = self.cursor.max(target & !((1u64 << BITS) - 1));
        let mut moved = Vec::new();
        for level in 1..LEVELS {
            for slot in 0..SLOTS {
                let mut keep = VecDeque::new();
                while let Some(e) = self.levels[level][slot].pop_front() {
                    // Everything re-files; slot_for decides where it lands.
                    if e.time >= self.cursor {
                        moved.push(e);
                    } else {
                        keep.push_back(e);
                    }
                }
                debug_assert!(keep.is_empty(), "events behind the cursor");
                self.levels[level][slot] = keep;
            }
        }
        let overflow = std::mem::take(&mut self.overflow);
        moved.extend(overflow);
        moved.sort_by_key(|e| (e.time, e.seq));
        self.cascade(moved);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut w: WheelQueue<u32> = WheelQueue::new();
        for &t in &[700u64, 3, 90_000, 12, 1_000_000_000, 12] {
            w.schedule(HostTime::from_nanos(t), t as u32);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _)) = w.pop() {
            assert!(t.as_nanos() >= last);
            last = t.as_nanos();
            n += 1;
        }
        assert_eq!(n, 6);
        assert!(w.is_empty());
    }

    #[test]
    fn fifo_within_equal_times() {
        let mut w: WheelQueue<u32> = WheelQueue::new();
        for i in 0..50 {
            w.schedule(HostTime::from_nanos(1_000_000), i);
        }
        for i in 0..50 {
            assert_eq!(w.pop(), Some((HostTime::from_nanos(1_000_000), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut w: WheelQueue<&str> = WheelQueue::new();
        w.schedule(HostTime::from_nanos(10), "a");
        assert_eq!(w.pop(), Some((HostTime::from_nanos(10), "a")));
        // Scheduling after the cursor moved forward works…
        w.schedule(HostTime::from_nanos(10), "b");
        w.schedule(HostTime::from_nanos(2_000_000_000), "c");
        assert_eq!(w.pop(), Some((HostTime::from_nanos(10), "b")));
        assert_eq!(w.pop(), Some((HostTime::from_nanos(2_000_000_000), "c")));
    }

    /// Regression: a delta under 256 ns whose slot index wraps below the
    /// cursor's slot must still be found by the window scan.
    #[test]
    fn window_wrap_within_level_zero() {
        let mut w: WheelQueue<u8> = WheelQueue::new();
        w.schedule(HostTime::from_nanos(200), 0);
        assert_eq!(w.pop(), Some((HostTime::from_nanos(200), 0)));
        // cursor = 200; 300 & 255 = 44 < 200: the wrapped case.
        w.schedule(HostTime::from_nanos(300), 1);
        assert_eq!(w.pop(), Some((HostTime::from_nanos(300), 1)));
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut w: WheelQueue<()> = WheelQueue::new();
        w.schedule(HostTime::from_nanos(100), ());
        let _ = w.pop();
        w.schedule(HostTime::from_nanos(50), ());
    }

    #[test]
    fn beyond_horizon_overflow_works() {
        let mut w: WheelQueue<u8> = WheelQueue::new();
        // Far beyond the 2^32 ns horizon.
        w.schedule(HostTime::from_nanos(1 << 40), 1);
        w.schedule(HostTime::from_nanos(5), 0);
        assert_eq!(w.pop(), Some((HostTime::from_nanos(5), 0)));
        assert_eq!(w.pop(), Some((HostTime::from_nanos(1 << 40), 1)));
    }

    proptest! {
        /// The wheel and the heap deliver identical sequences for any
        /// monotone interleaving of schedules and pops.
        #[test]
        fn equivalent_to_event_queue(
            batches in prop::collection::vec(
                prop::collection::vec(
                    // Half tiny deltas (stressing the wrap-around window),
                    // half spanning several cascade levels.
                    prop_oneof![0u64..512, 0u64..5_000_000_000],
                    1..20,
                ),
                1..8,
            )
        ) {
            let mut wheel: WheelQueue<usize> = WheelQueue::new();
            let mut heap: EventQueue<HostTime, usize> = EventQueue::new();
            let mut cursor = 0u64;
            let mut idx = 0usize;
            for batch in &batches {
                for &dt in batch {
                    let t = cursor + dt;
                    wheel.schedule(HostTime::from_nanos(t), idx);
                    heap.schedule(HostTime::from_nanos(t), idx);
                    idx += 1;
                }
                // Drain half of what is pending, keeping cursors in step.
                let drain = wheel.len() / 2;
                for _ in 0..drain {
                    let a = wheel.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        cursor = t.as_nanos();
                    }
                }
            }
            // Drain the rest.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
