//! Microbenchmarks of the simulator's hot primitives: the event queue, the
//! adaptive policy's per-quantum step, RNG, NIC fragmentation and mailbox
//! matching. These bound the deterministic engine's event rate.

use aqs_core::{AdaptiveQuantum, QuantumPolicy};
use aqs_des::{EventQueue, WheelQueue};
use aqs_net::NicModel;
use aqs_node::{Mailbox, MessageId, MessageMeta, Rank, Tag};
use aqs_rng::Rng;
use aqs_time::{HostTime, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter_batched(
            || {
                let mut rng = Rng::seed_from_u64(1);
                (0..1000)
                    .map(|_| rng.range_u64(0..1_000_000))
                    .collect::<Vec<u64>>()
            },
            |times| {
                let mut q: EventQueue<HostTime, u32> = EventQueue::with_capacity(1024);
                for (i, t) in times.iter().enumerate() {
                    q.schedule(HostTime::from_nanos(*t), i as u32);
                }
                let mut sum = 0u64;
                while let Some((t, _)) = q.pop() {
                    sum += t.as_nanos();
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("event_queue/interleaved_cancel", |b| {
        b.iter(|| {
            let mut q: EventQueue<HostTime, u32> = EventQueue::with_capacity(256);
            let mut acc = 0u64;
            for round in 0..100u64 {
                let a = q.schedule(HostTime::from_nanos(round * 3), 0);
                q.schedule(HostTime::from_nanos(round * 3 + 1), 1);
                q.cancel(a);
                if let Some((t, _)) = q.pop() {
                    acc += t.as_nanos();
                }
            }
            black_box(acc)
        })
    });
}

fn bench_wheel_vs_heap(c: &mut Criterion) {
    let mk_times = || {
        let mut rng = Rng::seed_from_u64(9);
        (0..1000)
            .map(|_| rng.range_u64(0..1_000_000))
            .collect::<Vec<u64>>()
    };
    c.bench_function("wheel_queue/push_pop_1k", |b| {
        b.iter_batched(
            mk_times,
            |times| {
                let mut q: WheelQueue<u32> = WheelQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(HostTime::from_nanos(*t), i as u32);
                }
                let mut sum = 0u64;
                while let Some((t, _)) = q.pop() {
                    sum += t.as_nanos();
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("adaptive_quantum/next_quantum", |b| {
        let mut p = AdaptiveQuantum::paper_dyn1();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.next_quantum(if i.is_multiple_of(64) { 3 } else { 0 }))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/lognormal", |b| {
        let mut rng = Rng::seed_from_u64(7);
        b.iter(|| black_box(rng.lognormal(0.0, 0.12)))
    });
}

fn bench_nic(c: &mut Criterion) {
    let nic = NicModel::paper_default();
    c.bench_function("nic/fragment_64k_message", |b| {
        b.iter(|| black_box(nic.fragment_sizes(black_box(65_536))))
    });
}

fn bench_mailbox(c: &mut Criterion) {
    c.bench_function("mailbox/deliver_and_match_64", |b| {
        b.iter(|| {
            let mut mb = Mailbox::new();
            for seq in 0..64u64 {
                let meta = MessageMeta {
                    id: MessageId {
                        src: Rank::new((seq % 8) as u32),
                        seq,
                    },
                    tag: Tag::new((seq % 4) as u32),
                    bytes: 1000,
                    frag_count: 1,
                };
                mb.deliver_fragment(meta, 0, SimTime::from_nanos(seq * 10));
            }
            let mut matched = 0;
            for seq in 0..64u64 {
                let tag = Tag::new((seq % 4) as u32);
                if !matches!(
                    mb.match_recv(None, tag, SimTime::MAX),
                    aqs_node::MatchOutcome::NoMatch
                ) {
                    matched += 1;
                }
            }
            black_box(matched)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_wheel_vs_heap,
    bench_policy,
    bench_rng,
    bench_nic,
    bench_mailbox
);
criterion_main!(benches);
