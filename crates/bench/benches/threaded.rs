//! Wall-clock benchmarks of the threaded engine: the adaptive quantum's
//! savings measured on real threads with real barriers (machine-dependent,
//! unlike the deterministic engine's modelled figures).

use aqs_cluster::{EngineKind, Sim};
use aqs_core::SyncConfig;
use aqs_workloads::burst;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_threaded(c: &mut Criterion) {
    let n = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 4);
    let spec = burst(n, 100_000, 2048);
    let mut g = c.benchmark_group("threaded/burst");
    g.sample_size(10);
    g.bench_function("ground_truth", |b| {
        b.iter(|| {
            black_box(
                Sim::new(spec.programs.clone())
                    .engine(EngineKind::Threaded)
                    .sync(SyncConfig::ground_truth())
                    .run(),
            )
        })
    });
    g.bench_function("adaptive_dyn1", |b| {
        b.iter(|| {
            black_box(
                Sim::new(spec.programs.clone())
                    .engine(EngineKind::Threaded)
                    .sync(SyncConfig::paper_dyn1())
                    .run(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_threaded);
criterion_main!(benches);
