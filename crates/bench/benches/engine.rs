//! End-to-end benchmarks of the deterministic meta-engine: how fast the
//! simulator simulates, per workload shape and synchronization policy.
//!
//! These are the numbers that matter for figure regeneration time: a
//! ground-truth (1 µs quantum) run is barrier-dominated; an adaptive run is
//! event-dominated.

use aqs_cluster::{run_workload, ClusterConfig};
use aqs_core::SyncConfig;
use aqs_workloads::{burst, nas, ping_pong, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cfg(sync: SyncConfig) -> ClusterConfig {
    ClusterConfig::new(sync).with_seed(42)
}

fn bench_ping_pong(c: &mut Criterion) {
    let spec = ping_pong(2, 50, 9000);
    let mut g = c.benchmark_group("engine/ping_pong_50");
    g.bench_function("ground_truth", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::ground_truth()))))
    });
    g.bench_function("fixed_100us", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::fixed_micros(100)))))
    });
    g.bench_function("adaptive_dyn1", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::paper_dyn1()))))
    });
    g.finish();
}

fn bench_burst(c: &mut Criterion) {
    let spec = burst(8, 100_000, 2048);
    let mut g = c.benchmark_group("engine/burst_8n");
    g.bench_function("ground_truth", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::ground_truth()))))
    });
    g.bench_function("adaptive_dyn1", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::paper_dyn1()))))
    });
    g.finish();
}

fn bench_nas_tiny(c: &mut Criterion) {
    let spec = nas::is(4, Scale::Tiny);
    let mut g = c.benchmark_group("engine/nas_is_tiny");
    g.sample_size(20);
    g.bench_function("ground_truth", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::ground_truth()))))
    });
    g.bench_function("adaptive_dyn2", |b| {
        b.iter(|| black_box(run_workload(&spec, &cfg(SyncConfig::paper_dyn2()))))
    });
    g.finish();
}

criterion_group!(benches, bench_ping_pong, bench_burst, bench_nas_tiny);
criterion_main!(benches);
