//! Figure 8 — Pareto optimality curve (8-node systems).
//!
//! Every configuration of the Figure 6/7 sweeps becomes a point in the
//! (accuracy error, log speedup) plane: squares are the NAS aggregate,
//! circles NAMD, with one Pareto frontier per benchmark family (the
//! paper's dotted curves). The paper's claim — reproduced here — is that
//! all adaptive configurations lie on or very near the frontier.
//!
//! Usage: `fig8_pareto [tiny|mini]`.

use aqs_bench::{nas_aggregate, run_sweep, write_tsv};
use aqs_cluster::paper_sweep;
use aqs_metrics::{pareto_front, render_scatter_log_y, ParetoPoint};
use aqs_workloads::{Scale, Workload};
use std::time::Instant;

/// How far (multiplicatively, on the speedup axis) a point may sit below
/// the frontier and still count as "very near" it.
const NEAR_FRONT_FACTOR: f64 = 1.25;

/// `true` if `p` is on or within [`NEAR_FRONT_FACTOR`] of its family front.
fn near_front(p: &ParetoPoint, family: &[ParetoPoint]) -> bool {
    !family
        .iter()
        .any(|q| q.error <= p.error && q.speedup > p.speedup * NEAR_FRONT_FACTOR)
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let nas = nas_aggregate(8, scale, 42, paper_sweep());
    let namd = run_sweep(Workload::Namd { scale }.build(8, 42), 42, paper_sweep());

    let nas_points: Vec<ParetoPoint> = nas
        .labels
        .iter()
        .enumerate()
        .map(|(i, label)| ParetoPoint::new(nas.errors[i], nas.speedups[i], format!("NAS {label}")))
        .collect();
    let namd_points: Vec<ParetoPoint> = namd
        .outcomes
        .iter()
        .map(|o| ParetoPoint::new(o.accuracy_error, o.speedup, format!("NAMD {}", o.label)))
        .collect();

    println!("=== Figure 8 — Pareto optimality curves (8 nodes) ===\n");
    for (family, points) in [
        ("NAS (squares)", &nas_points),
        ("NAMD (circles)", &namd_points),
    ] {
        println!("--- {family} ---");
        println!("{}", render_scatter_log_y(points, 72, 14));
    }

    // The paper's claim: all adaptive configurations lie on or very near
    // their family's Pareto curve.
    let mut adaptive_total = 0;
    let mut adaptive_near = 0;
    for points in [&nas_points, &namd_points] {
        let front = pareto_front(points);
        for (i, p) in points.iter().enumerate() {
            if p.label.contains("dyn") {
                adaptive_total += 1;
                if front.contains(&i) || near_front(p, points) {
                    adaptive_near += 1;
                }
            }
        }
    }
    println!(
        "adaptive configurations on or near their Pareto front: {adaptive_near}/{adaptive_total}"
    );
    let rows: Vec<Vec<String>> = nas_points
        .iter()
        .chain(&namd_points)
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.4}", p.error),
                format!("{:.2}", p.speedup),
            ]
        })
        .collect();
    write_tsv("fig8_pareto", &["label", "error", "speedup"], &rows);
    eprintln!("(fig8 wall time: {:.1?})", t0.elapsed());
}
