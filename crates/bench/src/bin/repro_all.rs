//! Runs the complete reproduction suite in sequence — every figure and
//! table of the paper plus this repository's ablations — by spawning the
//! sibling binaries. Output is the concatenation of all their reports.
//!
//! Usage: `repro_all [tiny]` (tiny = smoke scale everywhere).

use std::process::Command;

fn main() {
    let scale_arg = std::env::args().nth(1);
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let bins = [
        (
            "fig6_nas",
            "Figure 6 — NAS accuracy & speedup (2/4/8 nodes)",
        ),
        (
            "fig7_namd",
            "Figure 7 — NAMD accuracy & speedup (2/4/8 nodes)",
        ),
        (
            "fig8_pareto",
            "Figure 8 — Pareto optimality curve (8 nodes)",
        ),
        ("fig9_scaleout", "Figure 9 + §6 tables — 64-node EP/IS/NAMD"),
        ("sync_overhead", "Figure 5 — synchronization overhead"),
        (
            "ablation_params",
            "Ablation — inc/dec factors & extension policies",
        ),
        (
            "ablation_optimistic",
            "Ablation — optimistic PDES cost model",
        ),
        ("ablation_barrier", "Ablation — barrier cost sensitivity"),
        (
            "ext_future_work",
            "Extensions — §7 future work (sampling, lookahead)",
        ),
        ("ext_congestion", "Extensions — non-perfect switch fabrics"),
    ];
    for (bin, title) in bins {
        println!("\n{}", "=".repeat(78));
        println!("== {title}");
        println!("{}\n", "=".repeat(78));
        let mut cmd = Command::new(dir.join(bin));
        if let Some(scale) = &scale_arg {
            // sync_overhead takes no scale argument; passing one is ignored
            // by the others' parsers, so only forward where meaningful.
            if bin != "sync_overhead" {
                cmd.arg(scale);
            }
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nreproduction suite complete.");
}
