//! Ablation: how the barrier cost model shapes the speedup figures.
//!
//! DESIGN.md calibrates the quantum barrier at `0.3 ms + 0.25 ms · n` host
//! time (a central controller exchanging per-node messages serially). This
//! ablation re-runs the EP scale-out under three barrier models — linear
//! (default), logarithmic (tree barrier) and constant — to show which
//! conclusions are robust to the choice and which are not.
//!
//! Usage: `ablation_barrier [tiny|mini]`.

use aqs_bench::{standard_config, with_housekeeping};
use aqs_cluster::{run_workload, BarrierCostModel, ClusterConfig, RunResult};
use aqs_core::SyncConfig;
use aqs_metrics::render_table;
use aqs_time::HostDuration;
use aqs_workloads::{NasBench, Scale, Workload};
use std::time::Instant;

fn speedups(base: ClusterConfig, spec: &aqs_workloads::WorkloadSpec) -> (RunResult, Vec<f64>) {
    let truth = run_workload(spec, &base);
    let out = [10u64, 100, 1000]
        .iter()
        .map(|&q| {
            let r = run_workload(spec, &base.clone().with_sync(SyncConfig::fixed_micros(q)));
            r.speedup_vs(&truth)
        })
        .collect();
    (truth, out)
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    println!("=== barrier-cost ablation — EP, fixed quanta of 10/100/1000 µs ===\n");

    let mut rows = Vec::new();
    for n in [4usize, 8, 16, 64] {
        let spec = with_housekeeping(
            Workload::Nas {
                bench: NasBench::Ep,
                scale,
            }
            .build(n, 0),
        );
        // Linear (default): central controller, serial per-node messages.
        let linear = standard_config(42);
        // Logarithmic: tree barrier, cost = base + per_node * log2(n).
        // Expressed through the linear model with an equivalent per-node
        // charge so the comparison stays apples-to-apples at this n.
        let log_per_node =
            HostDuration::from_nanos((250_000.0 * (n as f64).log2() / n as f64).round() as u64);
        let log = standard_config(42).with_barrier(BarrierCostModel::new(
            HostDuration::from_micros(300),
            log_per_node,
        ));
        // Constant: infinitely scalable hardware barrier.
        let constant = standard_config(42).with_barrier(BarrierCostModel::new(
            HostDuration::from_millis(2),
            HostDuration::ZERO,
        ));

        for (name, cfg) in [("linear", linear), ("log2", log), ("constant", constant)] {
            let (_, s) = speedups(cfg, &spec);
            rows.push(vec![
                format!("{n}"),
                name.to_string(),
                format!("{:.1}x", s[0]),
                format!("{:.1}x", s[1]),
                format!("{:.1}x", s[2]),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["nodes", "barrier model", "Q=10µs", "Q=100µs", "Q=1000µs"],
            &rows
        )
    );
    println!("the *relative* ordering of quanta is robust to the barrier model;");
    println!("the absolute speedups (and the paper's ~70x at 64 nodes) require the");
    println!("linear central-controller cost that the paper's architecture implies.");
    eprintln!("(ablation wall: {:.1?})", t0.elapsed());
}
