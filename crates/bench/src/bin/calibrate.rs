//! Quick calibration probe: one workload, one node count, paper sweep.

use aqs_bench::print_experiment;
use aqs_cluster::{paper_sweep, ClusterConfig, Experiment};
use aqs_core::SyncConfig;
use aqs_node::CpuModel;
use aqs_time::SimDuration;
use aqs_workloads::{with_background_traffic, Scale, Workload};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("ep");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let scale = match args.get(3).map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Mini,
    };
    let spec = Workload::parse(which)
        .unwrap_or_else(|| panic!("unknown workload {which}"))
        .with_scale(scale)
        .build(n, 42);
    let spec = if args.iter().any(|a| a == "bg") {
        with_background_traffic(spec, SimDuration::from_millis(80), 90, &CpuModel::default())
    } else {
        spec
    };
    let base = ClusterConfig::new(SyncConfig::ground_truth()).with_seed(42);
    let t0 = Instant::now();
    let result = Experiment::new(spec, base, paper_sweep()).run();
    print_experiment(&result);
    eprintln!("(wall: {:.1?})", t0.elapsed());
}
