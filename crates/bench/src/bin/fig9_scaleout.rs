//! Figure 9 + §6 tables — 64-node scale-out study (EP, IS, NAMD).
//!
//! For each benchmark this regenerates:
//!
//! * the **left panel**: packet traffic over time (node on y, time on x),
//!   from the ground-truth run's packet trace;
//! * the **right panel**: speedup over the 1 µs baseline across the run
//!   (log y), for the benchmark's adaptive configuration;
//! * the **§6 table**: acceleration and accuracy/dilation for fixed 100 µs,
//!   fixed 10 µs and the paper's per-benchmark adaptive configuration
//!   (dyn 1:100 for EP/IS, dyn 2:100 for NAMD), with the paper's published
//!   numbers alongside.
//!
//! Usage: `fig9_scaleout [tiny|full]` (full is the figure scale).

use aqs_bench::{
    render_log_series, speedup_over_time, standard_config, with_housekeeping, write_tsv,
};
use aqs_cluster::{app_metric, run_workload, ClusterConfig, RunResult};
use aqs_core::{AdaptiveConfig, SyncConfig};
use aqs_metrics::{render_table, render_traffic_density};
use aqs_time::SimDuration;
use aqs_workloads::{MetricKind, NasBench, Scale, Workload, WorkloadSpec};
use std::time::Instant;

/// Paper-published table values for the three benchmarks.
struct PaperRow {
    accel: f64,
    accuracy: &'static str,
}

fn dyn_config(min_us: u64, max_us: u64, inc: f64) -> SyncConfig {
    SyncConfig::Adaptive(AdaptiveConfig::new(
        SimDuration::from_micros(min_us),
        SimDuration::from_micros(max_us),
        inc,
        0.02,
    ))
}

fn run(spec: &WorkloadSpec, cfg: &ClusterConfig) -> RunResult {
    run_workload(spec, cfg)
}

#[allow(clippy::too_many_arguments)]
fn scaleout(
    spec: WorkloadSpec,
    dyn_cfg: SyncConfig,
    dyn_label: &str,
    paper: &[PaperRow],
    accuracy_fn: impl Fn(&RunResult, &RunResult) -> String,
) {
    let name = spec.name.clone();
    let metric_kind = spec.metric;
    let spec = with_housekeeping(spec);
    let base_cfg = standard_config(42)
        .with_traffic_trace(true)
        .with_progress(true);
    let t0 = Instant::now();
    let baseline = run(&spec, &base_cfg);
    let quiet = standard_config(42).with_progress(true);
    let f100 = run(
        &spec,
        &quiet.clone().with_sync(SyncConfig::fixed_micros(100)),
    );
    let f10 = run(
        &spec,
        &quiet.clone().with_sync(SyncConfig::fixed_micros(10)),
    );
    let fdyn = run(&spec, &quiet.with_sync(dyn_cfg));

    println!("\n###### {name} — 64 nodes ######\n");

    // Left panel: packet traffic over time (ground truth).
    let end = baseline.sim_end.as_nanos().max(1) as f64;
    let events: Vec<(f64, usize)> = baseline
        .traffic
        .entries()
        .iter()
        .map(|e| ((e.time.as_nanos() as f64 / end).min(1.0), e.src.index()))
        .collect();
    println!("--- traffic over time (nodes × time, ground truth) ---");
    println!("{}", render_traffic_density(&events, 64, 96, 16));

    // Right panels: speedup over time, one per configuration (the paper
    // plots the fixed quanta alongside the adaptive one).
    let mut tsv_rows: Vec<Vec<String>> = Vec::new();
    for (label, run_ref) in [("Q=100µs", &f100), ("Q=10µs", &f10), (dyn_label, &fdyn)] {
        let series = speedup_over_time(&baseline.progress, &run_ref.progress, 72);
        println!(
            "{}",
            render_log_series(
                &series,
                8,
                &format!("--- {label} speedup vs 1µs over time ---")
            )
        );
        for (x, y) in &series {
            tsv_rows.push(vec![
                label.to_string(),
                format!("{x:.4}"),
                format!("{y:.3}"),
            ]);
        }
    }
    write_tsv(
        &format!("fig9_{}_speedup_over_time", name.to_lowercase()),
        &["config", "time_fraction", "speedup"],
        &tsv_rows,
    );
    let traffic_rows: Vec<Vec<String>> = baseline
        .traffic
        .entries()
        .iter()
        .map(|e| {
            vec![
                format!("{:.9}", e.time.as_secs_f64()),
                e.src.index().to_string(),
                e.dst.index().to_string(),
                e.bytes.to_string(),
            ]
        })
        .collect();
    write_tsv(
        &format!("fig9_{}_traffic", name.to_lowercase()),
        &["time_s", "src", "dst", "bytes"],
        &traffic_rows,
    );

    // §6 table with the paper's numbers alongside.
    let _ = metric_kind; // per-benchmark accuracy handled by accuracy_fn
    let rows: Vec<(String, &RunResult)> = vec![
        ("100".into(), &f100),
        ("10".into(), &f10),
        (dyn_label.to_string(), &fdyn),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|((label, r), p)| {
            vec![
                label.clone(),
                format!("{:.1}x", r.speedup_vs(&baseline)),
                format!("{}x", p.accel),
                accuracy_fn(r, &baseline),
                p.accuracy.to_string(),
                format!("{}", r.stragglers.count()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "quantum (µs)",
                "accel (measured)",
                "accel (paper)",
                "accuracy (measured)",
                "accuracy (paper)",
                "stragglers"
            ],
            &table
        )
    );
    eprintln!("({name} wall: {:.1?})", t0.elapsed());
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Full,
    };
    let n = 64;

    // EP: accuracy = MOPS error.
    scaleout(
        Workload::Nas {
            bench: NasBench::Ep,
            scale,
        }
        .build(n, 42),
        dyn_config(1, 100, 1.03),
        "dyn 1:100",
        &[
            PaperRow {
                accel: 72.7,
                accuracy: "0.10%",
            },
            PaperRow {
                accel: 7.9,
                accuracy: "0.01%",
            },
            PaperRow {
                accel: 12.9,
                accuracy: "0.58%",
            },
        ],
        |r, b| {
            let m = app_metric(r, MetricKind::Mops);
            let m0 = app_metric(b, MetricKind::Mops);
            format!("{:.2}%", m.error_vs(&m0) * 100.0)
        },
    );

    // IS: accuracy = simulated execution (kernel) ratio, i.e. the factor by
    // which the benchmark's self-reported MOPS is off.
    scaleout(
        Workload::Nas {
            bench: NasBench::Is,
            scale,
        }
        .build(n, 42),
        dyn_config(1, 100, 1.03),
        "dyn 1:100",
        &[
            PaperRow {
                accel: 84.0,
                accuracy: "150x",
            },
            PaperRow {
                accel: 9.8,
                accuracy: "22x",
            },
            PaperRow {
                accel: 27.0,
                accuracy: "1.57x",
            },
        ],
        |r, b| {
            let m = app_metric(r, MetricKind::Mops).value();
            let m0 = app_metric(b, MetricKind::Mops).value();
            format!("{:.2}x", m0 / m)
        },
    );

    // NAMD: accuracy = wall-clock error (can exceed 100 %).
    scaleout(
        Workload::Namd { scale }.build(n, 42),
        dyn_config(2, 100, 1.05),
        "dyn 2:100",
        &[
            PaperRow {
                accel: 77.2,
                accuracy: "104%",
            },
            PaperRow {
                accel: 9.1,
                accuracy: "1.01%",
            },
            PaperRow {
                accel: 6.5,
                accuracy: "0.79%",
            },
        ],
        |r, b| {
            let m = app_metric(r, MetricKind::KernelTime);
            let m0 = app_metric(b, MetricKind::KernelTime);
            format!("{:.2}%", m.error_vs(&m0) * 100.0)
        },
    );
}
