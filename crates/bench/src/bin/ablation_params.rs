//! Ablation: the adaptive algorithm's growth/shrink factors.
//!
//! The paper (§3) recommends growing the quantum "in very small increments
//! (such as 2 % to 5 %) but decreasing it very quickly" (`dec ≈ 1/√maxQ`,
//! reaching the floor in 2–3 quanta). This sweep quantifies that guidance
//! on a communication-sensitive workload: aggressive growth buys speed but
//! loses accuracy; slow braking (large `dec`) loses accuracy without buying
//! much speed.
//!
//! Usage: `ablation_params [tiny|mini]`.

use aqs_bench::{run_sweep, standard_config};
use aqs_cluster::{run_workload, Experiment};
use aqs_core::{AdaptiveConfig, SyncConfig};
use aqs_metrics::render_table;
use aqs_time::SimDuration;
use aqs_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let spec = Workload::Namd { scale }.build(8, 0);

    let incs = [1.01, 1.02, 1.03, 1.05, 1.10, 1.25];
    let decs = [0.02, 0.1, 0.3, 0.7];
    let mut sweep = Vec::new();
    for &inc in &incs {
        for &dec in &decs {
            sweep.push(SyncConfig::Adaptive(AdaptiveConfig::new(
                SimDuration::from_micros(1),
                SimDuration::from_micros(1000),
                inc,
                dec,
            )));
        }
    }
    let result = Experiment::new(spec.clone(), standard_config(42), sweep).run();

    println!("=== inc/dec ablation — NAMD, 8 nodes ===\n");
    let rows: Vec<Vec<String>> = result
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.1}x", o.speedup),
                format!("{:.3}%", o.accuracy_error * 100.0),
                format!("{}", o.result.stragglers.count()),
                format!("{}", o.result.total_quanta),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["config", "speedup", "error", "stragglers", "quanta"],
            &rows
        )
    );

    // The paper's claim distilled: among configurations of similar speed,
    // hard braking (dec = 0.02) is never less accurate than soft braking.
    println!("paper guidance check (inc = 1.05):");
    for &dec in &decs {
        let label = format!("dyn 1.05:{dec:.2}");
        if let Some(o) = result.outcomes.iter().find(|o| o.label == label) {
            println!(
                "  dec {dec:<4} → speedup {:>6.1}x, error {:>7.3}%",
                o.speedup,
                o.accuracy_error * 100.0
            );
        }
    }

    // Bonus: compare against the extension policies at the paper's factors.
    println!("\n=== extension policies (threshold / EWMA) ===\n");
    let cfg = AdaptiveConfig::paper_dyn1();
    let ext = vec![
        SyncConfig::Adaptive(cfg),
        SyncConfig::Threshold {
            config: cfg,
            threshold: 2,
        },
        SyncConfig::Threshold {
            config: cfg,
            threshold: 16,
        },
        SyncConfig::Ewma {
            config: cfg,
            alpha: 0.5,
        },
        SyncConfig::Ewma {
            config: cfg,
            alpha: 0.125,
        },
    ];
    let result = run_sweep(spec, 42, ext);
    let _ = run_workload; // (re-exported for other bins)
    let rows: Vec<Vec<String>> = result
        .outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                format!("{:.1}x", o.speedup),
                format!("{:.3}%", o.accuracy_error * 100.0),
                format!("{}", o.result.stragglers.count()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "speedup", "error", "stragglers"], &rows)
    );
    eprintln!("(ablation wall: {:.1?})", t0.elapsed());
}
