//! Extension — the technique under a congested, non-perfect network.
//!
//! The paper stresses its synchronizer with a *perfect* switch (infinite
//! bandwidth, zero latency) because lower latency means more stragglers.
//! §7 plans "more complex clusters"; this experiment runs IS through a
//! store-and-forward switch with finite per-port bandwidth and a rack-
//! locality latency matrix, verifying that the adaptive quantum's
//! speed/accuracy position survives realistic fabrics — where the larger
//! minimum latency actually gives the synchronizer *more* slack.
//!
//! Usage: `ext_congestion [tiny|mini]`.

use aqs_bench::{standard_config, with_housekeeping};
use aqs_cluster::{app_metric, RunResult, Sim, SimSwitch};
use aqs_core::SyncConfig;
use aqs_metrics::render_table;
use aqs_net::{LatencyMatrixSwitch, StoreAndForwardSwitch};
use aqs_time::SimDuration;
use aqs_workloads::{NasBench, Scale, Workload, WorkloadSpec};
use std::time::Instant;

fn sweep(name: &str, spec: &WorkloadSpec, switch: SimSwitch) -> Vec<Vec<String>> {
    let base = standard_config(42);
    let run = |sync: SyncConfig| -> RunResult {
        Sim::new(spec.programs.clone())
            .config(base.clone().with_sync(sync))
            .switch(switch.clone())
            .run()
            .detail
            .as_deterministic()
            .expect("deterministic engine ran")
            .clone()
    };
    let truth = run(SyncConfig::ground_truth());
    let m0 = app_metric(&truth, spec.metric);
    [
        SyncConfig::fixed_micros(100),
        SyncConfig::fixed_micros(1000),
        SyncConfig::paper_dyn1(),
    ]
    .into_iter()
    .map(|sync| {
        let r = run(sync);
        let m = app_metric(&r, spec.metric);
        vec![
            name.to_string(),
            r.sync_label.clone(),
            format!("{:.1}x", r.speedup_vs(&truth)),
            format!("{:.2}%", m.error_vs(&m0) * 100.0),
            format!("{}", r.stragglers.count()),
        ]
    })
    .collect()
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let spec = with_housekeeping(
        Workload::Nas {
            bench: NasBench::Is,
            scale,
        }
        .build(8, 0),
    );

    let mut rows = Vec::new();
    rows.extend(sweep("perfect (paper)", &spec, SimSwitch::Perfect));
    rows.extend(sweep(
        "store-and-forward 10G",
        &spec,
        SimSwitch::StoreAndForward(StoreAndForwardSwitch::new(
            SimDuration::from_nanos(500),
            10_000_000_000,
        )),
    ));
    rows.extend(sweep(
        "2 racks, +4µs inter-rack",
        &spec,
        SimSwitch::LatencyMatrix(LatencyMatrixSwitch::from_fn(8, |a, b| {
            if a.index() / 4 == b.index() / 4 {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(4)
            }
        })),
    ));

    println!("=== IS, 8 nodes, across switch fabrics ===\n");
    println!(
        "{}",
        render_table(
            &["fabric", "config", "speedup", "error", "stragglers"],
            &rows
        )
    );
    println!("the adaptive configuration keeps its near-zero error on every fabric;");
    println!("with real (higher) network latencies the fixed quanta get *more*");
    println!("accurate too — the paper's perfect switch is indeed the worst case");
    println!("for the synchronizer, as §4 claims.");
    eprintln!("(ext wall: {:.1?})", t0.elapsed());
}
