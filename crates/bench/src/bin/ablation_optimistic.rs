//! Ablation: why the paper rejects optimistic (checkpoint/rollback) PDES.
//!
//! §3: "A single checkpointing-rollback phase for a node can easily last in
//! the order of 30-40 seconds which is clearly not affordable in this
//! domain" — a full-system checkpoint must save gigabytes of guest memory
//! and disk journal.
//!
//! This repository implements an actual window-based optimistic engine
//! (`aqs_cluster::optimistic`): nodes free-run, and any node whose inbound
//! messages turn out different from what it executed with rolls back and
//! re-executes. Because deliveries are always repaired to their exact
//! times, the optimistic timeline equals the conservative ground truth's —
//! optimism buys *perfect accuracy*. The question the paper answers in one
//! sentence, measured here: what does that accuracy cost on a full-system
//! simulator whose checkpoints take 30 s?
//!
//! Usage: `ablation_optimistic [tiny|mini]`.

use aqs_bench::{standard_config, with_housekeeping};
use aqs_cluster::run_workload;
use aqs_cluster::{EngineKind, Sim};
use aqs_core::SyncConfig;
use aqs_metrics::render_table;
use aqs_time::{HostDuration, SimDuration};
use aqs_workloads::{NasBench, Scale, Workload};
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    // CG at 4 nodes: periodic communication, so windows converge quickly.
    let spec = with_housekeeping(
        Workload::Nas {
            bench: NasBench::Cg,
            scale,
        }
        .build(4, 0),
    );
    let base = standard_config(42);
    let truth = run_workload(&spec, &base);
    let dyn1 = run_workload(&spec, &base.clone().with_sync(SyncConfig::paper_dyn1()));

    println!("=== optimistic engine vs. quantum synchronization — CG, 4 nodes ===\n");
    println!(
        "conservative 1µs ground truth: {} host   |   adaptive dyn 1.03:0.02: {} host\n",
        truth.host_elapsed, dyn1.host_elapsed
    );

    let mut rows = Vec::new();
    for (label, window_us, ckpt, rb) in [
        (
            "free state (idealized)",
            500u64,
            HostDuration::ZERO,
            HostDuration::ZERO,
        ),
        (
            "1 s checkpoints",
            500,
            HostDuration::from_secs(1),
            HostDuration::from_secs(1),
        ),
        (
            "paper: 30 s checkpoints",
            500,
            HostDuration::from_secs(30),
            HostDuration::from_secs(30),
        ),
        (
            "paper, longer windows",
            2000,
            HostDuration::from_secs(30),
            HostDuration::from_secs(30),
        ),
    ] {
        let report = Sim::new(spec.programs.clone())
            .engine(EngineKind::Optimistic)
            .config(base.clone())
            .window(SimDuration::from_micros(window_us))
            .optimistic_costs(ckpt, rb)
            .run();
        let r = report
            .detail
            .as_optimistic()
            .expect("optimistic engine ran");
        assert_eq!(r.sim_end, truth.sim_end, "optimism must be timing-exact");
        rows.push(vec![
            label.to_string(),
            format!("{window_us}"),
            format!("{}", r.host_elapsed),
            format!(
                "{:.2}x",
                truth.host_elapsed.as_secs_f64() / r.host_elapsed.as_secs_f64()
            ),
            format!("{}", r.windows),
            format!("{}", r.rollbacks),
            format!("{}", r.wasted_sim),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "window (µs)",
                "host time",
                "speedup vs 1µs",
                "windows",
                "rollbacks",
                "wasted sim"
            ],
            &rows
        )
    );
    println!("with free checkpoints, optimism is genuinely attractive (exact timing,");
    println!("decent speed). With the paper's 30 s full-system snapshot it is three");
    println!("to five orders of magnitude off the pace — §3's one-line dismissal,");
    println!("now with measurements attached.");
    eprintln!("(ablation wall: {:.1?})", t0.elapsed());
}
