//! Extensions — the paper's §7 future work, evaluated.
//!
//! Two directions the conclusion sketches:
//!
//! * **Sampling** ("combine this technique with 'sampling' of the
//!   individual node simulators"): node simulators alternate detailed and
//!   fast-forward phases. Its host savings multiply with the quantum
//!   policy's, at the price of a bounded guest-timing bias.
//! * **Lookahead estimation** (§3 argues reliable lookahead is impossible;
//!   we quantify the *unreliable* kind): the predictive policy jumps the
//!   quantum to a learned fraction of the inter-burst gap instead of
//!   regrowing it at 2–5 % per quantum.
//!
//! Usage: `ext_future_work [tiny|mini]`.

use aqs_bench::{standard_config, with_housekeeping};
use aqs_cluster::{app_metric, run_workload, ClusterConfig, RunResult};
use aqs_core::{PredictiveConfig, SyncConfig};
use aqs_metrics::render_table;
use aqs_node::SamplingModel;
use aqs_workloads::{NasBench, Scale, Workload, WorkloadSpec};
use std::time::Instant;

fn row(label: &str, r: &RunResult, truth: &RunResult, spec: &WorkloadSpec) -> Vec<String> {
    let m = app_metric(r, spec.metric);
    let m0 = app_metric(truth, spec.metric);
    vec![
        label.to_string(),
        format!("{:.1}x", r.speedup_vs(truth)),
        format!("{:.2}%", m.error_vs(&m0) * 100.0),
        format!("{}", r.stragglers.count()),
        format!("{}", r.total_quanta),
    ]
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let spec = with_housekeeping(
        Workload::Nas {
            bench: NasBench::Cg,
            scale,
        }
        .build(8, 0),
    );
    let base = standard_config(42);
    let sampling = SamplingModel::typical();

    let truth = run_workload(&spec, &base);
    let configs: Vec<(&str, ClusterConfig)> = vec![
        (
            "quantum: dyn 1.03:0.02",
            base.clone().with_sync(SyncConfig::paper_dyn1()),
        ),
        (
            "sampling only (Q=1µs)",
            base.clone().with_sampling(sampling),
        ),
        (
            "dyn + sampling (combined)",
            base.clone()
                .with_sync(SyncConfig::paper_dyn1())
                .with_sampling(sampling),
        ),
        (
            "predictive lookahead",
            base.clone()
                .with_sync(SyncConfig::Predictive(PredictiveConfig::default_1_1000())),
        ),
        (
            "predictive + sampling",
            base.clone()
                .with_sync(SyncConfig::Predictive(PredictiveConfig::default_1_1000()))
                .with_sampling(sampling),
        ),
    ];

    println!("=== §7 future work — CG, 8 nodes (vs. 1µs ground truth) ===\n");
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(label, cfg)| row(label, &run_workload(&spec, cfg), &truth, &spec))
        .collect();
    println!(
        "{}",
        render_table(
            &["configuration", "speedup", "error", "stragglers", "quanta"],
            &rows
        )
    );
    println!("reading: sampling alone buys nothing at a 1µs quantum — barriers are");
    println!("~98% of the cost — and only modest gains under the paper's adaptive");
    println!("policy, whose average quantum is still barrier-bound. Once a policy");
    println!("sustains long quanta (predictive), sampling multiplies the speedup");
    println!("(~3.6x on top). The predictive policy itself shows the other edge:");
    println!("large speedups, but order-of-magnitude more stragglers and percent-");
    println!("level error when its gap guess is wrong — the unreliability of");
    println!("estimated lookahead that §3 predicted.");
    eprintln!("(ext wall: {:.1?})", t0.elapsed());
}
