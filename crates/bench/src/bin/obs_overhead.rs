//! Recording-overhead benchmark and the counter-based perf-regression gate.
//!
//! Two jobs share this binary:
//!
//! * **Timing** (full mode): runs the 16-node burst workload back to back
//!   with the `NullRecorder` (recording compiled out) and with a full
//!   `FlightRecorder` attached, and compares min-of-N wall-clocks. The
//!   observability subsystem's contract is that recording adds no lock to
//!   the packet path and stays within a few percent of the null run.
//! * **Counter gates** (both modes): deterministic engine counters on a
//!   seeded rpc-incast workload — the active-set scan count
//!   (`nodes_executed`), the pool warm-up footprint (`pool_heap_allocs`),
//!   and the steady-state allocations-per-packet differential. Full mode
//!   measures them and writes them as the `gates` section of
//!   `BENCH_obs_overhead.json`; `--smoke` (the CI entry point) re-measures
//!   and asserts against that checked-in baseline, so a scheduling or
//!   allocation regression fails CI even though CI machines are too noisy
//!   to gate on wall-clock.
//!
//! The schema is documented in EXPERIMENTS.md. Regenerate with:
//!
//! ```text
//! cargo run --release -p aqs-bench --bin obs_overhead
//! ```

use aqs_cluster::{EngineKind, RunReport, ShardedRunResult, Sim};
use aqs_core::SyncConfig;
use aqs_obs::ObsConfig;
use aqs_workloads::Workload;
use serde_json::Value;

const NODES: usize = 16;
const COMPUTE_OPS: u64 = 200_000;
const BYTES: u64 = 1024;
const ITERATIONS: u32 = 5;

/// Counter-gate workload: a mostly-idle incast at 1k nodes on the sharded
/// engine. Every gated counter is a pure function of the simulated history
/// — the active-set scheduler's executed-node count is identical for every
/// worker count by design — so the scan baseline is exact, not a tolerance
/// band.
const GATE_NODES: usize = 1024;
const GATE_FRONTS: usize = 8;
const GATE_WAVES: usize = 4;
const GATE_FANOUT: usize = 64;
const GATE_WORKERS: usize = 2;
const GATE_QUANTUM_US: u64 = 5;

fn policies() -> Vec<(&'static str, SyncConfig)> {
    vec![
        ("ground-truth", SyncConfig::ground_truth()),
        ("dyn1", SyncConfig::paper_dyn1()),
    ]
}

/// Minimum wall over `ITERATIONS` runs (min is the noise-robust estimator
/// for a deterministic workload), plus the last report.
fn measure(mut run: impl FnMut() -> RunReport) -> (f64, RunReport) {
    let mut last = run();
    let mut best = last.wall_clock.as_secs_f64();
    for _ in 1..ITERATIONS {
        last = run();
        best = best.min(last.wall_clock.as_secs_f64());
    }
    (best, last)
}

/// One gate-workload run on the sharded engine at `waves` request waves.
fn gate_run(waves: usize) -> ShardedRunResult {
    let programs = aqs_workloads::rpc_incast(
        GATE_NODES,
        GATE_FRONTS,
        waves,
        GATE_FANOUT,
        2_048,
        16_384,
        50_000,
        11,
    )
    .programs;
    Sim::new(programs)
        .engine(EngineKind::Sharded)
        .shards(GATE_WORKERS)
        .sync(SyncConfig::fixed_micros(GATE_QUANTUM_US))
        .max_quanta(50_000_000)
        .run()
        .detail
        .as_sharded()
        .expect("sharded engine ran")
        .clone()
}

/// Measured counter-gate values. `measure_gates` also enforces the
/// self-contained invariants (steady-state zero-alloc, idle-heaviness) in
/// both modes, so a regeneration can never bake a broken state into the
/// baseline.
struct GateCounters {
    nodes_executed: u64,
    pool_heap_allocs: u64,
    steady_extra_allocs: u64,
    steady_extra_packets: u64,
}

fn measure_gates() -> GateCounters {
    let short = gate_run(GATE_WAVES);
    let long = gate_run(GATE_WAVES * 3);
    let extra_packets = long.total_packets - short.total_packets;
    let extra_allocs = long.pool_heap_allocs.saturating_sub(short.pool_heap_allocs);
    assert!(extra_packets > 0, "long run must route more packets");
    // Steady state is gated absolutely, baseline or not: the extra waves
    // re-route the same incast shape, so any allocation growth beyond
    // cross-worker drain-timing jitter is a per-packet leak.
    let jitter = 128 * GATE_WORKERS as u64;
    assert!(
        extra_allocs <= jitter,
        "steady-state packet routing allocates: +{extra_allocs} pool allocations \
         over +{extra_packets} packets (jitter bound {jitter})"
    );
    // The active set must actually be active: a scheduler regression that
    // silently fell back to full sweeps would pass an equality-only check
    // after a baseline regeneration, but not this structural bound.
    let swept = GATE_NODES as u64 * short.total_quanta;
    assert!(
        short.nodes_executed < swept / 4,
        "gate workload must be idle-heavy: {} of {swept} sweep slots executed",
        short.nodes_executed
    );
    GateCounters {
        nodes_executed: short.nodes_executed,
        pool_heap_allocs: short.pool_heap_allocs,
        steady_extra_allocs: extra_allocs,
        steady_extra_packets: extra_packets,
    }
}

/// `--smoke`: assert the measured counters against the checked-in
/// `BENCH_obs_overhead.json` baselines. Counters, not wall-clock — CI
/// machines are too noisy to time, but these numbers are deterministic.
fn smoke_gate() {
    let raw = std::fs::read_to_string("BENCH_obs_overhead.json")
        .expect("BENCH_obs_overhead.json is checked in; regenerate with obs_overhead");
    let doc: Value = serde_json::from_str(&raw).expect("BENCH_obs_overhead.json parses");
    let gates = doc
        .get("gates")
        .expect("baseline has a gates section; regenerate with obs_overhead");
    let baseline_u64 = |key: &str| -> u64 {
        match gates.get(key) {
            Some(&Value::U64(v)) => v,
            other => panic!("gates.{key} must be a u64 baseline, got {other:?}"),
        }
    };
    let expect_executed = baseline_u64("nodes_executed");
    let max_allocs = baseline_u64("max_pool_heap_allocs");
    let got = measure_gates();
    // The scan counter pins the active-set schedule itself: executing even
    // one extra (or one fewer) node against the same simulated history
    // means the wake wheel's arming rules changed. Exact, deterministic,
    // and worker-count-independent — regenerate the baseline only for an
    // intentional scheduler change.
    assert_eq!(
        got.nodes_executed, expect_executed,
        "active-set scan count diverged from the checked-in baseline \
         (intentional scheduler change? regenerate BENCH_obs_overhead.json)"
    );
    // Warm-up allocations track the peak in-flight working set, which
    // drain timing shifts by a few batches run to run; the baseline is a
    // ceiling with that headroom, and a per-packet regression overshoots
    // it by orders of magnitude.
    assert!(
        got.pool_heap_allocs <= max_allocs,
        "pool warm-up footprint regressed: {} allocs > ceiling {max_allocs} \
         (regenerate BENCH_obs_overhead.json if the workload changed)",
        got.pool_heap_allocs
    );
    println!(
        "obs_overhead smoke gate passed: nodes_executed {} (exact), \
         pool warm-up {} <= {max_allocs} allocs, steady state +{} allocs / +{} packets",
        got.nodes_executed, got.pool_heap_allocs, got.steady_extra_allocs, got.steady_extra_packets,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_gate();
        return;
    }
    let spec = Workload::Burst {
        compute: COMPUTE_OPS,
        bytes: BYTES,
    }
    .build(NODES, 0);
    let mut configs = Vec::new();
    for (label, sync) in policies() {
        let base = || {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Threaded)
                .sync(sync.clone())
                .max_quanta(50_000_000)
        };
        let (null_wall, null_report) = measure(|| base().run());
        let (rec_wall, rec_report) = measure(|| base().record(ObsConfig::new()).run());

        // Recording must never perturb the simulation.
        assert_eq!(
            null_report.simulated_outcome(),
            rec_report.simulated_outcome(),
            "{label}: recording changed the simulated outcome"
        );
        let fr = rec_report.obs.as_ref().expect("recording enabled");
        assert_eq!(
            fr.total_packets(),
            rec_report.total_packets,
            "{label}: flight recorder lost packets"
        );

        let overhead = rec_wall / null_wall.max(1e-12) - 1.0;
        println!(
            "{label:<13} null {null_wall:>9.4}s  recorded {rec_wall:>9.4}s  \
             overhead {:>6.2}%  quanta {}  packets {}",
            overhead * 100.0,
            rec_report.total_quanta,
            rec_report.total_packets,
        );
        configs.push(Value::Object(vec![
            ("policy".into(), Value::Str(label.into())),
            ("null_wall_secs".into(), Value::F64(null_wall)),
            ("recorded_wall_secs".into(), Value::F64(rec_wall)),
            ("overhead_frac".into(), Value::F64(overhead)),
            ("total_quanta".into(), Value::U64(rec_report.total_quanta)),
            ("total_packets".into(), Value::U64(rec_report.total_packets)),
            ("ring_samples".into(), Value::U64(fr.ring_len() as u64)),
            ("dropped_samples".into(), Value::U64(fr.dropped())),
            ("results_match".into(), Value::Bool(true)),
        ]));
    }
    // Counter gates: measure, then write the baseline --smoke asserts
    // against. The warm-up ceiling gets 2× headroom (drain timing moves it
    // by a few batches, a leak moves it by thousands); the scan count is
    // written exactly.
    let gates = measure_gates();
    println!(
        "counter gates: nodes_executed {}  pool warm-up {} allocs  \
         steady state +{} allocs / +{} packets",
        gates.nodes_executed,
        gates.pool_heap_allocs,
        gates.steady_extra_allocs,
        gates.steady_extra_packets,
    );
    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("obs_overhead".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("burst".into())),
                ("nodes".into(), Value::U64(NODES as u64)),
                ("compute_ops".into(), Value::U64(COMPUTE_OPS)),
                ("bytes".into(), Value::U64(BYTES)),
            ]),
        ),
        ("iterations".into(), Value::U64(ITERATIONS as u64)),
        ("configs".into(), Value::Array(configs)),
        (
            "gates".into(),
            Value::Object(vec![
                (
                    "workload".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::Str("rpc-incast".into())),
                        ("nodes".into(), Value::U64(GATE_NODES as u64)),
                        ("fronts".into(), Value::U64(GATE_FRONTS as u64)),
                        ("waves".into(), Value::U64(GATE_WAVES as u64)),
                        ("fanout".into(), Value::U64(GATE_FANOUT as u64)),
                        (
                            "policy".into(),
                            Value::Str(format!("fixed-{GATE_QUANTUM_US}us")),
                        ),
                        ("workers".into(), Value::U64(GATE_WORKERS as u64)),
                    ]),
                ),
                ("nodes_executed".into(), Value::U64(gates.nodes_executed)),
                (
                    "pool_heap_allocs".into(),
                    Value::U64(gates.pool_heap_allocs),
                ),
                (
                    "max_pool_heap_allocs".into(),
                    Value::U64(gates.pool_heap_allocs * 2),
                ),
                (
                    "steady_state_extra_allocs".into(),
                    Value::U64(gates.steady_extra_allocs),
                ),
                (
                    "steady_state_allocs_per_packet".into(),
                    Value::F64(
                        gates.steady_extra_allocs as f64 / gates.steady_extra_packets as f64,
                    ),
                ),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write("BENCH_obs_overhead.json", json + "\n").expect("write BENCH_obs_overhead.json");
    println!("wrote BENCH_obs_overhead.json");
}
