//! Recording-overhead benchmark: the flight recorder's wall-clock cost on
//! the threaded engine.
//!
//! Runs the 16-node burst workload back to back with the `NullRecorder`
//! (recording compiled out) and with a full `FlightRecorder` attached, and
//! compares min-of-N wall-clocks. The observability subsystem's contract is
//! that recording adds no lock to the packet path and stays within a few
//! percent of the null run; this benchmark is the evidence. Writes
//! `BENCH_obs_overhead.json` at the repo root; the schema is documented in
//! EXPERIMENTS.md.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p aqs-bench --bin obs_overhead
//! ```

use aqs_cluster::{EngineKind, RunReport, Sim};
use aqs_core::SyncConfig;
use aqs_obs::ObsConfig;
use aqs_workloads::Workload;
use serde_json::Value;

const NODES: usize = 16;
const COMPUTE_OPS: u64 = 200_000;
const BYTES: u64 = 1024;
const ITERATIONS: u32 = 5;

fn policies() -> Vec<(&'static str, SyncConfig)> {
    vec![
        ("ground-truth", SyncConfig::ground_truth()),
        ("dyn1", SyncConfig::paper_dyn1()),
    ]
}

/// Minimum wall over `ITERATIONS` runs (min is the noise-robust estimator
/// for a deterministic workload), plus the last report.
fn measure(mut run: impl FnMut() -> RunReport) -> (f64, RunReport) {
    let mut last = run();
    let mut best = last.wall_clock.as_secs_f64();
    for _ in 1..ITERATIONS {
        last = run();
        best = best.min(last.wall_clock.as_secs_f64());
    }
    (best, last)
}

fn main() {
    let spec = Workload::Burst {
        compute: COMPUTE_OPS,
        bytes: BYTES,
    }
    .build(NODES, 0);
    let mut configs = Vec::new();
    for (label, sync) in policies() {
        let base = || {
            Sim::new(spec.programs.clone())
                .engine(EngineKind::Threaded)
                .sync(sync.clone())
                .max_quanta(50_000_000)
        };
        let (null_wall, null_report) = measure(|| base().run());
        let (rec_wall, rec_report) = measure(|| base().record(ObsConfig::new()).run());

        // Recording must never perturb the simulation.
        assert_eq!(
            null_report.simulated_outcome(),
            rec_report.simulated_outcome(),
            "{label}: recording changed the simulated outcome"
        );
        let fr = rec_report.obs.as_ref().expect("recording enabled");
        assert_eq!(
            fr.total_packets(),
            rec_report.total_packets,
            "{label}: flight recorder lost packets"
        );

        let overhead = rec_wall / null_wall.max(1e-12) - 1.0;
        println!(
            "{label:<13} null {null_wall:>9.4}s  recorded {rec_wall:>9.4}s  \
             overhead {:>6.2}%  quanta {}  packets {}",
            overhead * 100.0,
            rec_report.total_quanta,
            rec_report.total_packets,
        );
        configs.push(Value::Object(vec![
            ("policy".into(), Value::Str(label.into())),
            ("null_wall_secs".into(), Value::F64(null_wall)),
            ("recorded_wall_secs".into(), Value::F64(rec_wall)),
            ("overhead_frac".into(), Value::F64(overhead)),
            ("total_quanta".into(), Value::U64(rec_report.total_quanta)),
            ("total_packets".into(), Value::U64(rec_report.total_packets)),
            ("ring_samples".into(), Value::U64(fr.ring_len() as u64)),
            ("dropped_samples".into(), Value::U64(fr.dropped())),
            ("results_match".into(), Value::Bool(true)),
        ]));
    }
    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("obs_overhead".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("burst".into())),
                ("nodes".into(), Value::U64(NODES as u64)),
                ("compute_ops".into(), Value::U64(COMPUTE_OPS)),
                ("bytes".into(), Value::U64(BYTES)),
            ]),
        ),
        ("iterations".into(), Value::U64(ITERATIONS as u64)),
        ("configs".into(), Value::Array(configs)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write("BENCH_obs_overhead.json", json + "\n").expect("write BENCH_obs_overhead.json");
    println!("wrote BENCH_obs_overhead.json");
}
