//! Figure 6 — NAS accuracy (left) and speedup (right) for 2/4/8 nodes.
//!
//! Bars per processor count: fixed quanta of 10/100/1000 µs and the two
//! adaptive configurations (dyn 1.03:0.02 and dyn 1.05:0.02, both
//! 1–1000 µs), all relative to the 1 µs ground truth. Accuracy is the
//! harmonic mean of the five NAS-like benchmarks' MOPS; speed is the
//! aggregate host time across the suite.
//!
//! Usage: `fig6_nas [tiny|mini]` (mini is the figure scale; tiny is a
//! smoke-test).

use aqs_bench::{nas_aggregate, print_experiment, write_tsv};
use aqs_cluster::paper_sweep;
use aqs_metrics::render_bar_chart;
use aqs_workloads::Scale;
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let node_counts = [2usize, 4, 8];
    let aggregates: Vec<_> = node_counts
        .iter()
        .map(|&n| nas_aggregate(n, scale, 42, paper_sweep()))
        .collect();

    println!("=== Figure 6 — NAS accuracy (left) ===\n");
    let labels: Vec<&str> = aggregates[0].labels.iter().map(String::as_str).collect();
    let group_labels: Vec<String> = node_counts.iter().map(|n| n.to_string()).collect();
    let groups: Vec<&str> = group_labels.iter().map(String::as_str).collect();
    let error_bars: Vec<Vec<f64>> = aggregates
        .iter()
        .map(|a| a.errors.iter().map(|e| e * 100.0).collect())
        .collect();
    println!(
        "{}",
        render_bar_chart(&groups, &labels, &error_bars, 50, "%")
    );

    println!("=== Figure 6 — NAS speedup (right) ===\n");
    let speed_bars: Vec<Vec<f64>> = aggregates.iter().map(|a| a.speedups.clone()).collect();
    println!(
        "{}",
        render_bar_chart(&groups, &labels, &speed_bars, 50, "x")
    );

    let mut rows = Vec::new();
    for a in &aggregates {
        for (i, label) in a.labels.iter().enumerate() {
            rows.push(vec![
                a.n_nodes.to_string(),
                label.clone(),
                format!("{:.4}", a.errors[i]),
                format!("{:.2}", a.speedups[i]),
            ]);
        }
    }
    write_tsv("fig6_nas", &["nodes", "config", "error", "speedup"], &rows);

    println!("=== Per-benchmark detail ===\n");
    for a in &aggregates {
        for r in &a.per_benchmark {
            print_experiment(r);
        }
    }
    eprintln!("(fig6 wall time: {:.1?})", t0.elapsed());
}
