//! Figure 5 — the slowdown quantum synchronization itself introduces.
//!
//! Two nodes run pure computation (no packets at all) at deterministic,
//! different speeds: node 1's simulator is 30 % slower than node 0's. The
//! figure's two messages fall out of the host-time accounting:
//!
//! * the **slowest node sets the pace** — node 0 idles at every barrier
//!   waiting for node 1, so the cluster runs at node 1's speed;
//! * **each barrier costs host time**, so small quanta multiply that cost
//!   by orders of magnitude.
//!
//! Usage: `sync_overhead`.

use aqs_cluster::{run_workload, ClusterConfig};
use aqs_core::SyncConfig;
use aqs_metrics::render_table;
use aqs_node::HostModel;
use aqs_time::HostDuration;
use aqs_workloads::Workload;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let spec = Workload::UniformCompute {
        ops: 26_000_000,
        spread: 0.0,
    }
    .build(2, 0); // 10 ms of guest compute per node

    // Deterministic speeds: node 0 at 30 host-ns/sim-ns, node 1 at 39.
    let fast = HostModel::uniform(30.0, 0.02);
    let slow = HostModel::uniform(39.0, 0.02);
    let base = ClusterConfig::new(SyncConfig::ground_truth())
        .with_seed(8)
        .with_host(fast)
        .with_node_host(1, slow);

    // Free-running node 0 would take 10 ms × 30 = 300 ms of host time; the
    // cluster can never beat free-running node 1: 10 ms × 39 = 390 ms.
    let fast_alone = HostDuration::from_millis(300);
    let slow_alone = HostDuration::from_millis(390);

    println!("=== Figure 5 — synchronization overhead (2 nodes, compute only) ===\n");
    println!("node 0 alone would need {fast_alone}; node 1 alone {slow_alone}.\n");

    let mut rows = Vec::new();
    for q in [1u64, 10, 100, 1000] {
        let r = run_workload(&spec, &base.clone().with_sync(SyncConfig::fixed_micros(q)));
        let idle = 1.0 - fast_alone.as_secs_f64() / r.host_elapsed.as_secs_f64();
        let overhead = r.host_elapsed.as_secs_f64() / slow_alone.as_secs_f64();
        rows.push(vec![
            format!("{q}"),
            format!("{}", r.host_elapsed),
            format!("{}", r.total_quanta),
            format!("{:.0}%", idle * 100.0),
            format!("{overhead:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "quantum (µs)",
                "host time",
                "barriers",
                "node-0 idle",
                "vs. slowest free-run"
            ],
            &rows
        )
    );
    println!("the cluster always runs at the slowest simulator's pace (node 0 idles");
    println!("~23 % no matter what), and each barrier adds fixed host cost on top —");
    println!("at 1 µs quanta the barrier bill is the dominant term. This is the gap");
    println!("the adaptive quantum recovers during packet-free phases.");
    eprintln!("(wall: {:.1?})", t0.elapsed());
}
