//! Faithful replica of the seed threaded engine, kept solely as the
//! comparison baseline for `parallel_scaling`.
//!
//! Hot-path costs reproduced from the seed:
//!
//! * a process-global `Mutex<StragglerStats>` acquired **per routed packet**
//!   whenever straggling occurs;
//! * `Mutex<Vec<_>>` mailboxes (producers and the draining consumer contend);
//! * two `std::sync::Barrier` waits per quantum, with the policy behind its
//!   own `Mutex`;
//! * globally shared `np`/`total_packets` atomic counters bumped per packet.
//!
//! Functionally it matches the current engine under the perfect switch: the
//! seed ignored `bytes` on the route path, which coincides with a zero
//! transit delay. The current engine is the product code; this file is a
//! measurement artifact and must not be depended on elsewhere.

use aqs_cluster::parallel::{ParallelConfig, ParallelNodeResult, ParallelRunResult};
use aqs_net::{Destination, StragglerStats};
use aqs_node::{Action, MessageId, MessageMeta, NodeExecutor, Program, SendTarget};
use aqs_time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// A fragment in flight to one receiver.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    meta: MessageMeta,
    frag_index: u32,
    arrival: SimTime,
}

struct Shared {
    nic: aqs_net::NicModel,
    sim_pos: Vec<AtomicU64>,
    mailboxes: Vec<Mutex<Vec<InFlight>>>,
    np: AtomicU64,
    total_packets: AtomicU64,
    straggler_stats: Mutex<StragglerStats>,
    q_end: AtomicU64,
    done: AtomicU64,
    stop: AtomicBool,
    barrier: Barrier,
}

impl Shared {
    fn route(
        &self,
        src: usize,
        dst: Destination,
        departure: SimTime,
        meta: MessageMeta,
        frag_index: u32,
    ) {
        let arrival = self.nic.earliest_arrival(departure);
        let targets: Vec<usize> = match dst {
            Destination::Unicast(d) => vec![d.index()],
            Destination::Broadcast => (0..self.sim_pos.len()).filter(|&i| i != src).collect(),
        };
        for t in targets {
            self.np.fetch_add(1, Ordering::Relaxed);
            self.total_packets.fetch_add(1, Ordering::Relaxed);
            let pos = SimTime::from_nanos(self.sim_pos[t].load(Ordering::Acquire));
            let eff = arrival.max(pos);
            if eff > arrival {
                // The seed's per-packet global lock acquisition.
                self.straggler_stats.lock().unwrap().record(eff - arrival);
            }
            self.mailboxes[t].lock().unwrap().push(InFlight {
                meta,
                frag_index,
                arrival: eff,
            });
        }
    }
}

/// Runs `programs` exactly as the seed threaded engine did.
pub fn run_seed_parallel(programs: Vec<Program>, config: &ParallelConfig) -> ParallelRunResult {
    assert!(programs.len() >= 2, "a cluster needs at least 2 nodes");
    let n = programs.len();
    let policy = Mutex::new(config.sync.build());
    let q0 = policy.lock().unwrap().initial_quantum();
    let shared = Shared {
        nic: config.nic,
        sim_pos: (0..n).map(|_| AtomicU64::new(0)).collect(),
        mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        np: AtomicU64::new(0),
        total_packets: AtomicU64::new(0),
        straggler_stats: Mutex::new(StragglerStats::default()),
        q_end: AtomicU64::new(q0.as_nanos()),
        done: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        barrier: Barrier::new(n),
    };
    let quanta = AtomicU64::new(0);
    let overflow = AtomicBool::new(false);
    let start = Instant::now();
    let results: Vec<ParallelNodeResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| {
                let shared = &shared;
                let policy = &policy;
                let quanta = &quanta;
                let overflow = &overflow;
                scope.spawn(move || {
                    node_thread(i, program, config, shared, policy, quanta, overflow)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });
    assert!(
        !overflow.load(Ordering::Acquire),
        "quantum cap exceeded: workload deadlock?"
    );
    let wall = start.elapsed();
    let sim_end = results
        .iter()
        .map(|r| r.finish_sim)
        .max()
        .expect("at least two nodes");
    let stragglers = *shared.straggler_stats.lock().unwrap();
    ParallelRunResult {
        wall,
        sim_end,
        total_quanta: quanta.load(Ordering::Relaxed),
        total_packets: shared.total_packets.load(Ordering::Relaxed),
        stragglers,
        per_node: results,
    }
}

#[allow(clippy::too_many_arguments)]
fn node_thread(
    i: usize,
    program: Program,
    config: &ParallelConfig,
    shared: &Shared,
    policy: &Mutex<Box<dyn aqs_core::QuantumPolicy>>,
    quanta: &AtomicU64,
    overflow: &AtomicBool,
) -> ParallelNodeResult {
    let mut exec = NodeExecutor::new(program, config.cpu);
    let mut sim = SimTime::ZERO;
    let mut msg_seq = 0u64;
    let mut done_reported = false;
    struct Pending {
        remaining: SimDuration,
    }
    let mut pending: Option<Pending> = None;
    let publish = |t: SimTime| shared.sim_pos[i].store(t.as_nanos(), Ordering::Release);
    let mut q_end = SimTime::from_nanos(shared.q_end.load(Ordering::Acquire));
    loop {
        while sim < q_end {
            if let Some(p) = pending.take() {
                let step = p.remaining.min(q_end - sim);
                sim += step;
                publish(sim);
                if step < p.remaining {
                    pending = Some(Pending {
                        remaining: p.remaining - step,
                    });
                    break;
                }
                continue;
            }
            drain_mailbox(&mut exec, &shared.mailboxes[i]);
            match exec.next_action(sim) {
                Action::Advance {
                    dur,
                    ops: _,
                    idle: _,
                } => {
                    pending = Some(Pending { remaining: dur });
                }
                Action::Send { dst, bytes, tag } => {
                    let dest = match dst {
                        SendTarget::Rank(r) => {
                            Destination::Unicast(aqs_net::NodeId::new(r.as_u32()))
                        }
                        SendTarget::All => Destination::Broadcast,
                    };
                    let sizes = shared.nic.fragment_sizes(bytes);
                    let meta = MessageMeta {
                        id: MessageId {
                            src: exec.rank(),
                            seq: msg_seq,
                        },
                        tag,
                        bytes,
                        frag_count: sizes.len() as u32,
                    };
                    msg_seq += 1;
                    for (k, sz) in sizes.into_iter().enumerate() {
                        let ser = shared.nic.serialization_delay(sz);
                        sim += ser;
                        publish(sim);
                        shared.route(i, dest, sim, meta, k as u32);
                    }
                }
                Action::WaitUntil(t) => {
                    sim = t.min(q_end);
                    publish(sim);
                    if t >= q_end {
                        break;
                    }
                }
                Action::Blocked => {
                    sim = q_end;
                    publish(sim);
                    break;
                }
                Action::Finished => {
                    if !done_reported {
                        done_reported = true;
                        shared.done.fetch_add(1, Ordering::AcqRel);
                    }
                    sim = q_end;
                    publish(sim);
                    break;
                }
            }
        }
        sim = sim.max(q_end);
        publish(sim);
        match next_quantum(shared, policy, quanta, config, overflow) {
            Some(qe) => q_end = qe,
            None => break,
        }
    }
    ParallelNodeResult {
        rank: exec.rank(),
        finish_sim: exec.finish_time().unwrap_or(sim),
        ops: exec.ops_executed(),
        messages_received: exec.messages_received(),
        regions: exec.regions().to_vec(),
    }
}

fn next_quantum(
    shared: &Shared,
    policy: &Mutex<Box<dyn aqs_core::QuantumPolicy>>,
    quanta: &AtomicU64,
    config: &ParallelConfig,
    overflow: &AtomicBool,
) -> Option<SimTime> {
    let wait = shared.barrier.wait();
    if wait.is_leader() {
        let q = quanta.fetch_add(1, Ordering::AcqRel) + 1;
        let np = shared.np.swap(0, Ordering::AcqRel);
        if shared.done.load(Ordering::Acquire) as usize == shared.sim_pos.len() {
            shared.stop.store(true, Ordering::Release);
        } else if q > config.max_quanta {
            overflow.store(true, Ordering::Release);
            shared.stop.store(true, Ordering::Release);
        } else {
            let next = policy.lock().unwrap().next_quantum(np);
            let end = shared.q_end.load(Ordering::Acquire) + next.as_nanos();
            shared.q_end.store(end, Ordering::Release);
        }
    }
    shared.barrier.wait();
    if shared.stop.load(Ordering::Acquire) {
        None
    } else {
        Some(SimTime::from_nanos(shared.q_end.load(Ordering::Acquire)))
    }
}

fn drain_mailbox(exec: &mut NodeExecutor, mailbox: &Mutex<Vec<InFlight>>) {
    let drained: Vec<InFlight> = {
        let mut mb = mailbox.lock().unwrap();
        std::mem::take(&mut *mb)
    };
    for f in drained {
        exec.deliver_fragment(f.meta, f.frag_index, f.arrival);
    }
}
