//! Threaded-engine scaling sweep: node count × synchronization policy.
//!
//! Runs the burst workload (`host_work_per_op = 0`, so wall-clock is pure
//! engine overhead) on the current lock-free threaded engine AND on an
//! embedded replica of the seed implementation (std `Barrier` + mutexed
//! mailboxes + a global straggler-stats lock acquired per packet), measured
//! back to back on the same machine. Writes `BENCH_parallel.json` at the
//! repo root so every future PR can track the trajectory; the schema is
//! documented in EXPERIMENTS.md.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p aqs-bench --bin parallel_scaling
//! ```

use aqs_cluster::parallel::{ParallelConfig, ParallelRunResult};
use aqs_cluster::{EngineKind, Sim};
use aqs_core::SyncConfig;
use aqs_node::Program;
use aqs_workloads::burst;
use serde_json::Value;

mod seed_baseline;

const COMPUTE_OPS: u64 = 200_000;
const BYTES: u64 = 1024;
const ITERATIONS: u32 = 3;
const NODE_COUNTS: [usize; 4] = [2, 4, 8, 16];

fn policies() -> Vec<(&'static str, SyncConfig)> {
    vec![
        ("ground-truth", SyncConfig::ground_truth()),
        ("fixed-1000us", SyncConfig::fixed_micros(1000)),
        ("dyn1", SyncConfig::paper_dyn1()),
        ("dyn2", SyncConfig::paper_dyn2()),
    ]
}

/// Minimum wall over `ITERATIONS` runs (min is the noise-robust estimator
/// for a deterministic workload), plus the last run's simulated outcome.
fn measure<R>(mut run: impl FnMut() -> R, wall_of: impl Fn(&R) -> f64) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = run();
    best = best.min(wall_of(&last));
    for _ in 1..ITERATIONS {
        last = run();
        best = best.min(wall_of(&last));
    }
    (best, last)
}

fn engine_obj(wall: f64, quanta: u64, packets: u64, stragglers: u64, sim_end: u64) -> Value {
    Value::Object(vec![
        ("wall_secs".into(), Value::F64(wall)),
        ("total_quanta".into(), Value::U64(quanta)),
        ("total_packets".into(), Value::U64(packets)),
        ("stragglers".into(), Value::U64(stragglers)),
        ("sim_end_ns".into(), Value::U64(sim_end)),
    ])
}

fn main() {
    let mut configs = Vec::new();
    let mut burst16_speedup = None;
    for &n in &NODE_COUNTS {
        let spec = burst(n, COMPUTE_OPS, BYTES);
        for (label, sync) in policies() {
            let programs: Vec<Program> = spec.programs.clone();
            let cfg = ParallelConfig::new(sync.clone()).with_max_quanta(50_000_000);

            let (cur_wall, cur): (f64, ParallelRunResult) = {
                let programs = programs.clone();
                let sync = sync.clone();
                measure(
                    || {
                        Sim::new(programs.clone())
                            .engine(EngineKind::Threaded)
                            .sync(sync.clone())
                            .max_quanta(50_000_000)
                            .run()
                            .detail
                            .as_threaded()
                            .expect("threaded engine ran")
                            .clone()
                    },
                    |r| r.wall.as_secs_f64(),
                )
            };
            let (seed_wall, seed) = {
                let programs = programs.clone();
                measure(
                    || seed_baseline::run_seed_parallel(programs.clone(), &cfg),
                    |r| r.wall.as_secs_f64(),
                )
            };

            let speedup = seed_wall / cur_wall.max(1e-12);
            // Under the safe quantum both engines must produce the same
            // simulated outcome; with larger quanta straggler timing is
            // race-dependent, so only the functional outcome must match.
            let safe = label == "ground-truth";
            let results_match = cur.sim_end == seed.sim_end
                && cur.total_packets == seed.total_packets
                && cur.messages_received_total() == seed.messages_received_total();
            let functional_match = cur.total_packets == seed.total_packets
                && cur.messages_received_total() == seed.messages_received_total();
            if safe {
                assert!(
                    results_match,
                    "n={n} {label}: engines disagree under the safe quantum"
                );
            } else {
                assert!(
                    functional_match,
                    "n={n} {label}: functional outcomes disagree"
                );
            }
            if n == 16 && label == "ground-truth" {
                burst16_speedup = Some(speedup);
            }
            println!(
                "n={n:>2} {label:<13} current {cur_wall:>9.4}s  seed {seed_wall:>9.4}s  speedup {speedup:>5.2}x  \
                 quanta {q}  packets {p}  stragglers {s}",
                q = cur.total_quanta,
                p = cur.total_packets,
                s = cur.stragglers.count(),
            );
            configs.push(Value::Object(vec![
                ("nodes".into(), Value::U64(n as u64)),
                ("policy".into(), Value::Str(label.into())),
                (
                    "current".into(),
                    engine_obj(
                        cur_wall,
                        cur.total_quanta,
                        cur.total_packets,
                        cur.stragglers.count(),
                        cur.sim_end.as_nanos(),
                    ),
                ),
                (
                    "seed_baseline".into(),
                    engine_obj(
                        seed_wall,
                        seed.total_quanta,
                        seed.total_packets,
                        seed.stragglers.count(),
                        seed.sim_end.as_nanos(),
                    ),
                ),
                ("speedup".into(), Value::F64(speedup)),
                ("results_match".into(), Value::Bool(results_match)),
            ]));
        }
    }
    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("parallel_scaling".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("burst".into())),
                ("compute_ops".into(), Value::U64(COMPUTE_OPS)),
                ("bytes".into(), Value::U64(BYTES)),
                ("host_work_per_op".into(), Value::F64(0.0)),
            ]),
        ),
        ("iterations".into(), Value::U64(ITERATIONS as u64)),
        ("configs".into(), Value::Array(configs)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write("BENCH_parallel.json", json + "\n").expect("write BENCH_parallel.json");
    let speedup = burst16_speedup.expect("16-node ground-truth config ran");
    println!("\n16-node burst (ground truth) speedup vs seed engine: {speedup:.2}x");
    println!("wrote BENCH_parallel.json");
}
