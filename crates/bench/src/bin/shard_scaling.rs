//! Sharded-engine scaling sweep: cluster size × worker count × policy.
//!
//! Runs the burst workload (`host_work_per_op = 0`, so wall-clock is pure
//! engine overhead) at 64, 256, and 1024 nodes on the sharded engine for
//! every interesting worker count, with the thread-per-node engine measured
//! back to back as the baseline wherever it is viable (≤ 256 nodes — past
//! that, one OS thread per node is deep into the oversubscription cliff).
//! Also measures the pooled packet path's allocation counter differentially
//! to show that routing a packet allocates nothing in steady state, and
//! runs the active-set tiers — an idle-heavy rpc-incast at 64k nodes with
//! the wake wheel on vs the forced full sweep (≥3× gate), plus a 256k-node
//! active-set-only tier with its own zero-allocation differential. Writes
//! `BENCH_shard.json` at the repo root; the schema is documented in
//! EXPERIMENTS.md.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p aqs-bench --bin shard_scaling
//! ```
//!
//! `--smoke` runs a 64-node sweep with the results-match and allocation
//! assertions only (no JSON written, no timing gate) — the CI entry point.

use aqs_cluster::parallel::ParallelRunResult;
use aqs_cluster::{
    EngineKind, HybridPolicy, ShardedOptimisticRunResult, ShardedRunResult, Sim, SimSwitch,
};
use aqs_core::SyncConfig;
use aqs_net::{FabricConfig, FatTreeFabric};
use aqs_node::Program;
use aqs_obs::ObsConfig;
use aqs_workloads::{MpiBuilder, Workload};
use serde_json::Value;

const COMPUTE_OPS: u64 = 200_000;
const BYTES: u64 = 1024;
const MAX_QUANTA: u64 = 50_000_000;
/// Fabric-tier workload parameters: one fragment per message, enough
/// compute that the adaptive policy has quiet stretches to grow into.
const FABRIC_BYTES: u64 = 4096;
const FABRIC_COMPUTE: u64 = 50_000;
/// Threaded baseline ceiling: beyond this, thread-per-node is measured as
/// unviable rather than slow (see EXPERIMENTS.md on the oversubscription
/// cliff) and only the sharded engine runs.
const THREADED_MAX_NODES: usize = 256;

fn policies() -> Vec<(&'static str, SyncConfig)> {
    vec![
        ("ground-truth", SyncConfig::ground_truth()),
        ("fixed-1000us", SyncConfig::fixed_micros(1000)),
        ("dyn1", SyncConfig::paper_dyn1()),
        ("dyn2", SyncConfig::paper_dyn2()),
    ]
}

/// Minimum wall over `iterations` runs (min is the noise-robust estimator
/// for a deterministic workload), plus the last run's result.
fn measure<R>(
    iterations: u32,
    mut run: impl FnMut() -> R,
    wall_of: impl Fn(&R) -> f64,
) -> (f64, R) {
    let mut last = run();
    let mut best = wall_of(&last);
    for _ in 1..iterations {
        last = run();
        best = best.min(wall_of(&last));
    }
    (best, last)
}

fn run_sharded(programs: Vec<Program>, sync: &SyncConfig, workers: usize) -> ShardedRunResult {
    Sim::new(programs)
        .engine(EngineKind::Sharded)
        .shards(workers)
        .sync(sync.clone())
        .max_quanta(MAX_QUANTA)
        .run()
        .detail
        .as_sharded()
        .expect("sharded engine ran")
        .clone()
}

fn run_threaded(programs: Vec<Program>, sync: &SyncConfig) -> ParallelRunResult {
    Sim::new(programs)
        .engine(EngineKind::Threaded)
        .sync(sync.clone())
        .max_quanta(MAX_QUANTA)
        .run()
        .detail
        .as_threaded()
        .expect("threaded engine ran")
        .clone()
}

/// Full bit-identity between two sharded runs: the engine fixes delivery
/// times at the sender's quantum edge, so outcomes must not depend on the
/// worker count for *any* policy, stragglers included.
fn sharded_outcome_eq(a: &ShardedRunResult, b: &ShardedRunResult) -> bool {
    a.sim_end == b.sim_end
        && a.total_quanta == b.total_quanta
        && a.total_packets == b.total_packets
        && a.stragglers.count() == b.stragglers.count()
        && a.stragglers.total_delay() == b.stragglers.total_delay()
        && a.per_node.len() == b.per_node.len()
        && a.per_node.iter().zip(&b.per_node).all(|(x, y)| {
            x.finish_sim == y.finish_sim
                && x.messages_received == y.messages_received
                && x.ops == y.ops
        })
}

fn engine_obj(wall: f64, quanta: u64, packets: u64, stragglers: u64, sim_end: u64) -> Value {
    Value::Object(vec![
        ("wall_secs".into(), Value::F64(wall)),
        ("total_quanta".into(), Value::U64(quanta)),
        ("total_packets".into(), Value::U64(packets)),
        ("stragglers".into(), Value::U64(stragglers)),
        ("sim_end_ns".into(), Value::U64(sim_end)),
    ])
}

/// `rounds` back-to-back compute+all-to-all phases at 64 nodes: the packet
/// count scales with `rounds`, the peak in-flight population does not, so
/// the pool allocation counter must not move between short and long runs.
fn burst_rounds(rounds: usize) -> Vec<Program> {
    let mut m = MpiBuilder::new(64);
    for _ in 0..rounds {
        m.compute_all(COMPUTE_OPS);
        m.alltoall(BYTES);
    }
    m.build()
}

/// Ring neighbor exchange + compute for the fabric tiers: traffic is O(n),
/// so the sweep stays tractable at 65 536 nodes (an all-to-all would route
/// O(n²) packets), while every node still crosses racks both ways.
fn ring_workload(n: usize, rounds: usize) -> Vec<Program> {
    let mut m = MpiBuilder::new(n);
    for _ in 0..rounds {
        m.compute_all(FABRIC_COMPUTE);
        m.neighbor_exchange(&[1], FABRIC_BYTES);
    }
    m.build()
}

fn run_fabric(programs: Vec<Program>, workers: usize) -> ShardedRunResult {
    Sim::new(programs)
        .engine(EngineKind::Sharded)
        .shards(workers)
        .switch(SimSwitch::Fabric(FabricConfig::fat_tree()))
        .sync(SyncConfig::paper_dyn2())
        .max_quanta(MAX_QUANTA)
        .run()
        .detail
        .as_sharded()
        .expect("sharded engine ran")
        .clone()
}

/// The fat-tree fabric tiers: {4k, 16k, 64k}-node ring exchanges through
/// the modeled multi-tier fabric on the sharded engine. Asserts cross-M
/// bit-identity and a zero steady-state allocation differential at the
/// 4k-node tier; `--smoke` stops there (assertions only), the full sweep
/// adds 16k (with per-link stats captured from a recorded run) and 64k and
/// returns the `fabric` section of `BENCH_shard.json`.
fn fabric_sweep(smoke: bool, worker_counts: &[usize]) -> Option<Value> {
    let fabric_cfg = FabricConfig::fat_tree();
    let node_counts: &[usize] = if smoke {
        &[4096]
    } else {
        &[4096, 16_384, 65_536]
    };
    let mut tiers = Vec::new();
    for &n in node_counts {
        let programs = ring_workload(n, 1);
        let mut runs = Vec::new();
        for &m in worker_counts {
            let r = run_fabric(programs.clone(), m);
            runs.push((m, r));
        }
        let (_, base) = &runs[0];
        for (m, r) in &runs {
            assert!(
                sharded_outcome_eq(r, base),
                "fabric n={n}: sharded outcome depends on worker count M={m}"
            );
        }
        let n_links = FatTreeFabric::new(fabric_cfg, n).n_links();
        for (m, r) in &runs {
            println!(
                "fabric n={n:>5} workers={m:<3} wall {w:>9.4}s  quanta {q}  packets {p}  \
                 links {n_links}  pool-allocs {a}",
                w = r.wall.as_secs_f64(),
                q = r.total_quanta,
                p = r.total_packets,
                a = r.pool_heap_allocs,
            );
        }
        tiers.push(Value::Object(vec![
            ("nodes".into(), Value::U64(n as u64)),
            ("n_links".into(), Value::U64(n_links as u64)),
            ("policy".into(), Value::Str("dyn2".into())),
            (
                "sharded".into(),
                Value::Array(
                    runs.iter()
                        .map(|(m, r)| {
                            let Value::Object(mut fields) = engine_obj(
                                r.wall.as_secs_f64(),
                                r.total_quanta,
                                r.total_packets,
                                r.stragglers.count(),
                                r.sim_end.as_nanos(),
                            ) else {
                                unreachable!("engine_obj returns an object")
                            };
                            fields.insert(0, ("workers".into(), Value::U64(*m as u64)));
                            fields
                                .push(("pool_heap_allocs".into(), Value::U64(r.pool_heap_allocs)));
                            Value::Object(fields)
                        })
                        .collect(),
                ),
            ),
            ("worker_counts_agree".into(), Value::Bool(true)),
        ]));
    }

    // Allocation gate at the 4k-node tier: 4× the exchange rounds must not
    // add pool allocations beyond the 1-round warm-up, fabric transit math
    // included. Worker scheduling decides each worker's pool high-water
    // mark, so the two runs can differ by up to one warm-up alloc per
    // worker; a per-packet regression would show up as thousands.
    let m = *worker_counts.last().expect("at least one worker count");
    let short = run_fabric(ring_workload(4096, 1), m);
    let long = run_fabric(ring_workload(4096, 4), m);
    let extra = long.pool_heap_allocs.saturating_sub(short.pool_heap_allocs);
    assert!(long.total_packets > short.total_packets);
    assert!(
        extra <= m as u64,
        "steady-state fabric routing performed heap allocations at 4k nodes: \
         +{extra} pool allocations (scheduling jitter bound {m})"
    );
    println!(
        "fabric allocation differential at 4096 nodes: +{} packets -> +{extra} pool allocations",
        long.total_packets - short.total_packets,
    );

    // Per-link queue stats from a recorded run: the flight recorder's link
    // lanes must be populated and the hottest link identifiable. The smoke
    // sweep checks this at 4k; the full sweep captures the 16k tier for the
    // JSON artifact.
    let stats_nodes = if smoke { 4096 } else { 16_384 };
    let report = Sim::new(ring_workload(stats_nodes, 1))
        .engine(EngineKind::Sharded)
        .shards(m)
        .switch(SimSwitch::Fabric(fabric_cfg))
        .sync(SyncConfig::paper_dyn2())
        .max_quanta(MAX_QUANTA)
        .record(ObsConfig::new())
        .run();
    let fr = report.obs.as_ref().expect("recorded run has a recorder");
    let load = fr.link_load().expect("fabric run records link load");
    let fabric = FatTreeFabric::new(fabric_cfg, stats_nodes);
    assert_eq!(load.bytes.len(), fabric.n_links());
    assert!(load.total_bytes() > 0, "traffic must cross the fabric");
    let (hot, hot_bytes) = load.hottest().expect("some link carried traffic");
    let peak = load.peak_quantum_bytes.iter().copied().max().unwrap_or(0);
    println!(
        "fabric link stats at {stats_nodes} nodes: {} links, {} total bytes, hottest {} \
         ({hot_bytes} bytes), peak quantum load {peak} bytes",
        fabric.n_links(),
        load.total_bytes(),
        fabric.link_label(hot as u32),
    );
    if smoke {
        return None;
    }
    Some(Value::Object(vec![
        (
            "config".into(),
            Value::Object(vec![
                ("rack_size".into(), Value::U64(fabric_cfg.rack_size as u64)),
                (
                    "uplinks_per_rack".into(),
                    Value::U64(fabric_cfg.uplinks_per_rack as u64),
                ),
                ("edge_bw_bps".into(), Value::U64(fabric_cfg.edge_bw_bps)),
                ("uplink_bw_bps".into(), Value::U64(fabric_cfg.uplink_bw_bps)),
                (
                    "max_queue_bytes".into(),
                    Value::U64(fabric_cfg.max_queue_bytes),
                ),
            ]),
        ),
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("ring-exchange".into())),
                ("compute_ops".into(), Value::U64(FABRIC_COMPUTE)),
                ("bytes".into(), Value::U64(FABRIC_BYTES)),
            ]),
        ),
        ("tiers".into(), Value::Array(tiers)),
        (
            "link_stats".into(),
            Value::Object(vec![
                ("nodes".into(), Value::U64(stats_nodes as u64)),
                ("links".into(), Value::U64(fabric.n_links() as u64)),
                ("total_bytes".into(), Value::U64(load.total_bytes())),
                ("hottest_link".into(), Value::U64(hot as u64)),
                (
                    "hottest_label".into(),
                    Value::Str(fabric.link_label(hot as u32)),
                ),
                ("hottest_bytes".into(), Value::U64(hot_bytes)),
                ("max_peak_quantum_bytes".into(), Value::U64(peak)),
            ]),
        ),
    ]))
}

/// Idle-heavy tier parameters: microservice RPC incast where per wave only
/// the `IDLE_FRONTS` frontends plus their `IDLE_FANOUT` seeded backends are
/// hot — well under 1 % of a 64k-node cluster — while everyone else parks
/// after the first quantum. This is the workload shape the active-set
/// scheduler exists for: the full sweep pays O(total nodes) per quantum
/// regardless, the wake wheel pays O(active nodes). Waves are serialized
/// per frontend (each recv-all gates the next request), so peak in-flight
/// traffic is constant in `waves` — the axis the steady-state allocation
/// differential scales along.
const IDLE_FANOUT: usize = 64;
const IDLE_FRONTS: usize = 24;
const IDLE_REQUEST_BYTES: u64 = 2_048;
const IDLE_RESPONSE_BYTES: u64 = 16_384;
const IDLE_SERVICE_OPS: u64 = 50_000;
const IDLE_QUANTUM_US: u64 = 5;

fn idle_workload(n: usize, waves: usize) -> Vec<Program> {
    aqs_workloads::rpc_incast(
        n,
        IDLE_FRONTS,
        waves,
        IDLE_FANOUT,
        IDLE_REQUEST_BYTES,
        IDLE_RESPONSE_BYTES,
        IDLE_SERVICE_OPS,
        11,
    )
    .programs
}

fn run_idle(programs: Vec<Program>, workers: usize, full_sweep: bool) -> ShardedRunResult {
    Sim::new(programs)
        .engine(EngineKind::Sharded)
        .shards(workers)
        .sync(SyncConfig::fixed_micros(IDLE_QUANTUM_US))
        .force_full_sweep(full_sweep)
        .max_quanta(MAX_QUANTA)
        .run()
        .detail
        .as_sharded()
        .expect("sharded engine ran")
        .clone()
}

fn idle_obj(r: &ShardedRunResult, wall: f64) -> Value {
    let Value::Object(mut fields) = engine_obj(
        wall,
        r.total_quanta,
        r.total_packets,
        r.stragglers.count(),
        r.sim_end.as_nanos(),
    ) else {
        unreachable!("engine_obj returns an object")
    };
    fields.push(("nodes_executed".into(), Value::U64(r.nodes_executed)));
    fields.push(("pool_heap_allocs".into(), Value::U64(r.pool_heap_allocs)));
    Value::Object(fields)
}

/// The active-set headline tiers: the rpc-incast workload at 64k nodes with
/// the wake wheel on vs [`Sim::force_full_sweep`] (the pre-active-set
/// engine), then 256k nodes on the active set alone with a zero-allocation
/// differential. Bit-identity between the two modes is asserted at every
/// tier that runs both; the full sweep asserts the structural ≥3× win at
/// 64k and writes the before/after numbers into `BENCH_shard.json`.
/// `--smoke` checks identity and the activity ratio at 4k nodes only — no
/// timing gate, CI machines are noisy.
fn active_set_sweep(smoke: bool, workers: usize) -> Option<Value> {
    // Identity tier (every mode): cheap enough for CI, and the assertion
    // is the one that matters — the scheduler must never change the
    // simulation, only skip provably idle polls.
    let n0 = 4096;
    let programs = idle_workload(n0, 1);
    let full = run_idle(programs.clone(), workers, true);
    let active = run_idle(programs, workers, false);
    assert!(
        sharded_outcome_eq(&active, &full),
        "active-set outcome diverged from the full sweep at {n0} nodes"
    );
    let swept = full.nodes_executed;
    assert_eq!(
        swept,
        n0 as u64 * full.total_quanta,
        "full sweep must execute every node every quantum"
    );
    assert!(
        active.nodes_executed < swept / 10,
        "rpc-incast must be idle-heavy: active set executed {} of {swept} sweep slots",
        active.nodes_executed
    );
    println!(
        "active-set identity at n={n0}: {} of {swept} node executions ({:.2}% active), \
         outcomes bit-identical",
        active.nodes_executed,
        100.0 * active.nodes_executed as f64 / swept as f64,
    );
    if smoke {
        return None;
    }

    let mut tiers = Vec::new();
    // 64k before/after tier: the win must be structural (the sweep pays
    // O(total), the wheel O(active)), so a single iteration per mode is
    // enough for a ≥3× gate with a wide margin.
    let n = 65_536;
    let programs = idle_workload(n, 1);
    let full = run_idle(programs.clone(), workers, true);
    let active = run_idle(programs, workers, false);
    assert!(
        sharded_outcome_eq(&active, &full),
        "active-set outcome diverged from the full sweep at {n} nodes"
    );
    let (full_wall, active_wall) = (full.wall.as_secs_f64(), active.wall.as_secs_f64());
    let speedup = full_wall / active_wall.max(1e-12);
    assert!(
        speedup >= 3.0,
        "active set must beat the full sweep ≥3x at {n} nodes, got {speedup:.2}x \
         ({active_wall:.4}s vs {full_wall:.4}s)"
    );
    println!(
        "active-set n={n} workers={workers}: full sweep {full_wall:>8.4}s, \
         active set {active_wall:>8.4}s ({speedup:.1}x), {} of {} node executions",
        active.nodes_executed, full.nodes_executed,
    );
    tiers.push(Value::Object(vec![
        ("nodes".into(), Value::U64(n as u64)),
        ("full_sweep".into(), idle_obj(&full, full_wall)),
        ("active_set".into(), idle_obj(&active, active_wall)),
        ("speedup_active_vs_sweep".into(), Value::F64(speedup)),
        (
            "activity_ratio".into(),
            Value::F64(active.nodes_executed as f64 / full.nodes_executed as f64),
        ),
    ]));

    // 256k tier: active set only (the full sweep is the engine this tier
    // exists to retire), with the allocation differential run at full
    // scale — 4× the waves (same frontends, same peak in-flight incast,
    // 4× the packets) must not add pool allocations beyond the per-worker
    // warm-up jitter. The shared pool depot is what makes this hold: each
    // wave's incast migrates mailbox nodes into the receiving workers'
    // pools, and the depot recirculates the overflow back to the senders.
    let n = 262_144;
    let active = run_idle(idle_workload(n, 1), workers, false);
    let long = run_idle(idle_workload(n, 4), workers, false);
    let extra_packets = long.total_packets - active.total_packets;
    let extra_allocs = long
        .pool_heap_allocs
        .saturating_sub(active.pool_heap_allocs);
    assert!(extra_packets > 0, "long run must route more packets");
    // Warm-up is identical (wave 1 of both runs is the same seeded
    // traffic), so any surplus is a steady-state leak. The allowance is a
    // constant per worker — drain-timing jitter can strand a fraction of a
    // pool working set — never proportional to the extra packets: 3× the
    // packets at ~0.25 allocs each would blow this bound a hundredfold.
    let jitter = 128 * workers as u64;
    assert!(
        extra_allocs <= jitter,
        "steady-state packet routing performed heap allocations at {n} nodes: \
         +{extra_allocs} pool allocations over +{extra_packets} packets \
         (jitter bound {jitter})"
    );
    println!(
        "active-set n={n} workers={workers}: {:>8.4}s, {} node executions over {} quanta, \
         +{extra_packets} packets -> +{extra_allocs} pool allocations",
        active.wall.as_secs_f64(),
        active.nodes_executed,
        active.total_quanta,
    );
    tiers.push(Value::Object(vec![
        ("nodes".into(), Value::U64(n as u64)),
        (
            "active_set".into(),
            idle_obj(&active, active.wall.as_secs_f64()),
        ),
        (
            "activity_ratio".into(),
            Value::F64(active.nodes_executed as f64 / (n as u64 * active.total_quanta) as f64),
        ),
        (
            "steady_state_allocs_per_packet".into(),
            Value::F64(extra_allocs as f64 / extra_packets as f64),
        ),
    ]));

    Some(Value::Object(vec![
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("rpc-incast".into())),
                ("fronts".into(), Value::U64(IDLE_FRONTS as u64)),
                ("fanout".into(), Value::U64(IDLE_FANOUT as u64)),
                ("request_bytes".into(), Value::U64(IDLE_REQUEST_BYTES)),
                ("response_bytes".into(), Value::U64(IDLE_RESPONSE_BYTES)),
                ("service_ops".into(), Value::U64(IDLE_SERVICE_OPS)),
            ]),
        ),
        (
            "policy".into(),
            Value::Str(format!("fixed-{IDLE_QUANTUM_US}us")),
        ),
        ("workers".into(), Value::U64(workers as u64)),
        ("tiers".into(), Value::Array(tiers)),
    ]))
}

/// Mixed-straggler tier parameters: one shard's nodes run tight dependency
/// chains (every quantum above the safe bound makes them straggle), the
/// rest heavy compute with sparse exchanges. `host_work_per_op > 0` makes
/// every re-executed quantum cost real wall time, so rollback waste is
/// visible on the clock, not just in the counters.
const MIXED_NODES: usize = 64;
const MIXED_WORKERS: usize = 4;
const MIXED_QUANTUM_US: u64 = 200;
const MIXED_HOST_WORK: f64 = 1.0;
const MIXED_CHAIN_ROUNDS: usize = 250;
const MIXED_CHAIN_COMPUTE: u64 = 20_000;
const MIXED_QUIET_ROUNDS: usize = 40;
const MIXED_QUIET_COMPUTE: u64 = 150_000;

/// The mixed straggler workload: the first quarter of the ranks — exactly
/// shard 0 at `MIXED_WORKERS` — ping-pong in pairs with small compute
/// between rounds, so a 200 µs window holds several chain hops and the
/// optimistic fixed point keeps discovering in-window arrivals. The other
/// three quarters run long compute with one sparse ring exchange per round:
/// their packets land comfortably across window edges.
fn mixed_straggler_workload(n: usize) -> Vec<Program> {
    let mut b = MpiBuilder::new(n);
    let chatty = n / 4;
    for _ in 0..MIXED_CHAIN_ROUNDS {
        for r in 0..chatty {
            b.compute(r, MIXED_CHAIN_COMPUTE);
        }
        for pair in (0..chatty).step_by(2) {
            b.p2p(pair, pair + 1, 512);
            b.p2p(pair + 1, pair, 512);
        }
    }
    for _ in 0..MIXED_QUIET_ROUNDS {
        for r in chatty..n {
            b.compute(r, MIXED_QUIET_COMPUTE);
        }
        for r in chatty..n {
            let next = if r + 1 == n { chatty } else { r + 1 };
            b.p2p(r, next, 4096);
        }
    }
    b.build()
}

fn run_rollback(programs: Vec<Program>, hybrid: bool) -> ShardedOptimisticRunResult {
    let mut sim = Sim::new(programs)
        .engine(if hybrid {
            EngineKind::Hybrid
        } else {
            EngineKind::ShardedOptimistic
        })
        .shards(MIXED_WORKERS)
        .sync(SyncConfig::fixed_micros(MIXED_QUANTUM_US))
        .host_work_per_op(MIXED_HOST_WORK)
        .max_quanta(MAX_QUANTA);
    if hybrid {
        sim = sim.hybrid_policy(HybridPolicy {
            degrade_after: 1,
            recover_after: 4,
        });
    }
    sim.run()
        .detail
        .as_sharded_optimistic()
        .expect("rollback engine ran")
        .clone()
}

fn rollback_obj(label: &str, wall: f64, r: &ShardedOptimisticRunResult) -> Value {
    Value::Object(vec![
        ("engine".into(), Value::Str(label.into())),
        ("workers".into(), Value::U64(MIXED_WORKERS as u64)),
        ("wall_secs".into(), Value::F64(wall)),
        ("windows".into(), Value::U64(r.windows)),
        ("total_packets".into(), Value::U64(r.total_packets)),
        ("checkpoints".into(), Value::U64(r.checkpoints)),
        ("rollbacks".into(), Value::U64(r.rollbacks)),
        ("wasted_sim_ns".into(), Value::U64(r.wasted_sim.as_nanos())),
        ("degraded_windows".into(), Value::U64(r.degraded_windows)),
        (
            "conservative_windows".into(),
            Value::U64(r.conservative_windows),
        ),
        (
            "mode_switches".into(),
            Value::U64(r.mode_events.len() as u64),
        ),
        ("stragglers".into(), Value::U64(r.stragglers.count())),
        ("sim_end_ns".into(), Value::U64(r.sim_end.as_nanos())),
    ])
}

/// The hybrid headline tier: sharded-optimistic vs hybrid on the mixed
/// straggler workload. The smoke gate checks the deterministic counters
/// only — the hybrid must actually degrade its chatty shard, roll back
/// less, and waste less re-executed simulated time than pure optimistic
/// execution, while both conserve every message the deterministic engine
/// delivers. The full sweep additionally times both and asserts the hybrid
/// wins on wall clock (re-execution costs real host work here).
fn hybrid_sweep(smoke: bool, iterations: u32) -> Option<Value> {
    let programs = mixed_straggler_workload(MIXED_NODES);
    let det_messages = Sim::new(programs.clone())
        .sync(SyncConfig::fixed_micros(MIXED_QUANTUM_US))
        .max_quanta(MAX_QUANTA)
        .run()
        .messages_received;

    let iterations = if smoke { 1 } else { iterations };
    let (opt_wall, opt) = measure(
        iterations,
        || run_rollback(programs.clone(), false),
        |r| r.wall.as_secs_f64(),
    );
    let (hyb_wall, hyb) = measure(
        iterations,
        || run_rollback(programs.clone(), true),
        |r| r.wall.as_secs_f64(),
    );

    for (label, r) in [("sharded-optimistic", &opt), ("hybrid", &hyb)] {
        assert_eq!(
            r.messages_received_total(),
            det_messages,
            "{label}: lost messages on the mixed straggler workload"
        );
    }
    assert!(
        opt.rollbacks > 0,
        "the chatty shard must straggle under the unsafe quantum"
    );
    assert!(
        hyb.conservative_windows > 0 && !hyb.mode_events.is_empty(),
        "the hybrid must actually degrade the chatty shard"
    );
    assert!(
        hyb.rollbacks < opt.rollbacks,
        "hybrid must roll back less than pure optimistic \
         ({} vs {})",
        hyb.rollbacks,
        opt.rollbacks
    );
    assert!(
        hyb.wasted_sim < opt.wasted_sim,
        "hybrid must waste less re-executed simulated time \
         ({} vs {})",
        hyb.wasted_sim,
        opt.wasted_sim
    );
    println!(
        "mixed-straggler n={MIXED_NODES} m={MIXED_WORKERS} q={MIXED_QUANTUM_US}us: \
         optimistic {opt_wall:>8.4}s ({or} rollbacks, {ow} wasted)  \
         hybrid {hyb_wall:>8.4}s ({hr} rollbacks, {hw} wasted, {hc} conservative windows)",
        or = opt.rollbacks,
        ow = opt.wasted_sim,
        hr = hyb.rollbacks,
        hw = hyb.wasted_sim,
        hc = hyb.conservative_windows,
    );
    if smoke {
        return None;
    }
    assert!(
        hyb_wall < opt_wall,
        "hybrid must beat pure optimistic wall clock on the mixed straggler \
         workload ({hyb_wall:.4}s vs {opt_wall:.4}s)"
    );
    Some(Value::Object(vec![
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("mixed-straggler".into())),
                ("nodes".into(), Value::U64(MIXED_NODES as u64)),
                ("chain_rounds".into(), Value::U64(MIXED_CHAIN_ROUNDS as u64)),
                ("chain_compute_ops".into(), Value::U64(MIXED_CHAIN_COMPUTE)),
                ("quiet_rounds".into(), Value::U64(MIXED_QUIET_ROUNDS as u64)),
                ("quiet_compute_ops".into(), Value::U64(MIXED_QUIET_COMPUTE)),
                ("host_work_per_op".into(), Value::F64(MIXED_HOST_WORK)),
            ]),
        ),
        ("policy".into(), Value::Str("fixed-200us".into())),
        (
            "runs".into(),
            Value::Array(vec![
                rollback_obj("sharded-optimistic", opt_wall, &opt),
                rollback_obj("hybrid", hyb_wall, &hyb),
            ]),
        ),
        (
            "hybrid_speedup_vs_optimistic".into(),
            Value::F64(opt_wall / hyb_wall.max(1e-12)),
        ),
    ]))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2, avail];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    let node_counts: &[usize] = if smoke { &[64] } else { &[64, 256, 1024] };
    let iterations: u32 = if smoke { 1 } else { 2 };

    let mut configs = Vec::new();
    let mut headline = None;
    for &n in node_counts {
        let spec = Workload::Burst {
            compute: COMPUTE_OPS,
            bytes: BYTES,
        }
        .build(n, 0);
        for (label, sync) in policies() {
            let safe = label == "ground-truth";
            let threaded = (n <= THREADED_MAX_NODES).then(|| {
                let programs = spec.programs.clone();
                measure(
                    iterations,
                    || run_threaded(programs.clone(), &sync),
                    |r| r.wall.as_secs_f64(),
                )
            });
            let mut sharded_runs = Vec::new();
            for &m in &worker_counts {
                let programs = spec.programs.clone();
                let (wall, r) = measure(
                    iterations,
                    || run_sharded(programs.clone(), &sync, m),
                    |r| r.wall.as_secs_f64(),
                );
                sharded_runs.push((m, wall, r));
            }

            // Worker-count independence: every M must agree bit-for-bit.
            let (_, best_wall, base) = sharded_runs
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(m, w, r)| (*m, *w, r))
                .expect("at least one worker count");
            for (m, _, r) in &sharded_runs {
                assert!(
                    sharded_outcome_eq(r, base),
                    "n={n} {label}: sharded outcome depends on worker count M={m}"
                );
            }

            // Baseline differential, where the baseline exists. Under the
            // safe quantum the engines must agree exactly; with larger
            // quanta the threaded engine's straggler timing is
            // race-dependent, so only the functional outcome must match.
            let mut results_match = true;
            if let Some((thr_wall, thr)) = &threaded {
                let functional = base.total_packets == thr.total_packets
                    && base.messages_received_total() == thr.messages_received_total();
                results_match = functional && (!safe || base.sim_end == thr.sim_end);
                assert!(
                    results_match,
                    "n={n} {label}: sharded disagrees with the threaded baseline"
                );
                let speedup = thr_wall / best_wall.max(1e-12);
                if n == 256 && safe {
                    headline = Some(speedup);
                }
                println!(
                    "n={n:>4} {label:<13} sharded {best_wall:>9.4}s  threaded {thr_wall:>9.4}s  \
                     speedup {speedup:>6.2}x  packets {p}  pool-allocs {a}",
                    p = base.total_packets,
                    a = base.pool_heap_allocs,
                );
            } else {
                println!(
                    "n={n:>4} {label:<13} sharded {best_wall:>9.4}s  threaded      (skipped)  \
                     packets {p}  pool-allocs {a}",
                    p = base.total_packets,
                    a = base.pool_heap_allocs,
                );
            }

            let mut entry = vec![
                ("nodes".into(), Value::U64(n as u64)),
                ("policy".into(), Value::Str(label.into())),
                (
                    "sharded".into(),
                    Value::Array(
                        sharded_runs
                            .iter()
                            .map(|(m, wall, r)| {
                                let Value::Object(mut fields) = engine_obj(
                                    *wall,
                                    r.total_quanta,
                                    r.total_packets,
                                    r.stragglers.count(),
                                    r.sim_end.as_nanos(),
                                ) else {
                                    unreachable!("engine_obj returns an object")
                                };
                                fields.insert(0, ("workers".into(), Value::U64(*m as u64)));
                                fields.push((
                                    "pool_heap_allocs".into(),
                                    Value::U64(r.pool_heap_allocs),
                                ));
                                Value::Object(fields)
                            })
                            .collect(),
                    ),
                ),
                ("worker_counts_agree".into(), Value::Bool(true)),
                ("results_match".into(), Value::Bool(results_match)),
            ];
            if let Some((thr_wall, thr)) = &threaded {
                entry.push((
                    "threaded".into(),
                    engine_obj(
                        *thr_wall,
                        thr.total_quanta,
                        thr.total_packets,
                        thr.stragglers.count(),
                        thr.sim_end.as_nanos(),
                    ),
                ));
                entry.push((
                    "speedup_vs_threaded".into(),
                    Value::F64(thr_wall / best_wall.max(1e-12)),
                ));
            }
            configs.push(Value::Object(entry));
        }
    }

    // Allocation differential: 4× the all-to-all rounds must not add pool
    // allocations beyond the 1-round warm-up — steady-state packet routing
    // is allocation-free. Scheduling across the 2 workers can shift each
    // worker's pool high-water mark by one warm-up alloc, hence the jitter
    // bound; a per-packet regression would show up as thousands.
    let gt = SyncConfig::ground_truth();
    let short = run_sharded(burst_rounds(1), &gt, 2);
    let long = run_sharded(burst_rounds(4), &gt, 2);
    let extra_packets = long.total_packets - short.total_packets;
    let extra_allocs = long.pool_heap_allocs.saturating_sub(short.pool_heap_allocs);
    assert!(extra_packets > 0, "long run must route more packets");
    assert!(
        extra_allocs <= 2,
        "steady-state packet routing performed heap allocations: \
         +{extra_allocs} pool allocations (scheduling jitter bound 2)"
    );
    println!(
        "allocation differential: +{extra_packets} packets -> +{extra_allocs} pool allocations \
         ({} warm-up allocs for {} packets in the short run)",
        short.pool_heap_allocs, short.total_packets,
    );

    let m_max = *worker_counts.last().expect("at least one worker count");
    let active_set_section = active_set_sweep(smoke, m_max);
    let fabric_section = fabric_sweep(smoke, &worker_counts);
    let hybrid_section = hybrid_sweep(smoke, iterations);

    if smoke {
        println!(
            "smoke sweep passed (results-match + allocation + active-set + fabric + hybrid \
             assertions only)"
        );
        return;
    }

    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("shard_scaling".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str("burst".into())),
                ("compute_ops".into(), Value::U64(COMPUTE_OPS)),
                ("bytes".into(), Value::U64(BYTES)),
                ("host_work_per_op".into(), Value::F64(0.0)),
            ]),
        ),
        ("iterations".into(), Value::U64(iterations as u64)),
        ("available_parallelism".into(), Value::U64(avail as u64)),
        (
            "threaded_max_nodes".into(),
            Value::U64(THREADED_MAX_NODES as u64),
        ),
        (
            "steady_state_allocs_per_packet".into(),
            Value::F64(extra_allocs as f64 / extra_packets as f64),
        ),
        ("configs".into(), Value::Array(configs)),
        (
            "active_set".into(),
            active_set_section.expect("full sweep builds the active-set section"),
        ),
        (
            "fabric".into(),
            fabric_section.expect("full sweep builds the fabric section"),
        ),
        (
            "hybrid".into(),
            hybrid_section.expect("full sweep builds the hybrid section"),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write("BENCH_shard.json", json + "\n").expect("write BENCH_shard.json");
    let speedup = headline.expect("256-node ground-truth config ran");
    println!("\n256-node burst (ground truth) sharded speedup vs threaded: {speedup:.2}x");
    println!("wrote BENCH_shard.json");
}
