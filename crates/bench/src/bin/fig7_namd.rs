//! Figure 7 — NAMD accuracy (left) and speedup (right) for 2/4/8 nodes.
//!
//! Same bars as Figure 6 but for the NAMD-like workload, whose metric is
//! its self-reported wall-clock time (so accuracy error can exceed 100 %).
//!
//! Usage: `fig7_namd [tiny|mini]`.

use aqs_bench::{print_experiment, run_sweep, write_tsv};
use aqs_cluster::paper_sweep;
use aqs_metrics::render_bar_chart;
use aqs_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        _ => Scale::Mini,
    };
    let t0 = Instant::now();
    let node_counts = [2usize, 4, 8];
    let results: Vec<_> = node_counts
        .iter()
        .map(|&n| run_sweep(Workload::Namd { scale }.build(n, 42), 42, paper_sweep()))
        .collect();

    let labels: Vec<String> = results[0]
        .outcomes
        .iter()
        .map(|o| o.label.clone())
        .collect();
    let labels: Vec<&str> = labels.iter().map(String::as_str).collect();
    let group_labels: Vec<String> = node_counts.iter().map(|n| n.to_string()).collect();
    let groups: Vec<&str> = group_labels.iter().map(String::as_str).collect();

    println!("=== Figure 7 — NAMD accuracy (left) ===\n");
    let error_bars: Vec<Vec<f64>> = results
        .iter()
        .map(|r| {
            r.outcomes
                .iter()
                .map(|o| o.accuracy_error * 100.0)
                .collect()
        })
        .collect();
    println!(
        "{}",
        render_bar_chart(&groups, &labels, &error_bars, 50, "%")
    );

    println!("=== Figure 7 — NAMD speedup (right) ===\n");
    let speed_bars: Vec<Vec<f64>> = results
        .iter()
        .map(|r| r.outcomes.iter().map(|o| o.speedup).collect())
        .collect();
    println!(
        "{}",
        render_bar_chart(&groups, &labels, &speed_bars, 50, "x")
    );

    let mut rows = Vec::new();
    for r in &results {
        for o in &r.outcomes {
            rows.push(vec![
                r.n_nodes.to_string(),
                o.label.clone(),
                format!("{:.4}", o.accuracy_error),
                format!("{:.2}", o.speedup),
            ]);
        }
    }
    write_tsv("fig7_namd", &["nodes", "config", "error", "speedup"], &rows);

    println!("=== Detail ===\n");
    for r in &results {
        print_experiment(r);
    }
    eprintln!("(fig7 wall time: {:.1?})", t0.elapsed());
}
