//! Experiment-to-text plumbing shared by the figure binaries.

use aqs_cluster::{ClusterConfig, Experiment, ExperimentResult};
use aqs_core::SyncConfig;
use aqs_metrics::{harmonic_mean, render_table};
use aqs_node::CpuModel;
use aqs_time::{HostTime, SimDuration, SimTime};
use aqs_workloads::{with_background_traffic, WorkloadSpec};

/// One row of a figure's underlying data: a configuration's accuracy error
/// and speedup.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Configuration label.
    pub label: String,
    /// Accuracy error vs. ground truth (fraction).
    pub error: f64,
    /// Speedup vs. ground truth.
    pub speedup: f64,
    /// Simulated execution ratio vs. ground truth.
    pub sim_ratio: f64,
    /// Straggler count.
    pub stragglers: u64,
    /// Quanta executed.
    pub quanta: u64,
}

/// Extracts the rows of an experiment result.
pub fn experiment_table(r: &ExperimentResult) -> Vec<FigureRow> {
    r.outcomes
        .iter()
        .map(|o| FigureRow {
            label: o.label.clone(),
            error: o.accuracy_error,
            speedup: o.speedup,
            sim_ratio: o.sim_ratio,
            stragglers: o.result.stragglers.count(),
            quanta: o.result.total_quanta,
        })
        .collect()
}

/// Prints an experiment as an aligned table.
pub fn print_experiment(r: &ExperimentResult) {
    println!(
        "== {} — {} nodes (baseline: {} in {}, {} quanta) ==",
        r.name, r.n_nodes, r.baseline_metric, r.baseline.host_elapsed, r.baseline.total_quanta
    );
    let rows: Vec<Vec<String>> = experiment_table(r)
        .into_iter()
        .map(|row| {
            vec![
                row.label,
                format!("{:.1}x", row.speedup),
                format!("{:.2}%", row.error * 100.0),
                format!("{:.2}x", row.sim_ratio),
                row.stragglers.to_string(),
                row.quanta.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "config",
                "speedup",
                "acc. error",
                "sim ratio",
                "stragglers",
                "quanta"
            ],
            &rows
        )
    );
}

/// The housekeeping traffic every "guest OS" in the harness emits: one 90 B
/// datagram per node every 160 ms of estimated guest time (≈ ARP/NTP/cron
/// chatter; see DESIGN.md). This is what the paper's Figure 9(a) EP trace
/// shows as sparse packets during compute-only phases.
pub fn with_housekeeping(spec: WorkloadSpec) -> WorkloadSpec {
    with_background_traffic(
        spec,
        SimDuration::from_millis(160),
        90,
        &CpuModel::default(),
    )
}

/// The harness' standard base configuration for a given experiment seed.
pub fn standard_config(seed: u64) -> ClusterConfig {
    ClusterConfig::new(SyncConfig::ground_truth()).with_seed(seed)
}

/// Runs one workload (with housekeeping traffic) through a sweep.
pub fn run_sweep(spec: WorkloadSpec, seed: u64, sweep: Vec<SyncConfig>) -> ExperimentResult {
    Experiment::new(with_housekeeping(spec), standard_config(seed), sweep).run()
}

/// Aggregate of the five NAS benchmarks at one node count, the way the
/// paper aggregates Figure 6: harmonic-mean MOPS per configuration
/// (accuracy), total host time per configuration (speed).
#[derive(Clone, Debug)]
pub struct NasAggregate {
    /// Node count.
    pub n_nodes: usize,
    /// Configuration labels, sweep order.
    pub labels: Vec<String>,
    /// Accuracy error of the harmonic-mean MOPS, per configuration.
    pub errors: Vec<f64>,
    /// Aggregate speedup (total baseline host time / total config host
    /// time), per configuration.
    pub speedups: Vec<f64>,
    /// The per-benchmark experiment results.
    pub per_benchmark: Vec<ExperimentResult>,
}

/// Runs all five NAS-likes at `n` nodes through `sweep` and aggregates.
///
/// # Panics
///
/// Panics if `sweep` is empty.
pub fn nas_aggregate(
    n: usize,
    scale: aqs_workloads::Scale,
    seed: u64,
    sweep: Vec<SyncConfig>,
) -> NasAggregate {
    assert!(!sweep.is_empty(), "sweep must not be empty");
    let results: Vec<ExperimentResult> = aqs_workloads::nas::all(n, scale)
        .into_iter()
        .map(|spec| run_sweep(spec, seed, sweep.clone()))
        .collect();
    let k = sweep.len();
    let labels: Vec<String> = results[0]
        .outcomes
        .iter()
        .map(|o| o.label.clone())
        .collect();
    let base_host: f64 = results
        .iter()
        .map(|r| r.baseline.host_elapsed.as_secs_f64())
        .sum();
    let mut errors = Vec::with_capacity(k);
    let mut speedups = Vec::with_capacity(k);
    for c in 0..k {
        // Normalize each benchmark's MOPS by its own ground truth before the
        // harmonic mean: the synthetic op counts are arbitrary, so without
        // normalization a high-MOPS benchmark's dilation would be hidden.
        let rel: Vec<f64> = results
            .iter()
            .map(|r| r.outcomes[c].metric.value() / r.baseline_metric.value())
            .collect();
        let hmean = harmonic_mean(&rel).expect("five benchmarks");
        errors.push(aqs_metrics::relative_error(hmean, 1.0));
        let host: f64 = results
            .iter()
            .map(|r| r.outcomes[c].result.host_elapsed.as_secs_f64())
            .sum();
        speedups.push(base_host / host);
    }
    NasAggregate {
        n_nodes: n,
        labels,
        errors,
        speedups,
        per_benchmark: results,
    }
}

/// Windowed speedup-over-time for Figure 9's right-hand panels.
///
/// Both runs' progress checkpoints are resampled onto `windows` equal
/// slices of their own simulated span; the speedup of window *i* is the
/// ratio of host time the two runs spent covering their *i*-th slice.
/// Returns `(window_fraction, speedup)` pairs.
///
/// # Panics
///
/// Panics if either progress series has fewer than two points or
/// `windows == 0`.
pub fn speedup_over_time(
    baseline: &[(HostTime, SimTime)],
    config: &[(HostTime, SimTime)],
    windows: usize,
) -> Vec<(f64, f64)> {
    assert!(windows > 0, "need at least one window");
    assert!(
        baseline.len() >= 2 && config.len() >= 2,
        "progress series too short"
    );
    let host_at = |series: &[(HostTime, SimTime)], frac: f64| -> f64 {
        let target = series.last().expect("non-empty").1.as_nanos() as f64 * frac;
        // Linear interpolation over the (sim → host) staircase.
        let mut prev = series[0];
        for &(h, s) in series {
            let (s_f, h_f) = (s.as_nanos() as f64, h.as_nanos() as f64);
            let (ps_f, ph_f) = (prev.1.as_nanos() as f64, prev.0.as_nanos() as f64);
            if s_f >= target {
                if (s_f - ps_f) < 1.0 {
                    return h_f;
                }
                let t = (target - ps_f) / (s_f - ps_f);
                return ph_f + t * (h_f - ph_f);
            }
            prev = (h, s);
        }
        series.last().expect("non-empty").0.as_nanos() as f64
    };
    (0..windows)
        .map(|i| {
            let lo = i as f64 / windows as f64;
            let hi = (i + 1) as f64 / windows as f64;
            let dh_base = host_at(baseline, hi) - host_at(baseline, lo);
            let dh_cfg = (host_at(config, hi) - host_at(config, lo)).max(1.0);
            ((lo + hi) / 2.0, dh_base / dh_cfg)
        })
        .collect()
}

/// Writes rows of tab-separated values under `results/<name>.tsv` so the
/// figures can be re-plotted with external tooling. Creates the directory
/// on first use; failures are reported, not fatal (the ASCII output is the
/// primary artifact).
pub fn write_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    let path = dir.join(format!("{name}.tsv"));
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, out)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("(data written to {})", path.display());
    }
}

/// Renders a log-y line of `(x, y)` pairs as a compact ASCII panel.
pub fn render_log_series(series: &[(f64, f64)], rows: usize, label: &str) -> String {
    if series.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let y_max = series
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::MIN_POSITIVE, f64::max);
    let y_min = series
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::INFINITY, f64::min)
        .max(1e-3);
    let (ly_min, ly_max) = (y_min.ln(), (y_max.ln()).max(y_min.ln() + 1e-9));
    let cols = series.len();
    let mut grid = vec![vec![' '; cols]; rows];
    for (i, &(_, y)) in series.iter().enumerate() {
        let fy = ((y.max(y_min).ln() - ly_min) / (ly_max - ly_min)) * (rows - 1) as f64;
        let r = rows - 1 - fy.round() as usize;
        grid[r][i] = '●';
    }
    let mut out = format!("{label} (log y: {y_min:.1}x .. {y_max:.1}x)\n");
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols));
    out.push_str("> time\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(u64, u64)]) -> Vec<(HostTime, SimTime)> {
        v.iter()
            .map(|&(h, s)| (HostTime::from_nanos(h), SimTime::from_nanos(s)))
            .collect()
    }

    #[test]
    fn speedup_over_time_constant_rates() {
        // Baseline covers sim at 10 host-ns per sim-ns; config at 2.
        let base = pts(&[(0, 0), (1000, 100), (2000, 200)]);
        let cfg = pts(&[(0, 0), (200, 100), (400, 200)]);
        let s = speedup_over_time(&base, &cfg, 4);
        assert_eq!(s.len(), 4);
        for (_, v) in s {
            assert!((v - 5.0).abs() < 0.2, "expected ~5x, got {v}");
        }
    }

    #[test]
    fn speedup_over_time_detects_phase_change() {
        // Config is fast in the first half, slow in the second.
        let base = pts(&[(0, 0), (1000, 100), (2000, 200)]);
        let cfg = pts(&[(0, 0), (100, 100), (1100, 200)]);
        let s = speedup_over_time(&base, &cfg, 2);
        assert!(s[0].1 > 5.0);
        assert!(s[1].1 < 1.5);
    }

    #[test]
    fn render_log_series_is_nonempty() {
        let s = render_log_series(&[(0.1, 1.0), (0.5, 10.0), (0.9, 100.0)], 6, "test");
        assert!(s.contains("test"));
        assert_eq!(s.matches('●').count(), 3);
    }
}
