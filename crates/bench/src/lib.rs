//! Shared harness code for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md §4 for the index); the formatting and experiment
//! plumbing they share lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    experiment_table, nas_aggregate, print_experiment, render_log_series, run_sweep,
    speedup_over_time, standard_config, with_housekeeping, write_tsv, FigureRow, NasAggregate,
};
