//! Microbenchmarks: the minimal workloads used by tests, examples and the
//! Figure 3/4/5 scenario demonstrations.

use crate::mpi::MpiBuilder;
use crate::spec::{MetricKind, WorkloadSpec};
use aqs_node::RegionId;

/// A `rounds`-deep ping-pong between ranks 0 and 1 of an `n`-rank cluster
/// (other ranks idle-compute) — the paper's Figure 2/3 "what a ping would
/// do" scenario. Metric: kernel wall-clock (round-trip time × rounds).
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::ping_pong(2, 10, 64);
/// assert_eq!(spec.programs[0].send_count(), 10);
/// ```
pub fn ping_pong(n: usize, rounds: usize, bytes: u64) -> WorkloadSpec {
    assert!(rounds > 0, "need at least one round");
    let mut m = MpiBuilder::new(n);
    m.region_start_all(RegionId::KERNEL);
    for _ in 0..rounds {
        m.p2p(0, 1, bytes);
        m.p2p(1, 0, bytes);
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("ping-pong", m.build(), MetricKind::KernelTime)
}

/// A communication burst: every rank exchanges `bytes` with every other
/// rank, sandwiched between two compute phases — exercises the adaptive
/// quantum's brake/accelerate cycle exactly once.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::burst(4, 100_000, 1024);
/// assert_eq!(spec.n_ranks(), 4);
/// ```
pub fn burst(n: usize, compute_ops: u64, bytes: u64) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    m.region_start_all(RegionId::KERNEL);
    m.compute_all(compute_ops);
    m.alltoall(bytes);
    m.compute_all(compute_ops);
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("burst", m.build(), MetricKind::KernelTime)
}

/// Pure computation with a deterministic ±`spread` per-rank imbalance and
/// no communication at all — isolates synchronization overhead (Figure 5).
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::uniform_compute(2, 1_000_000, 0.1);
/// assert!(spec.total_ops() >= 1_800_000);
/// ```
pub fn uniform_compute(n: usize, ops_per_rank: u64, spread: f64) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    m.region_start_all(RegionId::KERNEL);
    m.compute_all_imbalanced(ops_per_rank, spread, 1);
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("compute", m.build(), MetricKind::Mops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_structure() {
        let spec = ping_pong(4, 3, 64);
        assert_eq!(spec.n_ranks(), 4);
        assert_eq!(spec.programs[0].send_count(), 3);
        assert_eq!(spec.programs[1].send_count(), 3);
        assert_eq!(spec.programs[2].send_count(), 0);
        assert_eq!(spec.metric, MetricKind::KernelTime);
    }

    #[test]
    fn burst_has_two_compute_phases() {
        let spec = burst(4, 1000, 64);
        assert_eq!(spec.total_ops(), 2 * 4 * 1000);
        assert_eq!(spec.programs[0].send_count(), 3);
    }

    #[test]
    fn uniform_compute_has_no_messages() {
        let spec = uniform_compute(3, 1000, 0.0);
        assert!(spec
            .programs
            .iter()
            .all(|p| p.send_count() == 0 && p.recv_count() == 0));
        assert_eq!(spec.total_ops(), 3000);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = ping_pong(2, 0, 64);
    }
}
