//! NAMD-like molecular-dynamics workload.
//!
//! NAMD (apoa1) is the paper's worst-case *speed* benchmark: "there is no
//! visible interval where the application is not exchanging data over the
//! network" (§6), which keeps the adaptive quantum pinned near the safe
//! floor and caps the achievable speedup around the best fixed quantum.
//!
//! The generator models Charm++-style spatial-decomposition MD with
//! communication/computation overlap:
//!
//! * force computation is split into *chunks*, and a patch-boundary message
//!   leaves after every chunk — so packets flow throughout the step, not
//!   just at its end (this is what denies the adaptive quantum its quiet
//!   phases);
//! * the neighbour data for the next step is consumed at the step
//!   boundary, followed by an energy `allreduce` — a latency-bound chain;
//! * every fourth step runs a PME-style small `alltoall` (the FFT
//!   transpose), whose `n − 1` round dependency chain is what dilates
//!   simulated time badly under long quanta.
//!
//! NAMD reports wall-clock time, so the metric is
//! [`MetricKind::KernelTime`].

use crate::mpi::MpiBuilder;
use crate::spec::{MetricKind, Scale, WorkloadSpec};
use aqs_node::RegionId;

/// Builds the NAMD-like workload for `n` ranks.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::namd::namd(8, aqs_workloads::Scale::Tiny);
/// assert_eq!(spec.name, "NAMD");
/// assert_eq!(spec.metric, aqs_workloads::MetricKind::KernelTime);
/// ```
pub fn namd(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let steps = scale.iters(16);
    // apoa1-like: fixed molecule, work splits across ranks.
    let step_ops = (scale.ops(416_000_000) / n as u64).max(8);
    let patch_bytes = (scale.ops(96_000) / n as u64).max(512);
    let pme_bytes = (scale.ops(512_000) / (n as u64 * n as u64)).max(128);
    // Chunked force computation: one patch message per chunk. The chunk
    // count grows with the rank count (Charm++ overdecomposition keeps the
    // *global* message count per step roughly proportional to the number
    // of patches): small clusters see quiet intra-step gaps, large ones see
    // continuous traffic — exactly the paper's 8-node vs 64-node contrast.
    let chunks = (n as u64 / 4).clamp(2, 16);
    // Molecule distribution (untimed setup).
    m.bcast(0, 65_536);
    m.region_start_all(RegionId::KERNEL);
    for s in 0..steps {
        // Overlapped force computation: a patch message leaves after every
        // chunk, alternating direction so both ring neighbours stay fed.
        for c in 0..chunks {
            // Per-chunk imbalance: atom density varies per patch and step.
            m.compute_all_imbalanced(step_ops / chunks, 0.04, 500 + (s as u64) * chunks + c);
            let dist = if c % 2 == 0 || n <= 4 {
                1
            } else {
                2usize.min(n - 1)
            };
            m.neighbor_exchange(&[dist], patch_bytes);
        }
        // Energy reduction: a log2(n)-deep latency chain every step.
        m.allreduce(64, 100);
        // PME long-range electrostatics: FFT transpose every 4th step.
        if s % 4 == 0 {
            m.alltoall(pme_bytes);
        }
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("NAMD", m.build(), MetricKind::KernelTime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_for_paper_node_counts() {
        for n in [2usize, 4, 8, 64] {
            let spec = namd(n, Scale::Tiny);
            assert_eq!(spec.n_ranks(), n);
            assert!(spec.total_ops() > 0);
        }
    }

    #[test]
    fn traffic_is_dense() {
        // NAMD must send far more often per unit compute than EP.
        let nm = namd(8, Scale::Mini);
        let ep = crate::nas::ep(8, Scale::Mini);
        let density = |s: &WorkloadSpec| {
            let sends: usize = s.programs.iter().map(|p| p.send_count()).sum();
            sends as f64 / s.total_ops() as f64
        };
        assert!(density(&nm) > 5.0 * density(&ep));
    }

    #[test]
    fn messages_flow_within_steps_not_only_at_boundaries() {
        // Between any two consecutive sends there must never be more than
        // ~1/8 of a step's compute — the overlap property.
        let spec = namd(8, Scale::Mini);
        let p = &spec.programs[0];
        let step_ops = Scale::Mini.ops(416_000_000) / 8;
        let chunks = 2; // n = 8 → 2 chunks
        let mut since_send = 0u64;
        let mut max_gap = 0u64;
        for op in p.ops() {
            match op {
                aqs_node::Op::Compute { ops } => since_send += ops,
                aqs_node::Op::Send { .. } => {
                    max_gap = max_gap.max(since_send);
                    since_send = 0;
                }
                _ => {}
            }
        }
        // Allow the ±4 % per-chunk imbalance on top of the chunk size.
        assert!(
            max_gap <= step_ops / chunks + step_ops / 20,
            "compute gap {max_gap} exceeds a chunk ({})",
            step_ops / chunks
        );
    }

    #[test]
    fn small_clusters_use_single_distance() {
        let spec = namd(2, Scale::Tiny);
        assert!(spec.programs[0].send_count() > 0);
    }
}
