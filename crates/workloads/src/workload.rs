//! The unified workload API: one enum, one `build` entry point.
//!
//! Historically every workload had its own free-function constructor with
//! its own signature (`ping_pong(n, rounds, bytes)`, `nas::is(n, scale)`,
//! `namd(n, scale)`, …), so scenarios, benches, and the conformance
//! harness each hard-wired their own dispatch. [`Workload`] folds them —
//! micro, NAS, NAMD, and the production generators — behind one value type
//! with a single [`Workload::build`] entry: everything that generates
//! traffic goes through it.

use crate::spec::{Scale, WorkloadSpec};
use crate::{micro, namd, nas, production};

/// One of the six NAS Parallel Benchmarks the paper evaluates (plus FT
/// from the extended set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NasBench {
    /// Embarrassingly parallel.
    Ep,
    /// Integer sort (the paper's worst-case accuracy benchmark).
    Is,
    /// Conjugate gradient.
    Cg,
    /// Multigrid.
    Mg,
    /// LU factorization wavefront.
    Lu,
    /// 3-D FFT (extended set).
    Ft,
}

impl NasBench {
    /// Lowercase benchmark name (`ep` / `is` / `cg` / `mg` / `lu` / `ft`).
    pub fn name(&self) -> &'static str {
        match self {
            NasBench::Ep => "ep",
            NasBench::Is => "is",
            NasBench::Cg => "cg",
            NasBench::Mg => "mg",
            NasBench::Lu => "lu",
            NasBench::Ft => "ft",
        }
    }
}

/// A workload description: which traffic generator to run and with what
/// parameters. Turn it into programs with [`Workload::build`].
///
/// # Examples
///
/// ```
/// use aqs_workloads::Workload;
///
/// let spec = Workload::parse("rpc-fanout").unwrap().build(8, 42);
/// assert_eq!(spec.n_ranks(), 8);
/// // Same (workload, n, seed) → bit-identical programs.
/// let again = Workload::parse("rpc-fanout").unwrap().build(8, 42);
/// for (a, b) in spec.programs.iter().zip(&again.programs) {
///     assert_eq!(a.ops(), b.ops());
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Two-rank ping-pong (others idle): the paper's Figure 2/3 scenario.
    PingPong {
        /// Round trips.
        rounds: usize,
        /// Bytes per message.
        bytes: u64,
    },
    /// Compute / all-to-all burst / compute: one brake-accelerate cycle.
    Burst {
        /// Ops per compute phase per rank.
        compute: u64,
        /// Bytes per pairwise message.
        bytes: u64,
    },
    /// Pure imbalanced compute, no communication.
    UniformCompute {
        /// Ops per rank.
        ops: u64,
        /// Imbalance spread in `[0, 1)`.
        spread: f64,
    },
    /// A NAS Parallel Benchmark at the given scale.
    Nas {
        /// Which benchmark.
        bench: NasBench,
        /// Problem scale.
        scale: Scale,
    },
    /// The NAMD-like molecular-dynamics workload.
    Namd {
        /// Problem scale.
        scale: Scale,
    },
    /// ML data-parallel training: imbalanced compute + bucketed gradient
    /// allreduces per step (see [`production::ml_allreduce`]).
    MlAllreduce {
        /// Training steps.
        steps: usize,
        /// Gradient buckets per step.
        buckets: usize,
        /// Bytes per bucket.
        bucket_bytes: u64,
        /// Forward+backward ops per step per rank.
        compute: u64,
    },
    /// Parameter-server training: worker pushes incast at rank 0, then a
    /// parameter broadcast (see [`production::parameter_server`]).
    ParameterServer {
        /// Training steps.
        steps: usize,
        /// Gradient bytes per worker push.
        push_bytes: u64,
        /// Worker ops per step.
        compute: u64,
    },
    /// Microservice RPC fan-out with heavy-tailed service times and incast
    /// response waves (see [`production::rpc_fanout`]).
    RpcFanout {
        /// Requests (frontend rotates over ranks).
        requests: usize,
        /// Backends per request.
        fanout: usize,
        /// Request bytes.
        request_bytes: u64,
        /// Response bytes.
        response_bytes: u64,
        /// Median-ish service compute ops.
        service_ops: u64,
    },
    /// Gossip replication: seeded digest pushes plus periodic anti-entropy
    /// bulk exchanges (see [`production::gossip`]).
    Gossip {
        /// Gossip rounds.
        rounds: usize,
        /// Peers contacted per node per round.
        fanout: usize,
        /// Digest bytes.
        digest_bytes: u64,
    },
}

impl Workload {
    /// Builds one program per rank for an `n`-node cluster. `seed` drives
    /// every stochastic choice a generator makes (compute skew, peer
    /// sampling, service-time tails); generators without any randomness
    /// (the deterministic NAS/micro patterns) ignore it. Same
    /// `(workload, n, seed)` → bit-identical programs.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or a parameter is out of range for `n` (e.g. a
    /// fan-out of `n` or more).
    pub fn build(&self, n: usize, seed: u64) -> WorkloadSpec {
        match *self {
            Workload::PingPong { rounds, bytes } => micro::ping_pong(n, rounds, bytes),
            Workload::Burst { compute, bytes } => micro::burst(n, compute, bytes),
            Workload::UniformCompute { ops, spread } => micro::uniform_compute(n, ops, spread),
            Workload::Nas { bench, scale } => match bench {
                NasBench::Ep => nas::ep(n, scale),
                NasBench::Is => nas::is(n, scale),
                NasBench::Cg => nas::cg(n, scale),
                NasBench::Mg => nas::mg(n, scale),
                NasBench::Lu => nas::lu(n, scale),
                NasBench::Ft => nas::ft(n, scale),
            },
            Workload::Namd { scale } => namd::namd(n, scale),
            Workload::MlAllreduce {
                steps,
                buckets,
                bucket_bytes,
                compute,
            } => production::ml_allreduce(n, steps, buckets, bucket_bytes, compute, seed),
            Workload::ParameterServer {
                steps,
                push_bytes,
                compute,
            } => production::parameter_server(n, steps, push_bytes, compute, seed),
            Workload::RpcFanout {
                requests,
                fanout,
                request_bytes,
                response_bytes,
                service_ops,
            } => production::rpc_fanout(
                n,
                requests,
                fanout.min(n - 1),
                request_bytes,
                response_bytes,
                service_ops,
                seed,
            ),
            Workload::Gossip {
                rounds,
                fanout,
                digest_bytes,
            } => production::gossip(n, rounds, fanout.min(n - 1), digest_bytes, seed),
        }
    }

    /// The workload's display name (matches [`WorkloadSpec::name`] except
    /// for NAS, which reports the uppercase benchmark).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::PingPong { .. } => "ping-pong",
            Workload::Burst { .. } => "burst",
            Workload::UniformCompute { .. } => "compute",
            Workload::Nas { bench, .. } => bench.name(),
            Workload::Namd { .. } => "namd",
            Workload::MlAllreduce { .. } => "ml-allreduce",
            Workload::ParameterServer { .. } => "parameter-server",
            Workload::RpcFanout { .. } => "rpc-fanout",
            Workload::Gossip { .. } => "gossip",
        }
    }

    /// Parses a workload name into its default-parameter description —
    /// the single lookup the CLI and scenario files share. Accepted names:
    /// `ep is cg mg lu ft namd pingpong burst compute ml-allreduce
    /// parameter-server rpc-fanout gossip` (dashes and underscores are
    /// interchangeable).
    pub fn parse(name: &str) -> Option<Workload> {
        let name = name.to_ascii_lowercase().replace('_', "-");
        Some(match name.as_str() {
            "ep" => Workload::Nas {
                bench: NasBench::Ep,
                scale: Scale::Mini,
            },
            "is" => Workload::Nas {
                bench: NasBench::Is,
                scale: Scale::Mini,
            },
            "cg" => Workload::Nas {
                bench: NasBench::Cg,
                scale: Scale::Mini,
            },
            "mg" => Workload::Nas {
                bench: NasBench::Mg,
                scale: Scale::Mini,
            },
            "lu" => Workload::Nas {
                bench: NasBench::Lu,
                scale: Scale::Mini,
            },
            "ft" => Workload::Nas {
                bench: NasBench::Ft,
                scale: Scale::Mini,
            },
            "namd" => Workload::Namd { scale: Scale::Mini },
            "pingpong" | "ping-pong" => Workload::PingPong {
                rounds: 100,
                bytes: 64,
            },
            "burst" => Workload::Burst {
                compute: 100_000,
                bytes: 1024,
            },
            "compute" | "uniform-compute" => Workload::UniformCompute {
                ops: 1_000_000,
                spread: 0.1,
            },
            "ml-allreduce" | "allreduce" => Workload::MlAllreduce {
                steps: 4,
                buckets: 4,
                bucket_bytes: 262_144,
                compute: 400_000,
            },
            "parameter-server" => Workload::ParameterServer {
                steps: 4,
                push_bytes: 131_072,
                compute: 300_000,
            },
            "rpc-fanout" => Workload::RpcFanout {
                requests: 16,
                fanout: 3,
                request_bytes: 2_048,
                response_bytes: 16_384,
                service_ops: 50_000,
            },
            "gossip" => Workload::Gossip {
                rounds: 8,
                fanout: 2,
                digest_bytes: 1_024,
            },
            _ => return None,
        })
    }

    /// Applies a scale override where the workload has one (NAS and NAMD);
    /// other workloads are returned unchanged.
    #[must_use]
    pub fn with_scale(self, scale: Scale) -> Self {
        match self {
            Workload::Nas { bench, .. } => Workload::Nas { bench, scale },
            Workload::Namd { .. } => Workload::Namd { scale },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_round_trips_through_parse_and_build() {
        for name in [
            "ep",
            "is",
            "cg",
            "mg",
            "lu",
            "ft",
            "namd",
            "pingpong",
            "burst",
            "compute",
            "ml-allreduce",
            "parameter-server",
            "rpc_fanout",
            "gossip",
        ] {
            let w = Workload::parse(name)
                .unwrap_or_else(|| panic!("{name} must parse"))
                .with_scale(Scale::Tiny);
            let spec = w.build(4, 7);
            assert_eq!(spec.n_ranks(), 4, "{name}");
            assert!(spec.programs.iter().any(|p| !p.is_empty()), "{name}");
        }
        assert!(Workload::parse("no-such-workload").is_none());
    }

    #[test]
    fn seed_only_matters_for_seeded_generators() {
        let nas = Workload::parse("is").unwrap().with_scale(Scale::Tiny);
        let a = nas.build(4, 1);
        let b = nas.build(4, 2);
        for (x, y) in a.programs.iter().zip(&b.programs) {
            assert_eq!(x.ops(), y.ops(), "NAS ignores the seed");
        }
        let g = Workload::parse("gossip").unwrap();
        let ga = g.build(4, 1);
        let gb = g.build(4, 2);
        assert!(
            ga.programs
                .iter()
                .zip(&gb.programs)
                .any(|(x, y)| x.ops() != y.ops()),
            "gossip must consume the seed"
        );
    }

    #[test]
    fn fanout_is_clamped_to_cluster_size() {
        // Default fanout 3 on a 3-node cluster must clamp to 2, not panic.
        let spec = Workload::parse("rpc-fanout").unwrap().build(3, 1);
        assert_eq!(spec.n_ranks(), 3);
    }
}
