//! MPI-style multi-rank program construction.

use aqs_node::{Op, Program, Rank, RegionId, SendTarget, Tag};
use aqs_rng::SplitMix64;
use aqs_time::SimDuration;

/// Builds one program per rank, with MPI collectives implemented out of
/// point-to-point messages (LAM/MPI-style binomial trees, recursive
/// doubling and pairwise exchange).
///
/// Every point-to-point operation gets a fresh tag, so matching is
/// unambiguous regardless of delivery order. Sends in this model occupy the
/// sender only for NIC serialization (eager protocol), so the
/// "all ranks send, then all ranks receive" schedule used by the
/// collectives cannot deadlock.
///
/// # Examples
///
/// ```
/// use aqs_workloads::MpiBuilder;
///
/// let mut mpi = MpiBuilder::new(4);
/// mpi.compute_all(10_000);
/// mpi.allreduce(64, 100);
/// let programs = mpi.build();
/// assert_eq!(programs.len(), 4);
/// // Recursive doubling: log2(4) = 2 rounds = 2 sends per rank.
/// assert_eq!(programs[0].send_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct MpiBuilder {
    n: usize,
    ops: Vec<Vec<Op>>,
    next_tag: u32,
}

impl MpiBuilder {
    /// Creates a builder for `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 ranks, got {n}");
        Self {
            n,
            ops: vec![Vec::new(); n],
            next_tag: 0,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    fn fresh_tag(&mut self) -> Tag {
        let t = Tag::new(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Appends a raw op to one rank.
    pub fn push(&mut self, rank: usize, op: Op) {
        assert!(rank < self.n, "rank {rank} out of range");
        self.ops[rank].push(op);
    }

    /// Appends compute work to one rank.
    pub fn compute(&mut self, rank: usize, ops: u64) {
        self.push(rank, Op::Compute { ops });
    }

    /// Appends the same compute work to every rank.
    pub fn compute_all(&mut self, ops: u64) {
        for r in 0..self.n {
            self.compute(r, ops);
        }
    }

    /// Appends compute work with a deterministic per-rank imbalance of up
    /// to ±`spread` (fraction of `base`), seeded by `salt` so different
    /// phases get different skew.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not in `[0, 1)`.
    pub fn compute_all_imbalanced(&mut self, base: u64, spread: f64, salt: u64) {
        assert!(
            (0.0..1.0).contains(&spread),
            "spread must be in [0,1), got {spread}"
        );
        for r in 0..self.n {
            let mut h = SplitMix64::new(salt.wrapping_mul(0x9E37).wrapping_add(r as u64));
            let unit = (h.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let factor = 1.0 + spread * (2.0 * unit - 1.0);
            self.compute(r, (base as f64 * factor).round() as u64);
        }
    }

    /// Appends idle (sleep) time to every rank.
    pub fn idle_all(&mut self, dur: SimDuration) {
        for r in 0..self.n {
            self.push(r, Op::Idle { dur });
        }
    }

    /// Point-to-point message: `Send` on `src`, matching `Recv` on `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either rank is out of range.
    pub fn p2p(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.n && dst < self.n, "rank out of range");
        assert_ne!(src, dst, "p2p to self");
        let tag = self.fresh_tag();
        self.ops[src].push(Op::Send {
            dst: SendTarget::Rank(Rank::new(dst as u32)),
            bytes,
            tag,
        });
        self.ops[dst].push(Op::Recv {
            src: Some(Rank::new(src as u32)),
            tag,
        });
    }

    /// A fire-and-forget unicast: `Send` on `src` with **no matching
    /// receive** — models unsolicited background/housekeeping datagrams.
    pub fn datagram(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.n && dst < self.n, "rank out of range");
        assert_ne!(src, dst, "datagram to self");
        let tag = self.fresh_tag();
        self.ops[src].push(Op::Send {
            dst: SendTarget::Rank(Rank::new(dst as u32)),
            bytes,
            tag,
        });
    }

    /// Dissemination barrier: ⌈log₂ n⌉ rounds of ring-offset exchanges.
    pub fn barrier(&mut self) {
        let rounds = self.n.next_power_of_two().trailing_zeros();
        for r in 0..rounds {
            let dist = 1usize << r;
            let tag = self.fresh_tag();
            for i in 0..self.n {
                let to = (i + dist) % self.n;
                self.ops[i].push(Op::Send {
                    dst: SendTarget::Rank(Rank::new(to as u32)),
                    bytes: 64,
                    tag,
                });
            }
            for i in 0..self.n {
                let from = (i + self.n - dist) % self.n;
                self.ops[i].push(Op::Recv {
                    src: Some(Rank::new(from as u32)),
                    tag,
                });
            }
        }
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast(&mut self, root: usize, bytes: u64) {
        assert!(root < self.n, "root out of range");
        let rounds = self.n.next_power_of_two().trailing_zeros();
        for r in 0..rounds {
            let mask = 1usize << r;
            let tag = self.fresh_tag();
            for vr in 0..self.n {
                // vr: rank relative to root.
                let abs = (vr + root) % self.n;
                if vr < mask && vr + mask < self.n {
                    let peer = (vr + mask + root) % self.n;
                    self.ops[abs].push(Op::Send {
                        dst: SendTarget::Rank(Rank::new(peer as u32)),
                        bytes,
                        tag,
                    });
                } else if (mask..2 * mask).contains(&vr) {
                    let peer = (vr - mask + root) % self.n;
                    self.ops[abs].push(Op::Recv {
                        src: Some(Rank::new(peer as u32)),
                        tag,
                    });
                }
            }
        }
    }

    /// Binomial-tree reduction to `root`; each combining step costs
    /// `op_cost` compute operations on the receiver.
    pub fn reduce(&mut self, root: usize, bytes: u64, op_cost: u64) {
        assert!(root < self.n, "root out of range");
        let rounds = self.n.next_power_of_two().trailing_zeros();
        for r in 0..rounds {
            let step = 1usize << (r + 1);
            let half = 1usize << r;
            let tag = self.fresh_tag();
            for vr in 0..self.n {
                let abs = (vr + root) % self.n;
                if vr % step == half {
                    let peer = (vr - half + root) % self.n;
                    self.ops[abs].push(Op::Send {
                        dst: SendTarget::Rank(Rank::new(peer as u32)),
                        bytes,
                        tag,
                    });
                } else if vr % step == 0 && vr + half < self.n {
                    let peer = (vr + half + root) % self.n;
                    self.ops[abs].push(Op::Recv {
                        src: Some(Rank::new(peer as u32)),
                        tag,
                    });
                    if op_cost > 0 {
                        self.ops[abs].push(Op::Compute { ops: op_cost });
                    }
                }
            }
        }
    }

    /// Allreduce: recursive doubling when `n` is a power of two (every rank
    /// exchanges with `i XOR 2^r` each round), otherwise reduce + bcast.
    pub fn allreduce(&mut self, bytes: u64, op_cost: u64) {
        if self.n.is_power_of_two() {
            let rounds = self.n.trailing_zeros();
            for r in 0..rounds {
                let mask = 1usize << r;
                let tag = self.fresh_tag();
                for i in 0..self.n {
                    let peer = i ^ mask;
                    self.ops[i].push(Op::Send {
                        dst: SendTarget::Rank(Rank::new(peer as u32)),
                        bytes,
                        tag,
                    });
                }
                for i in 0..self.n {
                    let peer = i ^ mask;
                    self.ops[i].push(Op::Recv {
                        src: Some(Rank::new(peer as u32)),
                        tag,
                    });
                    if op_cost > 0 {
                        self.ops[i].push(Op::Compute { ops: op_cost });
                    }
                }
            }
        } else {
            self.reduce(0, bytes, op_cost);
            self.bcast(0, bytes);
        }
    }

    /// All-to-all personalized exchange of `bytes` per pair: pairwise XOR
    /// schedule for power-of-two rank counts, shifted ring otherwise. This
    /// is the operation whose dependency chains make IS the paper's
    /// worst-case accuracy benchmark.
    pub fn alltoall(&mut self, bytes: u64) {
        for round in 1..self.n {
            let tag = self.fresh_tag();
            if self.n.is_power_of_two() {
                for i in 0..self.n {
                    let peer = i ^ round;
                    self.ops[i].push(Op::Send {
                        dst: SendTarget::Rank(Rank::new(peer as u32)),
                        bytes,
                        tag,
                    });
                }
                for i in 0..self.n {
                    let peer = i ^ round;
                    self.ops[i].push(Op::Recv {
                        src: Some(Rank::new(peer as u32)),
                        tag,
                    });
                }
            } else {
                for i in 0..self.n {
                    let to = (i + round) % self.n;
                    self.ops[i].push(Op::Send {
                        dst: SendTarget::Rank(Rank::new(to as u32)),
                        bytes,
                        tag,
                    });
                }
                for i in 0..self.n {
                    let from = (i + self.n - round) % self.n;
                    self.ops[i].push(Op::Recv {
                        src: Some(Rank::new(from as u32)),
                        tag,
                    });
                }
            }
        }
    }

    /// Simultaneous exchange with neighbours at the given ring `distances`
    /// (both directions), `bytes` each — MG's short/long structured pattern
    /// and NAMD's spatial neighbour lists.
    pub fn neighbor_exchange(&mut self, distances: &[usize], bytes: u64) {
        for &d in distances {
            assert!(
                d > 0 && d < self.n,
                "distance {d} invalid for {} ranks",
                self.n
            );
            let tag_fwd = self.fresh_tag();
            let tag_bwd = self.fresh_tag();
            for i in 0..self.n {
                let fwd = (i + d) % self.n;
                let bwd = (i + self.n - d) % self.n;
                self.ops[i].push(Op::Send {
                    dst: SendTarget::Rank(Rank::new(fwd as u32)),
                    bytes,
                    tag: tag_fwd,
                });
                self.ops[i].push(Op::Send {
                    dst: SendTarget::Rank(Rank::new(bwd as u32)),
                    bytes,
                    tag: tag_bwd,
                });
            }
            for i in 0..self.n {
                let from_bwd = (i + self.n - d) % self.n;
                let from_fwd = (i + d) % self.n;
                self.ops[i].push(Op::Recv {
                    src: Some(Rank::new(from_bwd as u32)),
                    tag: tag_fwd,
                });
                self.ops[i].push(Op::Recv {
                    src: Some(Rank::new(from_fwd as u32)),
                    tag: tag_bwd,
                });
            }
        }
    }

    /// One round of directed point-to-point traffic: **all sends are
    /// scheduled before any receive**, each edge on its own fresh tag, so
    /// the round cannot deadlock under the eager send model no matter how
    /// the edges overlap. Edges are `(src, dst, bytes)`; duplicate edges
    /// are fine (each gets its own tag).
    ///
    /// This is the primitive under the gossip and incast generators: build
    /// the round's edge list any way you like (seeded peer sampling,
    /// fan-in, fan-out), then commit it atomically.
    ///
    /// # Panics
    ///
    /// Panics if any edge is out of range or a self-loop.
    pub fn exchange_round(&mut self, edges: &[(usize, usize, u64)]) {
        let mut recvs = Vec::with_capacity(edges.len());
        for &(src, dst, bytes) in edges {
            assert!(src < self.n && dst < self.n, "rank out of range");
            assert_ne!(src, dst, "exchange edge to self");
            let tag = self.fresh_tag();
            self.ops[src].push(Op::Send {
                dst: SendTarget::Rank(Rank::new(dst as u32)),
                bytes,
                tag,
            });
            recvs.push((dst, src, tag));
        }
        for (dst, src, tag) in recvs {
            self.ops[dst].push(Op::Recv {
                src: Some(Rank::new(src as u32)),
                tag,
            });
        }
    }

    /// Scatter-gather RPC: `root` fans a `req_bytes` request out to every
    /// target, each target receives it, runs its `ops` of service compute,
    /// and answers with `resp_bytes`; `root` then collects all responses —
    /// the classic microservice fan-out whose response wave is an incast
    /// at the root. Deadlock-free: the root's sends are all scheduled
    /// before its first receive.
    ///
    /// # Panics
    ///
    /// Panics if a target equals `root` or is out of range.
    pub fn rpc_fanout(
        &mut self,
        root: usize,
        targets: &[(usize, u64)],
        req_bytes: u64,
        resp_bytes: u64,
    ) {
        assert!(root < self.n, "root out of range");
        let mut replies = Vec::with_capacity(targets.len());
        for &(t, ops) in targets {
            assert!(t < self.n, "target out of range");
            assert_ne!(t, root, "rpc target is the root");
            let req = self.fresh_tag();
            let resp = self.fresh_tag();
            self.ops[root].push(Op::Send {
                dst: SendTarget::Rank(Rank::new(t as u32)),
                bytes: req_bytes,
                tag: req,
            });
            self.ops[t].push(Op::Recv {
                src: Some(Rank::new(root as u32)),
                tag: req,
            });
            if ops > 0 {
                self.ops[t].push(Op::Compute { ops });
            }
            self.ops[t].push(Op::Send {
                dst: SendTarget::Rank(Rank::new(root as u32)),
                bytes: resp_bytes,
                tag: resp,
            });
            replies.push((t, resp));
        }
        for (t, resp) in replies {
            self.ops[root].push(Op::Recv {
                src: Some(Rank::new(t as u32)),
                tag: resp,
            });
        }
    }

    /// Marks the start of a timed region on every rank.
    pub fn region_start_all(&mut self, region: RegionId) {
        for r in 0..self.n {
            self.push(r, Op::RegionStart(region));
        }
    }

    /// Marks the end of a timed region on every rank.
    pub fn region_end_all(&mut self, region: RegionId) {
        for r in 0..self.n {
            self.push(r, Op::RegionEnd(region));
        }
    }

    /// Finishes into one [`Program`] per rank.
    pub fn build(self) -> Vec<Program> {
        self.ops
            .into_iter()
            .enumerate()
            .map(|(i, ops)| Program::new(Rank::new(i as u32), ops))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sanity harness: count sends == count recvs per tag across ranks.
    fn check_matched(programs: &[Program], allow_unmatched_sends: bool) {
        use std::collections::HashMap;
        let mut sends: HashMap<(u32, u32, u32), usize> = HashMap::new(); // (src,dst,tag)
        let mut recvs: HashMap<(u32, u32, u32), usize> = HashMap::new();
        for p in programs {
            for op in p.ops() {
                match *op {
                    Op::Send {
                        dst: SendTarget::Rank(d),
                        tag,
                        ..
                    } => {
                        *sends
                            .entry((p.rank().as_u32(), d.as_u32(), tag.as_u32()))
                            .or_default() += 1;
                    }
                    Op::Recv { src: Some(s), tag } => {
                        *recvs
                            .entry((s.as_u32(), p.rank().as_u32(), tag.as_u32()))
                            .or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        for (k, &c) in &recvs {
            assert_eq!(sends.get(k), Some(&c), "recv without matching send: {k:?}");
        }
        if !allow_unmatched_sends {
            for (k, &c) in &sends {
                assert_eq!(recvs.get(k), Some(&c), "send without matching recv: {k:?}");
            }
        }
    }

    #[test]
    fn p2p_is_matched() {
        let mut m = MpiBuilder::new(3);
        m.p2p(0, 2, 100);
        m.p2p(2, 1, 50);
        let ps = m.build();
        check_matched(&ps, false);
        assert_eq!(ps[0].send_count(), 1);
        assert_eq!(ps[2].recv_count(), 1);
    }

    #[test]
    fn barrier_is_matched_for_many_sizes() {
        for n in [2usize, 3, 4, 5, 8, 13, 64] {
            let mut m = MpiBuilder::new(n);
            m.barrier();
            check_matched(&m.build(), false);
        }
    }

    #[test]
    fn bcast_reaches_every_rank() {
        for n in [2usize, 3, 4, 7, 8, 64] {
            for root in [0usize, 1, n - 1] {
                let mut m = MpiBuilder::new(n);
                m.bcast(root, 1000);
                let ps = m.build();
                check_matched(&ps, false);
                // Everyone except the root receives exactly once in total.
                for (i, p) in ps.iter().enumerate() {
                    let expected = usize::from(i != root);
                    assert_eq!(p.recv_count(), expected, "n={n} root={root} rank={i}");
                }
            }
        }
    }

    #[test]
    fn reduce_collects_to_root() {
        for n in [2usize, 4, 6, 8] {
            let mut m = MpiBuilder::new(n);
            m.reduce(0, 64, 10);
            let ps = m.build();
            check_matched(&ps, false);
            // Every non-root rank sends exactly once in a binomial reduce.
            let total_sends: usize = ps.iter().map(|p| p.send_count()).sum();
            assert_eq!(total_sends, n - 1);
        }
    }

    #[test]
    fn allreduce_power_of_two_is_symmetric() {
        let mut m = MpiBuilder::new(8);
        m.allreduce(64, 10);
        let ps = m.build();
        check_matched(&ps, false);
        for p in &ps {
            assert_eq!(p.send_count(), 3); // log2(8) rounds
            assert_eq!(p.recv_count(), 3);
        }
    }

    #[test]
    fn allreduce_non_power_of_two_falls_back() {
        let mut m = MpiBuilder::new(6);
        m.allreduce(64, 10);
        check_matched(&m.build(), false);
    }

    #[test]
    fn alltoall_sends_to_everyone() {
        for n in [2usize, 4, 8, 5] {
            let mut m = MpiBuilder::new(n);
            m.alltoall(9000);
            let ps = m.build();
            check_matched(&ps, false);
            for p in &ps {
                assert_eq!(p.send_count(), n - 1);
                assert_eq!(p.recv_count(), n - 1);
            }
        }
    }

    #[test]
    fn neighbor_exchange_matched() {
        let mut m = MpiBuilder::new(8);
        m.neighbor_exchange(&[1, 2, 4], 500);
        let ps = m.build();
        check_matched(&ps, false);
        for p in &ps {
            assert_eq!(p.send_count(), 6);
            assert_eq!(p.recv_count(), 6);
        }
    }

    #[test]
    fn datagram_has_no_recv() {
        let mut m = MpiBuilder::new(2);
        m.datagram(0, 1, 64);
        let ps = m.build();
        check_matched(&ps, true);
        assert_eq!(ps[1].recv_count(), 0);
    }

    #[test]
    fn imbalance_is_deterministic_and_bounded() {
        let mut a = MpiBuilder::new(4);
        a.compute_all_imbalanced(1_000_000, 0.2, 7);
        let mut b = MpiBuilder::new(4);
        b.compute_all_imbalanced(1_000_000, 0.2, 7);
        let pa = a.build();
        let pb = b.build();
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.total_compute_ops(), y.total_compute_ops());
            let ops = x.total_compute_ops();
            assert!(
                (800_000..=1_200_000).contains(&ops),
                "ops {ops} outside ±20%"
            );
        }
        // Different salt → different skew.
        let mut c = MpiBuilder::new(4);
        c.compute_all_imbalanced(1_000_000, 0.2, 8);
        let pc = c.build();
        assert!(pa
            .iter()
            .zip(&pc)
            .any(|(x, y)| x.total_compute_ops() != y.total_compute_ops()));
    }

    #[test]
    fn regions_wrap_all_ranks() {
        let mut m = MpiBuilder::new(2);
        m.region_start_all(RegionId::KERNEL);
        m.compute_all(10);
        m.region_end_all(RegionId::KERNEL);
        for p in m.build() {
            assert!(matches!(p.ops()[0], Op::RegionStart(_)));
            assert!(matches!(p.ops()[2], Op::RegionEnd(_)));
        }
    }

    #[test]
    #[should_panic(expected = "p2p to self")]
    fn p2p_self_rejected() {
        let mut m = MpiBuilder::new(2);
        m.p2p(1, 1, 10);
    }

    #[test]
    #[should_panic(expected = "distance 0 invalid")]
    fn zero_distance_rejected() {
        let mut m = MpiBuilder::new(4);
        m.neighbor_exchange(&[0], 10);
    }
}
