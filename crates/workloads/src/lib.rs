//! Synthetic workloads reproducing the communication structure of the
//! paper's benchmarks.
//!
//! The paper evaluates five NAS Parallel Benchmarks (EP, IS, CG, MG, LU,
//! class A over LAM/MPI) and NAMD (apoa1). We cannot run the real binaries
//! inside a full-system simulator, but the synchronization technique is
//! only sensitive to the *communication/computation structure* — message
//! sizes, dependency chains, phase lengths — so each benchmark is
//! regenerated as a node-program workload with its documented pattern:
//!
//! | workload | pattern (per the NAS/NAMD docs & the paper §4) |
//! |---|---|
//! | EP  | embarrassingly parallel compute, initial broadcast + final reduction |
//! | IS  | repeated small `allreduce` + large `alltoall` (fine-grain chains) |
//! | CG  | irregular long-distance pairwise exchange + reductions |
//! | MG  | short+long distance structured exchanges over grid levels |
//! | LU  | pipelined wavefront of many small messages, limited parallelism |
//! | NAMD| continuous neighbour exchange, no quiet gaps, per-step reduction |
//!
//! Programs are built through [`MpiBuilder`], which implements the MPI
//! collectives (barrier, broadcast, reduce, allreduce, alltoall) out of
//! point-to-point messages the way LAM/MPI does — so the packet-level
//! behaviour (and therefore straggler formation) is realistic.
//!
//! # Examples
//!
//! ```
//! use aqs_workloads::{nas, Scale};
//!
//! let spec = nas::is(4, Scale::Tiny);
//! assert_eq!(spec.programs.len(), 4);
//! assert!(spec.programs.iter().all(|p| !p.is_empty()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
mod micro;
mod mpi;
pub mod namd;
pub mod nas;
pub mod production;
mod spec;
mod workload;

pub use background::with_background_traffic;
pub use micro::{burst, ping_pong, uniform_compute};
pub use mpi::MpiBuilder;
pub use production::{gossip, ml_allreduce, parameter_server, rpc_fanout, rpc_incast};
pub use spec::{MetricKind, Scale, WorkloadSpec};
pub use workload::{NasBench, Workload};
