//! Workload descriptions: programs plus how to read their metric.

use aqs_node::Program;
use serde::{Deserialize, Serialize};

/// How a workload's self-reported performance metric is computed from a
/// run (the paper derives accuracy from "the application-specific metric
/// reported by the benchmarks themselves", §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// NAS style: millions of operations per second over the timed kernel
    /// region — total retired ops divided by the cluster-wide kernel span.
    Mops,
    /// NAMD style: wall-clock (simulated) time of the timed kernel region.
    KernelTime,
}

/// Problem scale of a synthetic workload.
///
/// The real class-A benchmarks run for minutes of target time; simulating
/// minutes at a 1 µs ground-truth quantum is wasteful when the paper's
/// phenomena appear identically at shorter spans. `Mini` (the figures'
/// scale) gives tens of milliseconds of simulated time per run; `Tiny` is
/// for unit tests and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Unit-test scale (≈ 1 ms simulated).
    Tiny,
    /// Figure scale (≈ tens of ms simulated).
    #[default]
    Mini,
    /// Extended scale (≈ hundreds of ms simulated) for scale-out studies.
    Full,
}

impl Scale {
    /// Multiplier applied to iteration counts.
    pub fn iters(self, base: usize) -> usize {
        match self {
            Scale::Tiny => (base / 4).max(2),
            Scale::Mini => base,
            Scale::Full => base * 2,
        }
    }

    /// Multiplier applied to per-phase compute amounts.
    pub fn ops(self, base: u64) -> u64 {
        match self {
            Scale::Tiny => (base / 16).max(1),
            Scale::Mini => base,
            Scale::Full => base * 4,
        }
    }
}

/// A runnable workload: one program per node plus its metric convention.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name ("EP", "IS", "NAMD", …).
    pub name: String,
    /// One program per node; program `i` must be for rank `i`.
    pub programs: Vec<Program>,
    /// How to compute the benchmark's self-reported metric.
    pub metric: MetricKind,
}

impl WorkloadSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if program `i` is not for rank `i` or fewer than two programs
    /// are given.
    pub fn new(name: impl Into<String>, programs: Vec<Program>, metric: MetricKind) -> Self {
        assert!(programs.len() >= 2, "a workload needs at least 2 ranks");
        for (i, p) in programs.iter().enumerate() {
            assert_eq!(p.rank().index(), i, "program {i} is for the wrong rank");
        }
        Self {
            name: name.into(),
            programs,
            metric,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.programs.len()
    }

    /// Total compute operations across all ranks (MOPS numerator).
    pub fn total_ops(&self) -> u64 {
        self.programs.iter().map(|p| p.total_compute_ops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_node::{ProgramBuilder, Rank};

    #[test]
    fn scale_multipliers() {
        assert_eq!(Scale::Mini.iters(12), 12);
        assert_eq!(Scale::Tiny.iters(12), 3);
        assert_eq!(Scale::Full.iters(12), 24);
        assert_eq!(Scale::Tiny.ops(1600), 100);
        assert_eq!(Scale::Full.ops(100), 400);
        assert_eq!(Scale::Tiny.ops(4), 1);
    }

    #[test]
    fn spec_validates_ranks() {
        let p0 = ProgramBuilder::new(Rank::new(0)).compute(1).build();
        let p1 = ProgramBuilder::new(Rank::new(1)).compute(2).build();
        let spec = WorkloadSpec::new("t", vec![p0, p1], MetricKind::Mops);
        assert_eq!(spec.n_ranks(), 2);
        assert_eq!(spec.total_ops(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong rank")]
    fn wrong_rank_order_rejected() {
        let p0 = ProgramBuilder::new(Rank::new(1)).compute(1).build();
        let p1 = ProgramBuilder::new(Rank::new(0)).compute(1).build();
        let _ = WorkloadSpec::new("t", vec![p0, p1], MetricKind::Mops);
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn single_rank_rejected() {
        let p0 = ProgramBuilder::new(Rank::new(0)).compute(1).build();
        let _ = WorkloadSpec::new("t", vec![p0], MetricKind::Mops);
    }
}
