//! NAS-Parallel-Benchmark-like workload generators.
//!
//! Each generator reproduces the communication/computation structure the
//! NAS suite documents for its benchmark (and that the paper's §4
//! summarizes), scaled down so a ground-truth (1 µs quantum) run finishes
//! in seconds of host time — see DESIGN.md for the substitution argument.
//! The problem size is fixed while ranks vary (strong scaling, as in the
//! paper's 2/4/8-node sweeps), so per-rank work shrinks as `1/n`.
//!
//! All five report [`MetricKind::Mops`] over their timed kernel, mirroring
//! NAS' "MOPS total" output, and the paper aggregates them by harmonic
//! mean.

use crate::mpi::MpiBuilder;
use crate::spec::{MetricKind, Scale, WorkloadSpec};
use aqs_node::RegionId;

fn per_rank(total: u64, n: usize) -> u64 {
    (total / n as u64).max(1)
}

/// EP — Embarrassingly Parallel.
///
/// Pseudorandom-number statistics with essentially no communication: an
/// initial parameter broadcast, sixteen independent compute blocks (with a
/// small deterministic imbalance), and a final four-value reduction.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::nas::ep(8, aqs_workloads::Scale::Tiny);
/// assert_eq!(spec.name, "EP");
/// ```
pub fn ep(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let blocks = scale.iters(16);
    let block_ops = per_rank(scale.ops(96_000_000), n); // ~1.5G ops total at Mini
    m.bcast(0, 1024);
    m.region_start_all(RegionId::KERNEL);
    for b in 0..blocks {
        m.compute_all_imbalanced(block_ops, 0.04, 100 + b as u64);
    }
    m.allreduce(64, 400);
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("EP", m.build(), MetricKind::Mops)
}

/// IS — Integer Sort.
///
/// The paper's worst-case accuracy benchmark: every iteration is a small
/// `allreduce` (bucket counts) followed by a large `alltoall` (key
/// redistribution), creating long chains of packet dependences that dilate
/// dramatically under long quanta.
pub fn is(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let iters = scale.iters(8);
    let iter_ops = per_rank(scale.ops(8_000_000), n);
    let total_data = scale.ops(2_000_000); // bytes redistributed per iteration
    let per_pair = (total_data / (n as u64 * n as u64)).max(256);
    // Untimed key generation + local work: the bulk of IS's execution (the
    // NAS timer only wraps the ranking/exchange kernel).
    m.compute_all_imbalanced(per_rank(scale.ops(2_400_000_000), n), 0.02, 7);
    m.region_start_all(RegionId::KERNEL);
    for i in 0..iters {
        m.compute_all_imbalanced(iter_ops, 0.03, 200 + i as u64);
        m.allreduce(1024, 200);
        m.alltoall(per_pair);
    }
    m.region_end_all(RegionId::KERNEL);
    // Untimed full verification.
    m.compute_all(per_rank(scale.ops(600_000_000), n));
    WorkloadSpec::new("IS", m.build(), MetricKind::Mops)
}

/// CG — Conjugate Gradient.
///
/// Irregular long-distance communication: each of 15 iterations exchanges
/// vector halves with the transpose partner (ring distance `n/2`) and runs
/// two scalar reductions (the dot products).
pub fn cg(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let iters = scale.iters(15);
    let iter_ops = per_rank(scale.ops(192_000_000), n);
    let exchange_bytes = (scale.ops(192_000) / n as u64).max(256);
    m.bcast(0, 4096);
    m.region_start_all(RegionId::KERNEL);
    for i in 0..iters {
        m.compute_all_imbalanced(iter_ops, 0.05, 300 + i as u64);
        // Long-distance transpose exchange (both directions).
        let dist = (n / 2).max(1);
        m.neighbor_exchange(&[dist], exchange_bytes);
        m.allreduce(64, 100);
        m.allreduce(64, 100);
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("CG", m.build(), MetricKind::Mops)
}

/// MG — Multi-Grid.
///
/// Structured short *and* long distance communication: each V-cycle walks
/// four grid levels, exchanging halo data with neighbours at ring distance
/// `2^level` with message sizes halving per level.
pub fn mg(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let cycles = scale.iters(8);
    for c in 0..cycles {
        if c == 0 {
            m.bcast(0, 2048);
            m.region_start_all(RegionId::KERNEL);
        }
        for level in 0..4u32 {
            let ops = per_rank(scale.ops(96_000_000) >> level, n);
            m.compute_all_imbalanced(ops, 0.04, 400 + (c * 4 + level as usize) as u64);
            let dist = (1usize << level) % n;
            if dist > 0 {
                let bytes = ((scale.ops(96_000) >> level) / n as u64).max(256);
                m.neighbor_exchange(&[dist], bytes);
            }
        }
        m.allreduce(64, 100);
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("MG", m.build(), MetricKind::Mops)
}

/// LU — Lower-Upper Gauss-Seidel.
///
/// Pipelined wavefront: each sweep threads a chain of small messages
/// through every rank in order (limited parallelism; sensitive to network
/// latency, as the paper notes).
pub fn lu(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let iters = scale.iters(8);
    let stage_ops = per_rank(scale.ops(20_000_000), n);
    let msg = 3000;
    m.bcast(0, 2048);
    m.region_start_all(RegionId::KERNEL);
    for _ in 0..iters {
        // Downward sweep: 0 → n-1.
        for k in 0..n - 1 {
            m.compute(k, stage_ops);
            m.p2p(k, k + 1, msg);
        }
        m.compute(n - 1, stage_ops);
        // Upward sweep: n-1 → 0.
        for k in (1..n).rev() {
            m.compute(k, stage_ops);
            m.p2p(k, k - 1, msg);
        }
        m.compute(0, stage_ops);
    }
    m.allreduce(64, 100);
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("LU", m.build(), MetricKind::Mops)
}

/// FT — Fourier Transform (beyond the paper's selection).
///
/// The paper runs the five NAS members that execute on all of its node
/// counts; FT is the classic *bandwidth-bound* `alltoall` benchmark (3-D
/// FFT transposes move the whole dataset every iteration, in contrast to
/// IS' small-message chains). Included here because it stresses the NIC
/// serialization path rather than the latency path.
pub fn ft(n: usize, scale: Scale) -> WorkloadSpec {
    let mut m = MpiBuilder::new(n);
    let iters = scale.iters(6);
    let iter_ops = per_rank(scale.ops(120_000_000), n);
    // The whole (scaled) dataset is transposed every iteration.
    let dataset = scale.ops(8_000_000);
    let per_pair = (dataset / (n as u64 * n as u64)).max(1024);
    m.bcast(0, 4096);
    m.region_start_all(RegionId::KERNEL);
    for i in 0..iters {
        m.compute_all_imbalanced(iter_ops, 0.03, 600 + i as u64);
        // Two transposes per 3-D FFT step.
        m.alltoall(per_pair);
        m.compute_all_imbalanced(iter_ops / 2, 0.03, 700 + i as u64);
        m.alltoall(per_pair);
    }
    m.allreduce(64, 100); // checksum
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("FT", m.build(), MetricKind::Mops)
}

/// The paper's five benchmarks, in its order.
pub fn all(n: usize, scale: Scale) -> Vec<WorkloadSpec> {
    vec![
        ep(n, scale),
        is(n, scale),
        cg(n, scale),
        mg(n, scale),
        lu(n, scale),
    ]
}

/// All six generators (the paper's five plus FT).
pub fn all_extended(n: usize, scale: Scale) -> Vec<WorkloadSpec> {
    let mut v = all(n, scale);
    v.push(ft(n, scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_build_for_paper_node_counts() {
        for n in [2usize, 4, 8, 64] {
            for spec in all(n, Scale::Tiny) {
                assert_eq!(spec.n_ranks(), n, "{}", spec.name);
                assert!(spec.total_ops() > 0, "{}", spec.name);
                assert_eq!(spec.metric, MetricKind::Mops);
            }
        }
    }

    #[test]
    fn ep_is_communication_light() {
        let ep = ep(8, Scale::Mini);
        let is = is(8, Scale::Mini);
        let ep_sends: usize = ep.programs.iter().map(|p| p.send_count()).sum();
        let is_sends: usize = is.programs.iter().map(|p| p.send_count()).sum();
        assert!(
            ep_sends * 10 < is_sends,
            "EP ({ep_sends} sends) should be far lighter than IS ({is_sends})"
        );
    }

    #[test]
    fn strong_scaling_divides_work() {
        let small = ep(2, Scale::Mini).total_ops();
        let large = ep(8, Scale::Mini).total_ops();
        // Same total problem (within imbalance/rounding noise).
        let ratio = small as f64 / large as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "total ops should not scale with n: {ratio}"
        );
    }

    #[test]
    fn lu_is_a_chain() {
        let spec = lu(4, Scale::Tiny);
        // Interior ranks send at least twice per iteration (down + up
        // sweeps), plus their share of the broadcast/reduction trees.
        let iters = Scale::Tiny.iters(8);
        assert!(spec.programs[1].send_count() >= 2 * iters);
        // Rank 0 only participates in the allreduce besides the sweeps.
        assert!(spec.programs[0].send_count() >= iters);
    }

    #[test]
    fn mg_message_sizes_halve_with_level() {
        // Structural smoke test: MG must touch multiple distances.
        let spec = mg(8, Scale::Tiny);
        assert!(spec.programs[0].send_count() > 10);
    }

    #[test]
    fn ft_moves_more_bytes_than_is() {
        let bytes_of = |spec: &WorkloadSpec| -> u64 {
            spec.programs
                .iter()
                .flat_map(|p| p.ops())
                .map(|op| match op {
                    aqs_node::Op::Send { bytes, .. } => *bytes,
                    _ => 0,
                })
                .sum()
        };
        let ft = ft(8, Scale::Mini);
        let is = is(8, Scale::Mini);
        assert!(
            bytes_of(&ft) > 2 * bytes_of(&is),
            "FT must be bandwidth-bound relative to IS"
        );
        assert_eq!(all_extended(8, Scale::Tiny).len(), 6);
    }

    #[test]
    fn scales_order_sizes() {
        let tiny = is(4, Scale::Tiny).total_ops();
        let mini = is(4, Scale::Mini).total_ops();
        let full = is(4, Scale::Full).total_ops();
        assert!(tiny < mini && mini < full);
    }
}
