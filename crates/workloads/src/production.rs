//! Production-shaped traffic: the patterns the paper never evaluated.
//!
//! The paper's benchmarks are HPC kernels (NAS, NAMD). The ROADMAP's next
//! tier asks how the adaptive quantum behaves under *datacenter* traffic —
//! ML training collectives, microservice RPC fan-out with incast, and
//! gossip replication. Each generator here reproduces the documented
//! communication shape of its production counterpart, seeded so peer
//! selection and service-time skew replay bit-identically, and built
//! strictly round-based (**all sends scheduled before any receive** within
//! a round) so no pattern can deadlock under the eager send model.

use crate::mpi::MpiBuilder;
use crate::spec::{MetricKind, WorkloadSpec};
use aqs_node::RegionId;
use aqs_rng::SplitMix64;

/// ML data-parallel training: per step, imbalanced forward/backward
/// compute followed by `buckets` gradient-bucket allreduces (the
/// DDP/Horovod bucketed pattern — overlapping many mid-size allreduces,
/// not one giant one). `seed` drives the per-step compute skew (stragglers
/// from data loading and kernel jitter).
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::ml_allreduce(4, 2, 2, 262_144, 100_000, 7);
/// assert_eq!(spec.name, "ml-allreduce");
/// ```
pub fn ml_allreduce(
    n: usize,
    steps: usize,
    buckets: usize,
    bucket_bytes: u64,
    compute: u64,
    seed: u64,
) -> WorkloadSpec {
    assert!(
        steps > 0 && buckets > 0,
        "steps and buckets must be nonzero"
    );
    let mut m = MpiBuilder::new(n);
    // Parameter broadcast before the timed region (rank 0 holds the
    // initial model).
    m.bcast(0, bucket_bytes * buckets as u64);
    m.region_start_all(RegionId::KERNEL);
    for s in 0..steps {
        // Forward + backward with per-rank skew reseeded every step.
        m.compute_all_imbalanced(compute, 0.08, seed ^ (s as u64).wrapping_mul(0x5851));
        // Bucketed gradient exchange; a small combine cost per round.
        for _ in 0..buckets {
            m.allreduce(bucket_bytes, 64);
        }
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("ml-allreduce", m.build(), MetricKind::KernelTime)
}

/// Parameter-server training: workers (ranks `1..n`) push `push_bytes` of
/// gradients at rank 0 — a pure incast — the server applies the update,
/// then broadcasts fresh parameters. `seed` skews worker compute.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::parameter_server(4, 3, 131_072, 50_000, 9);
/// assert_eq!(spec.n_ranks(), 4);
/// ```
pub fn parameter_server(
    n: usize,
    steps: usize,
    push_bytes: u64,
    compute: u64,
    seed: u64,
) -> WorkloadSpec {
    assert!(steps > 0, "steps must be nonzero");
    let mut m = MpiBuilder::new(n);
    m.bcast(0, push_bytes);
    m.region_start_all(RegionId::KERNEL);
    for s in 0..steps {
        m.compute_all_imbalanced(compute, 0.1, seed ^ (s as u64).wrapping_mul(0x2545));
        // Every worker pushes at the server in the same round: incast.
        let edges: Vec<(usize, usize, u64)> = (1..n).map(|w| (w, 0usize, push_bytes)).collect();
        m.exchange_round(&edges);
        // Server-side update, then fresh parameters to everyone.
        m.compute(0, compute / 2);
        m.bcast(0, push_bytes);
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("parameter-server", m.build(), MetricKind::KernelTime)
}

/// Microservice RPC fan-out: per request, a rotating frontend fans out to
/// `fanout` seeded backends, each runs heavy-tailed service compute (a
/// deterministic Pareto-ish draw: most calls cheap, a few 10× — the tail
/// that drives datacenter latency), and the response wave converges on the
/// frontend as an incast.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::rpc_fanout(8, 4, 3, 2_048, 16_384, 50_000, 11);
/// assert_eq!(spec.name, "rpc-fanout");
/// ```
pub fn rpc_fanout(
    n: usize,
    requests: usize,
    fanout: usize,
    request_bytes: u64,
    response_bytes: u64,
    service_ops: u64,
    seed: u64,
) -> WorkloadSpec {
    assert!(requests > 0, "requests must be nonzero");
    assert!(
        fanout >= 1 && fanout < n,
        "fanout must be in [1, n), got {fanout} for n={n}"
    );
    let mut m = MpiBuilder::new(n);
    let mut rng = SplitMix64::new(seed ^ 0x0052_5043); // "RPC"
    m.region_start_all(RegionId::KERNEL);
    for r in 0..requests {
        let front = r % n;
        // Sample `fanout` distinct backends != front.
        let mut targets: Vec<(usize, u64)> = Vec::with_capacity(fanout);
        while targets.len() < fanout {
            let b = (rng.next_u64() % n as u64) as usize;
            if b != front && !targets.iter().any(|&(t, _)| t == b) {
                // Heavy tail: 1 in 8 calls is a 10× outlier.
                let ops = if rng.next_u64().is_multiple_of(8) {
                    service_ops * 10
                } else {
                    service_ops / 2 + rng.next_u64() % service_ops.max(1)
                };
                targets.push((b, ops));
            }
        }
        m.rpc_fanout(front, &targets, request_bytes, response_bytes);
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("rpc-fanout", m.build(), MetricKind::KernelTime)
}

/// [`rpc_fanout`] with a fixed set of frontends issuing sequential request
/// *waves*: frontend `f ∈ [0, fronts)` fans out to `fanout` fresh seeded
/// backends, collects every response, and only then issues its next
/// request, `waves` times over.
///
/// The recv-all between waves is the point: peak in-flight traffic is one
/// request per frontend regardless of `waves`, so doubling `waves` doubles
/// simulated work and packet count *without* widening the working set.
/// That makes this the steady-state workload for allocation differentials
/// (a longer run must not allocate beyond the warm-up peak) — `rpc_fanout`
/// can't serve there, because its rotating frontends all start at t=0 and
/// more requests mean more *concurrent* requests.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::rpc_incast(16, 2, 3, 4, 2_048, 16_384, 50_000, 11);
/// assert_eq!(spec.name, "rpc-incast");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn rpc_incast(
    n: usize,
    fronts: usize,
    waves: usize,
    fanout: usize,
    request_bytes: u64,
    response_bytes: u64,
    service_ops: u64,
    seed: u64,
) -> WorkloadSpec {
    assert!(fronts > 0 && fronts < n, "fronts must be in [1, n)");
    assert!(waves > 0, "waves must be nonzero");
    assert!(
        fanout >= 1 && fanout <= n - fronts,
        "fanout must be in [1, n - fronts], got {fanout} for n={n}, fronts={fronts}"
    );
    let mut m = MpiBuilder::new(n);
    let mut rng = SplitMix64::new(seed ^ 0x0052_5043); // "RPC"
    m.region_start_all(RegionId::KERNEL);
    for _wave in 0..waves {
        for front in 0..fronts {
            // Sample `fanout` distinct backends != front, avoiding the other
            // frontends so concurrent requests never serialize on a shared
            // backend.
            let mut targets: Vec<(usize, u64)> = Vec::with_capacity(fanout);
            while targets.len() < fanout {
                let b = (rng.next_u64() % n as u64) as usize;
                if b >= fronts && !targets.iter().any(|&(t, _)| t == b) {
                    // Heavy tail: 1 in 8 calls is a 10× outlier.
                    let ops = if rng.next_u64().is_multiple_of(8) {
                        service_ops * 10
                    } else {
                        service_ops / 2 + rng.next_u64() % service_ops.max(1)
                    };
                    targets.push((b, ops));
                }
            }
            m.rpc_fanout(front, &targets, request_bytes, response_bytes);
        }
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("rpc-incast", m.build(), MetricKind::KernelTime)
}

/// Gossip replication: every round, each node pushes a `digest_bytes`
/// digest to `fanout` seeded peers; every `sync_every` rounds one seeded
/// pair runs a large anti-entropy exchange. The low-rate all-to-all
/// background shape of Cassandra/Serf-style membership and replication.
///
/// # Examples
///
/// ```
/// let spec = aqs_workloads::gossip(6, 4, 2, 1_024, 13);
/// assert_eq!(spec.name, "gossip");
/// ```
pub fn gossip(
    n: usize,
    rounds: usize,
    fanout: usize,
    digest_bytes: u64,
    seed: u64,
) -> WorkloadSpec {
    assert!(rounds > 0, "rounds must be nonzero");
    assert!(
        fanout >= 1 && fanout < n,
        "fanout must be in [1, n), got {fanout} for n={n}"
    );
    let mut m = MpiBuilder::new(n);
    let mut rng = SplitMix64::new(seed ^ 0x474F_5353); // "GOSS"
    let sync_every = 4;
    m.region_start_all(RegionId::KERNEL);
    for round in 0..rounds {
        // Digest-processing work between rounds.
        m.compute_all_imbalanced(20_000, 0.05, seed ^ round as u64);
        let mut edges: Vec<(usize, usize, u64)> = Vec::with_capacity(n * fanout);
        for src in 0..n {
            let mut peers: Vec<usize> = Vec::with_capacity(fanout);
            while peers.len() < fanout {
                let p = (rng.next_u64() % n as u64) as usize;
                if p != src && !peers.contains(&p) {
                    peers.push(p);
                }
            }
            for p in peers {
                edges.push((src, p, digest_bytes));
            }
        }
        m.exchange_round(&edges);
        // Anti-entropy: a seeded pair reconciles with a bulk exchange.
        if round % sync_every == sync_every - 1 {
            let a = (rng.next_u64() % n as u64) as usize;
            let b = (a + 1 + (rng.next_u64() % (n as u64 - 1)) as usize) % n;
            m.exchange_round(&[(a, b, digest_bytes * 64), (b, a, digest_bytes * 64)]);
        }
    }
    m.region_end_all(RegionId::KERNEL);
    WorkloadSpec::new("gossip", m.build(), MetricKind::KernelTime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqs_node::{Op, SendTarget};
    use std::collections::HashMap;

    /// Every receive must have a matching send (same src, dst, tag).
    fn check_matched(spec: &WorkloadSpec) {
        let mut sends: HashMap<(u32, u32, u32), usize> = HashMap::new();
        let mut recvs: HashMap<(u32, u32, u32), usize> = HashMap::new();
        for p in &spec.programs {
            for op in p.ops() {
                match *op {
                    Op::Send {
                        dst: SendTarget::Rank(d),
                        tag,
                        ..
                    } => {
                        *sends
                            .entry((p.rank().as_u32(), d.as_u32(), tag.as_u32()))
                            .or_default() += 1
                    }
                    Op::Recv { src: Some(s), tag } => {
                        *recvs
                            .entry((s.as_u32(), p.rank().as_u32(), tag.as_u32()))
                            .or_default() += 1
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(sends, recvs, "unmatched traffic in {}", spec.name);
    }

    #[test]
    fn generators_are_matched_and_seed_deterministic() {
        for n in [2usize, 4, 7, 8] {
            let builds: Vec<WorkloadSpec> = vec![
                ml_allreduce(n, 2, 2, 65_536, 50_000, 42),
                parameter_server(n, 2, 32_768, 40_000, 42),
                rpc_fanout(n, 3, (n - 1).min(3), 1_024, 8_192, 30_000, 42),
                gossip(n, 4, (n - 1).min(2), 512, 42),
            ];
            for spec in &builds {
                check_matched(spec);
                assert_eq!(spec.n_ranks(), n);
            }
        }
        // Same seed → identical programs; different seed → different ones.
        let a = rpc_fanout(8, 4, 3, 1_024, 8_192, 30_000, 1);
        let b = rpc_fanout(8, 4, 3, 1_024, 8_192, 30_000, 1);
        let c = rpc_fanout(8, 4, 3, 1_024, 8_192, 30_000, 2);
        for (x, y) in a.programs.iter().zip(&b.programs) {
            assert_eq!(x.ops(), y.ops());
        }
        assert!(a
            .programs
            .iter()
            .zip(&c.programs)
            .any(|(x, y)| x.ops() != y.ops()));
    }

    #[test]
    fn parameter_server_is_an_incast() {
        let spec = parameter_server(8, 1, 4_096, 10_000, 3);
        // All 7 workers target rank 0 in the push round.
        let server_recvs = spec.programs[0].recv_count();
        assert!(server_recvs >= 7, "server saw {server_recvs} receives");
    }

    #[test]
    fn rpc_fanout_has_heavy_tail() {
        let spec = rpc_fanout(8, 16, 3, 1_024, 8_192, 30_000, 5);
        let max_op = spec
            .programs
            .iter()
            .flat_map(|p| p.ops())
            .filter_map(|op| match op {
                Op::Compute { ops } => Some(*ops),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_op, 300_000, "the 10× outlier must appear");
    }
}
