//! Guest-OS background (housekeeping) traffic.
//!
//! The paper's guests run an ordinary Debian with "standard OS housekeeping
//! tasks", and its Figure 9(a) EP trace shows sparse packets even during
//! pure-compute phases. That background traffic matters for the adaptive
//! quantum at scale: with 64 nodes, *some* node emits a housekeeping packet
//! often enough that the quantum rarely reaches its ceiling — which is why
//! the paper's 64-node EP table shows the dynamic 1:100 configuration at
//! only 12.9x versus 72.7x for a fixed 100 µs quantum.

use crate::spec::WorkloadSpec;
use aqs_node::{CpuModel, Op, Program, Rank, SendTarget, Tag};
use aqs_time::SimDuration;

/// Tag space reserved for housekeeping datagrams, far above anything the
/// collective builder allocates.
const BACKGROUND_TAG: u32 = u32::MAX;

/// Interleaves periodic fire-and-forget housekeeping datagrams into every
/// rank's program: roughly every `period` of estimated simulated time, the
/// rank sends `bytes` to its ring successor (no receive is posted — the
/// packets exist only as NIC traffic, like ARP/NTP chatter).
///
/// Ranks are staggered by `period / n` so the packets spread over time.
/// The insertion points are estimated with `cpu` (receive waits are not
/// predictable), which is plenty for traffic whose exact timing is
/// irrelevant.
///
/// # Panics
///
/// Panics if `period` is zero.
///
/// # Examples
///
/// ```
/// use aqs_node::CpuModel;
/// use aqs_time::SimDuration;
/// use aqs_workloads::{uniform_compute, with_background_traffic};
///
/// let spec = uniform_compute(4, 50_000_000, 0.0);
/// let noisy = with_background_traffic(spec, SimDuration::from_millis(1), 64, &CpuModel::default());
/// assert!(noisy.programs[0].send_count() > 5);
/// ```
pub fn with_background_traffic(
    spec: WorkloadSpec,
    period: SimDuration,
    bytes: u64,
    cpu: &CpuModel,
) -> WorkloadSpec {
    assert!(!period.is_zero(), "background period must be positive");
    let n = spec.n_ranks();
    let programs = spec
        .programs
        .into_iter()
        .enumerate()
        .map(|(i, p)| interleave(p, i, n, period, bytes, cpu))
        .collect();
    WorkloadSpec {
        name: spec.name,
        programs,
        metric: spec.metric,
    }
}

fn interleave(
    program: Program,
    rank: usize,
    n: usize,
    period: SimDuration,
    bytes: u64,
    cpu: &CpuModel,
) -> Program {
    let dst = Rank::new(((rank + 1) % n) as u32);
    let mut out = Vec::with_capacity(program.len());
    // Stagger the first emission across ranks.
    let mut next_mark = period.mul_f64((rank as f64 + 1.0) / n as f64);
    let mut elapsed = SimDuration::ZERO;
    for op in program.ops() {
        // Estimated duration of this op; receives and sends count as zero
        // (unknowable here, and sends are near-instant at these sizes).
        let est = match *op {
            Op::Compute { ops } => cpu.compute_duration(ops),
            Op::Idle { dur } => dur,
            _ => SimDuration::ZERO,
        };
        // Split long compute blocks so a multi-millisecond block doesn't
        // swallow several periods.
        if let Op::Compute { ops } = *op {
            let mut remaining_ops = ops;
            let mut remaining_dur = est;
            while elapsed + remaining_dur > next_mark && remaining_ops > 1 {
                // Portion of the block up to the mark.
                let until_mark = next_mark.saturating_sub(elapsed);
                let frac = until_mark.as_nanos() as f64 / remaining_dur.as_nanos().max(1) as f64;
                let ops_before = ((remaining_ops as f64) * frac).round().max(1.0) as u64;
                let ops_before = ops_before.min(remaining_ops - 1);
                out.push(Op::Compute { ops: ops_before });
                elapsed += cpu.compute_duration(ops_before);
                remaining_ops -= ops_before;
                remaining_dur = cpu.compute_duration(remaining_ops);
                out.push(Op::Send {
                    dst: SendTarget::Rank(dst),
                    bytes,
                    tag: Tag::new(BACKGROUND_TAG),
                });
                next_mark += period;
            }
            out.push(Op::Compute { ops: remaining_ops });
            elapsed += remaining_dur;
        } else {
            elapsed += est;
            out.push(*op);
            if elapsed >= next_mark {
                out.push(Op::Send {
                    dst: SendTarget::Rank(dst),
                    bytes,
                    tag: Tag::new(BACKGROUND_TAG),
                });
                while next_mark <= elapsed {
                    next_mark += period;
                }
            }
        }
    }
    Program::new(program.rank(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::uniform_compute;
    use crate::spec::MetricKind;

    fn cpu() -> CpuModel {
        CpuModel::new(1_000_000_000, 1.0, SimDuration::ZERO) // 1 op = 1 ns
    }

    #[test]
    fn datagrams_land_roughly_every_period() {
        // 10 ms of compute, 1 ms period → ~10 datagrams.
        let spec = uniform_compute(2, 10_000_000, 0.0);
        let noisy = with_background_traffic(spec, SimDuration::from_millis(1), 64, &cpu());
        let sends = noisy.programs[0].send_count();
        assert!(
            (8..=12).contains(&sends),
            "expected ~10 datagrams, got {sends}"
        );
    }

    #[test]
    fn compute_total_is_preserved() {
        let spec = uniform_compute(2, 10_000_000, 0.0);
        let before = spec.total_ops();
        let noisy = with_background_traffic(spec, SimDuration::from_millis(1), 64, &cpu());
        assert_eq!(noisy.total_ops(), before);
    }

    #[test]
    fn ranks_are_staggered() {
        let spec = uniform_compute(4, 5_000_000, 0.0);
        let noisy = with_background_traffic(spec, SimDuration::from_millis(1), 64, &cpu());
        // First send position differs across ranks (different stagger).
        let first_send = |p: &Program| p.ops().iter().position(|o| matches!(o, Op::Send { .. }));
        let p0 = first_send(&noisy.programs[0]);
        let p3 = first_send(&noisy.programs[3]);
        assert!(p0.is_some() && p3.is_some());
        // Both split their compute differently: compare the first compute
        // block sizes (staggered marks cut at different offsets).
        let lead = |p: &Program| {
            p.ops()
                .iter()
                .find_map(|o| match o {
                    Op::Compute { ops } => Some(*ops),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(lead(&noisy.programs[0]), lead(&noisy.programs[3]));
    }

    #[test]
    fn metric_and_name_unchanged() {
        let spec = uniform_compute(2, 1_000_000, 0.0);
        let noisy = with_background_traffic(spec, SimDuration::from_millis(1), 64, &cpu());
        assert_eq!(noisy.name, "compute");
        assert_eq!(noisy.metric, MetricKind::Mops);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let spec = uniform_compute(2, 1000, 0.0);
        let _ = with_background_traffic(spec, SimDuration::ZERO, 64, &cpu());
    }
}
