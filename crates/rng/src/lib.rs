//! Deterministic pseudo-random number generation for the aqs simulator.
//!
//! Simulation experiments must be **bit-reproducible**: the same seed must
//! produce the same run on every platform and with every dependency upgrade.
//! Rather than depending on an external crate whose stream could change
//! between versions, this crate ships two small, well-known generators:
//!
//! * [`SplitMix64`] — a 64-bit state generator used to expand seeds.
//! * [`Xoshiro256StarStar`] — the main generator (Blackman & Vigna, 2018),
//!   seeded through SplitMix64 exactly as its authors recommend.
//!
//! On top of the raw streams it provides the handful of distributions the
//! simulator needs: uniform ranges, normal (Box–Muller), and log-normal (used
//! for host-speed jitter), plus an [`Ar1`] autoregressive process used to
//! model slowly drifting simulator speeds.
//!
//! # Examples
//!
//! ```
//! use aqs_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream:
//! assert_eq!(Rng::seed_from_u64(42).next_u64(), Rng::seed_from_u64(42).next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], but perfectly usable on its own for cheap,
/// low-quality streams.
///
/// # Examples
///
/// ```
/// use aqs_rng::SplitMix64;
/// let mut sm = SplitMix64::new(1);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the simulator's main generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, excellent statistical quality, and a
/// `jump()` function for carving independent substreams out of one seed.
///
/// # Examples
///
/// ```
/// use aqs_rng::Xoshiro256StarStar;
/// let mut a = Xoshiro256StarStar::seed_from_u64(7);
/// let mut b = a.clone();
/// b.jump();
/// assert_ne!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl fmt::Debug for Xoshiro256StarStar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // State intentionally elided: printing 256 bits of entropy is noise.
        f.debug_struct("Xoshiro256StarStar").finish_non_exhaustive()
    }
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`],
    /// following the reference implementation's recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one invalid state; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Returns the raw 256-bit state, for checkpointing a stream position.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at an exact stream position captured by
    /// [`Self::state`]. Returns `None` for the all-zero state, which is the
    /// one position no valid stream can occupy.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s.iter().all(|&w| w == 0) {
            return None;
        }
        Some(Self { s })
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the stream by 2¹²⁸ outputs.
    ///
    /// Calling `jump()` k times on identically-seeded generators yields
    /// non-overlapping substreams — one per simulated node.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

/// The simulator's random-number handle: xoshiro256** plus distributions.
///
/// `Rng` is deliberately *not* an implementation of any external RNG trait:
/// the point is to own the entire stream definition so results never shift
/// under a dependency upgrade.
///
/// # Examples
///
/// ```
/// use aqs_rng::Rng;
/// let mut rng = Rng::seed_from_u64(123);
/// let jitter = rng.lognormal(0.0, 0.25);
/// assert!(jitter > 0.0);
/// let lane = rng.range_u64(0..8);
/// assert!(lane < 8);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    inner: Xoshiro256StarStar,
    /// Spare normal deviate from the last Box–Muller pair.
    spare_normal: Option<f64>,
}

/// An exact [`Rng`] stream position, capturable mid-stream and restorable
/// bit-for-bit — the unit of RNG state a simulation snapshot carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngState {
    /// xoshiro256** state words.
    pub s: [u64; 4],
    /// Banked Box–Muller deviate, if the last [`Rng::normal`] left one.
    pub spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives the `index`-th independent substream of this generator's seed
    /// via repeated `jump()`.
    ///
    /// Used to give every simulated node its own stream from one experiment
    /// seed. `index` is capped in practice by node counts (≤ thousands), so
    /// the linear cost of jumping is irrelevant.
    pub fn substream(seed: u64, index: u64) -> Self {
        let mut inner = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..index {
            inner.jump();
        }
        Self {
            inner,
            spare_normal: None,
        }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Captures the exact stream position, including any banked Box–Muller
    /// deviate, so the stream can be resumed bit-for-bit.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.inner.state(),
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator at a position captured by [`Self::state`].
    /// Returns `None` for the all-zero xoshiro state (never produced by a
    /// valid stream — seeing it means the snapshot bytes are corrupt).
    pub fn from_state(state: RngState) -> Option<Self> {
        Some(Self {
            inner: Xoshiro256StarStar::from_state(state.s)?,
            spare_normal: state.spare_normal,
        })
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: xoshiro's lowest bits are its weakest.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `range` (half-open).
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(
            range.start < range.end,
            "range_u64 called with empty range {range:?}"
        );
        let span = range.end - range.start;
        loop {
            let x = self.inner.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let lo = m as u64;
            if lo >= span {
                return range.start + (m >> 64) as u64;
            }
            // `lo < span`: possibly biased region; reject when below threshold.
            let threshold = span.wrapping_neg() % span;
            if lo >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0..n as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.next_f64() < p
    }

    /// Returns a standard-normal deviate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal deviate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn normal_with(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and >= 0, got {sigma}"
        );
        mean + sigma * self.normal()
    }

    /// Returns a log-normal deviate: `exp(N(mu, sigma))`.
    ///
    /// With `mu = 0`, the median is 1.0 — convenient for multiplicative
    /// jitter around a base rate.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Returns an exponential deviate with the given rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive, got {lambda}"
        );
        let u = 1.0 - self.next_f64();
        -u.ln() / lambda
    }

    /// Returns a uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick called with empty slice");
        &items[self.index(items.len())]
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// A first-order autoregressive process `x' = phi*x + (1-phi)*mean + eps`.
///
/// The cluster engine uses one per node to model simulator speed that drifts
/// slowly over host time (a loaded host core speeds up and slows down, but
/// not white-noise fast).
///
/// # Examples
///
/// ```
/// use aqs_rng::{Ar1, Rng};
/// let mut rng = Rng::seed_from_u64(5);
/// let mut drift = Ar1::new(0.0, 0.9, 0.1);
/// let a = drift.step(&mut rng);
/// let b = drift.step(&mut rng);
/// assert!(a.is_finite() && b.is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct Ar1 {
    mean: f64,
    phi: f64,
    sigma: f64,
    value: f64,
}

impl Ar1 {
    /// Creates a process with long-run `mean`, persistence `phi ∈ [0, 1)` and
    /// innovation standard deviation `sigma`, started at the mean.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is outside `[0, 1)` or `sigma` is negative.
    pub fn new(mean: f64, phi: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&phi), "phi must be in [0,1), got {phi}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and >= 0, got {sigma}"
        );
        Self {
            mean,
            phi,
            sigma,
            value: mean,
        }
    }

    /// Advances the process one step and returns the new value.
    pub fn step(&mut self, rng: &mut Rng) -> f64 {
        let eps = rng.normal_with(0.0, self.sigma);
        self.value = self.phi * self.value + (1.0 - self.phi) * self.mean + eps;
        self.value
    }

    /// Returns the current value without advancing.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Overwrites the current value, restoring a checkpointed process
    /// position (the mean/phi/sigma parameters come from configuration).
    #[inline]
    pub fn set_value(&mut self, value: f64) {
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    // Explicit import: proptest's prelude also globs a `Rng` trait, and an
    // explicit name wins over a glob.
    use super::{Ar1, Rng, RngState, SplitMix64, Xoshiro256StarStar};
    use proptest::prelude::*;

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(0);
        let mut b = Xoshiro256StarStar::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut base = Xoshiro256StarStar::seed_from_u64(99);
        let mut jumped = base.clone();
        jumped.jump();
        let a: Vec<u64> = (0..64).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| jumped.next_u64()).collect();
        assert_ne!(a, b);
        for x in &a {
            assert!(!b.contains(x));
        }
    }

    #[test]
    fn substreams_differ_and_are_stable() {
        let mut s0 = Rng::substream(7, 0);
        let mut s1 = Rng::substream(7, 1);
        let mut s1b = Rng::substream(7, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        assert_eq!(s1b.next_u64(), Rng::substream(7, 1).next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_with_unit_median() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal(0.0, 0.25)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn ar1_reverts_to_mean() {
        let mut rng = Rng::seed_from_u64(29);
        let mut p = Ar1::new(10.0, 0.8, 0.0);
        for _ in 0..200 {
            p.step(&mut rng);
        }
        assert!((p.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut rng = Rng::seed_from_u64(41);
        // Burn an odd number of normals so a spare deviate is banked.
        let _ = rng.normal();
        let saved = rng.state();
        let expected: Vec<f64> = (0..8).map(|_| rng.normal()).collect();
        let mut resumed = Rng::from_state(saved).expect("valid state");
        let got: Vec<f64> = (0..8).map(|_| resumed.normal()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn all_zero_state_is_rejected() {
        assert!(Xoshiro256StarStar::from_state([0; 4]).is_none());
        let bad = RngState {
            s: [0; 4],
            spare_normal: None,
        };
        assert!(Rng::from_state(bad).is_none());
    }

    #[test]
    fn ar1_set_value_restores_the_process() {
        let mut rng = Rng::seed_from_u64(31);
        let mut p = Ar1::new(1.0, 0.9, 0.2);
        p.step(&mut rng);
        let (v, rs) = (p.value(), rng.state());
        let expected = p.step(&mut rng);
        let mut q = Ar1::new(1.0, 0.9, 0.2);
        q.set_value(v);
        let mut rng2 = Rng::from_state(rs).unwrap();
        assert_eq!(q.step(&mut rng2), expected);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = rng.range_u64(5..5);
    }

    proptest! {
        #[test]
        fn range_u64_respects_bounds(seed in any::<u64>(), start in 0u64..1000, span in 1u64..1000) {
            let mut rng = Rng::seed_from_u64(seed);
            let v = rng.range_u64(start..start + span);
            prop_assert!(v >= start && v < start + span);
        }

        #[test]
        fn range_f64_respects_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, w in 0.001f64..50.0) {
            let mut rng = Rng::seed_from_u64(seed);
            let v = rng.range_f64(lo, lo + w);
            prop_assert!(v >= lo && v < lo + w);
        }

        #[test]
        fn same_seed_same_stream(seed in any::<u64>()) {
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn index_within(seed in any::<u64>(), n in 1usize..10_000) {
            let mut rng = Rng::seed_from_u64(seed);
            prop_assert!(rng.index(n) < n);
        }

        #[test]
        fn pick_returns_an_element(seed in any::<u64>()) {
            let mut rng = Rng::seed_from_u64(seed);
            let items = [10u32, 20, 30, 40, 50];
            prop_assert!(items.contains(rng.pick(&items)));
        }
    }
}
