//! Mutation smoke tests: deliberate, runtime-armed faults in the engine
//! crates must be **detected** by the conformance oracles and **shrunk** to
//! a minimal reproducer. This is the harness testing itself — an oracle
//! that cannot catch a planted bug is not worth running.
//!
//! Requires the forwarding feature:
//!
//! ```text
//! cargo test -p aqs-check --features fault-inject --test mutation
//! ```
//!
//! The fault switches are process-global atomics, so armed windows must
//! never overlap: every test holds [`FAULT_WINDOW`] for its whole body and
//! disarms through a drop guard even on panic.

#![cfg(feature = "fault-inject")]

use aqs_check::{check_case_with, shrink, CaseSpec, CheckOpts};
use aqs_cluster::{ClusterConfig, Sim, SimError, SimSnapshot};
use aqs_core::SyncConfig;
use std::sync::Mutex;

static FAULT_WINDOW: Mutex<()> = Mutex::new(());

/// Disarms every fault family on drop, so a failing assertion cannot leak
/// an armed fault into the next test.
struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        aqs_core::fault::disarm_all();
        aqs_cluster::fault::disarm_all();
        aqs_sync::fault::disarm_all();
    }
}

fn window() -> std::sync::MutexGuard<'static, ()> {
    FAULT_WINDOW.lock().unwrap_or_else(|e| e.into_inner())
}

/// Structural size of a case, for asserting the shrinker made progress.
fn size(case: &CaseSpec) -> u64 {
    case.n_nodes as u64
        + case
            .phases
            .iter()
            .map(|p| 1 + p.compute + p.bytes + p.salt.min(1))
            .sum::<u64>()
}

/// Scans the seeded stream until the armed fault is detected, then shrinks
/// the failing case and checks the shrinker's contract: the minimized case
/// is no larger and still carries a failure reason.
fn detect_and_shrink(name: &str, opts: &CheckOpts, scan_limit: u64) {
    let found = (0..scan_limit).find_map(|i| {
        let case = CaseSpec::generate(0xFA017, i);
        check_case_with(&case, opts).err().map(|e| (i, case, e))
    });
    let Some((index, case, reason)) = found else {
        panic!("{name}: fault not detected within {scan_limit} generated cases");
    };
    let result = shrink(&case, &mut |c| check_case_with(c, opts).err());
    assert!(
        size(&result.case) <= size(&case),
        "{name}: shrinker grew the case"
    );
    assert!(
        !result.reason.is_empty(),
        "{name}: minimized case lost its failure reason"
    );
    eprintln!(
        "{name}: detected at case {index} ({reason}); shrunk {} -> {} in {} steps \
         ({} attempts): {}",
        size(&case),
        size(&result.case),
        result.steps,
        result.attempts,
        result.reason
    );
}

/// Deterministic-engine-only oracle runs: faults in the shared policy code
/// are visible without paying for threads.
fn det_only() -> CheckOpts {
    CheckOpts {
        threaded: false,
        optimistic: false,
        sharded: false,
        sharded_optimistic: false,
        hybrid: false,
        ..CheckOpts::default()
    }
}

/// Sharded-engine-only oracle runs, for faults that must be visible through
/// the sharded packet path and leader without the threaded engine voting.
fn sharded_only() -> CheckOpts {
    CheckOpts {
        threaded: false,
        optimistic: false,
        sharded_optimistic: false,
        hybrid: false,
        ..CheckOpts::default()
    }
}

/// Rollback-engine-only oracle runs, for faults planted in the
/// sharded-optimistic substrate. The quantum cap is lowered so faults that
/// starve a receiver fail fast, and injected deadlocks stay cheap.
fn rollback_only() -> CheckOpts {
    CheckOpts {
        threaded: false,
        optimistic: false,
        sharded: false,
        quanta_cap: Some(10_000),
        ..CheckOpts::default()
    }
}

#[test]
fn unarmed_faults_are_inert() {
    let _w = window();
    // Compiled in, but not armed: a small campaign must stay green, or the
    // feature itself would perturb the engines.
    for i in 0..12 {
        let case = CaseSpec::generate(0xA5, i);
        check_case_with(&case, &CheckOpts::default())
            .unwrap_or_else(|e| panic!("case {i} failed with faults compiled but unarmed: {e}"));
    }
}

#[test]
fn clamp_high_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // The adaptive clamp lets the quantum overshoot its ceiling; the bounds
    // oracle must see a quantum above `max_quantum`.
    aqs_core::fault::arm(aqs_core::fault::Fault::QuantumClampHigh);
    detect_and_shrink("clamp-high", &det_only(), 400);
}

#[test]
fn clamp_low_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // The clamp floor is halved: the first packet at the floor shrinks the
    // quantum below `min_quantum`.
    aqs_core::fault::arm(aqs_core::fault::Fault::QuantumClampLow);
    detect_and_shrink("clamp-low", &det_only(), 200);
}

#[test]
fn shrink_off_by_one_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // `np <= 1` treated as silence: a quantum that saw exactly one packet
    // grows instead of shrinking — Algorithm 1's direction oracle fires.
    aqs_core::fault::arm(aqs_core::fault::Fault::ShrinkOffByOne);
    detect_and_shrink("shrink-off-by-one", &det_only(), 200);
}

#[test]
fn det_straggler_skip_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // Stragglers still snap (the timeline dilates) but are not recorded:
    // the stragglers-vs-dilation oracle sees a dilated run claiming zero
    // stragglers.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::DetStragglerSkip);
    detect_and_shrink("det-straggler-skip", &det_only(), 200);
}

#[test]
fn leader_np_skip_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // The threaded leader forgets node 0's packet count when advancing the
    // policy; a quantum where node 0 was the only sender grows instead of
    // shrinking, against the true count in the recorded trace.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::LeaderNpSkip);
    let opts = CheckOpts {
        threaded: true,
        optimistic: false,
        sharded: false,
        quanta_cap: None,
        ..CheckOpts::default()
    };
    detect_and_shrink("leader-np-skip", &opts, 200);
}

#[test]
fn leader_np_skip_is_detected_in_the_sharded_engine() {
    let _w = window();
    let _g = Armed;
    // Same fault, sharded leader: shard 0's packet count is forgotten when
    // the tree-barrier leader advances the policy, so a quantum where only
    // shard 0 sent grows instead of shrinking.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::LeaderNpSkip);
    detect_and_shrink("leader-np-skip-sharded", &sharded_only(), 200);
}

#[test]
fn mailbox_drop_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // Every 5th mailbox push is dropped: a fragment vanishes, its receiver
    // blocks forever, and the threaded engine spins quanta until the cap —
    // caught as an engine panic (or, for tiny cases, as lost messages in
    // the differential).
    aqs_sync::fault::arm_mailbox_drop(5);
    let opts = CheckOpts {
        threaded: true,
        optimistic: false,
        sharded: false,
        sharded_optimistic: false,
        hybrid: false,
        quanta_cap: Some(10_000),
        ..CheckOpts::default()
    };
    detect_and_shrink("mailbox-drop", &opts, 50);
}

#[test]
fn mailbox_drop_is_detected_in_the_sharded_engine() {
    let _w = window();
    let _g = Armed;
    // The pooled push path must keep honoring the drop hook: a vanished
    // fragment deadlocks the sharded run into its quantum cap (or shows up
    // as lost messages in the differential).
    aqs_sync::fault::arm_mailbox_drop(5);
    let opts = CheckOpts {
        threaded: false,
        optimistic: false,
        sharded_optimistic: false,
        hybrid: false,
        // Keep the injected deadlock cheap: the cap only needs to exceed
        // any honest run's quantum count for these small cases.
        quanta_cap: Some(10_000),
        ..CheckOpts::default()
    };
    detect_and_shrink("mailbox-drop-sharded", &opts, 50);
}

#[test]
fn wake_rearm_skip_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // The sharded wake-wheel forgets to re-arm a sleeping node when a
    // delivery lands beyond the quantum edge: the fragment sits in the
    // node's pending set but the node is never scheduled again. A blocked
    // receiver starves (quantum cap) or the run finishes short on messages
    // (conservation) — and the forced-full-sweep twin run is immune, so the
    // active-set differential fires too. The cap is lowered so the injected
    // deadlock fails fast.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::WakeRearmSkip);
    let opts = CheckOpts {
        quanta_cap: Some(10_000),
        ..sharded_only()
    };
    detect_and_shrink("wake-rearm-skip", &opts, 200);
}

#[test]
fn stale_checkpoint_restore_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // A rollback restores the second-newest ring entry: the node replays a
    // whole committed window on top of itself. The exactness oracle (an
    // undegraded, snap-free run must land on the ground-truth timeline) or
    // conservation fires.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::StaleCheckpointRestore);
    detect_and_shrink("stale-checkpoint-restore", &rollback_only(), 200);
}

#[test]
fn gvt_from_one_shard_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // GVT taken from shard 0's LVT alone: a window commits while another
    // shard still holds a violation, silently dropping its scheduled
    // re-execution — its receiver starves (quantum cap) or the run loses
    // messages (conservation).
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::GvtFromOneShard);
    detect_and_shrink("gvt-from-one-shard", &rollback_only(), 200);
}

#[test]
fn rollback_mailbox_skip_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // A rollback re-delivers only the delta fragments: the restored node
    // never re-receives its window-start deliveries and blocks forever, or
    // finishes short on messages.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::RollbackMailboxSkip);
    detect_and_shrink("rollback-mailbox-skip", &rollback_only(), 200);
}

/// A healthy simulation plus a mid-run snapshot of it, for the
/// snapshot-corruption faults below. The faults fire inside the serializer
/// (`SimSnapshot::to_bytes`), so one fixed case reaches every one of them;
/// seed/index are known-good (hundreds of quanta under ground truth).
fn snapshot_probe() -> (Sim, SimSnapshot) {
    let case = CaseSpec::generate(0x5EED_0CA7, 0);
    let sim = Sim::new(case.programs())
        .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(case.seed))
        .switch(case.switch());
    let snap = sim
        .snapshot_at(5)
        .expect("healthy case snapshots at quantum 5");
    (sim, snap)
}

#[test]
fn truncated_snapshot_is_rejected_with_a_format_error() {
    let _w = window();
    let _g = Armed;
    let (_, snap) = snapshot_probe();
    // The serializer loses its tail (a partial write / torn crash): the
    // frame's declared payload length no longer matches the bytes.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::SnapshotTruncate);
    let bytes = snap.to_bytes();
    assert!(matches!(
        SimSnapshot::from_bytes(&bytes),
        Err(SimError::SnapshotFormat { .. })
    ));
}

#[test]
fn flipped_checksum_byte_is_rejected_with_a_checksum_error() {
    let _w = window();
    let _g = Armed;
    let (_, snap) = snapshot_probe();
    // One payload byte flips after the checksum was computed (bit rot,
    // bad sector): FNV over the payload no longer matches the header.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::SnapshotChecksumFlip);
    let bytes = snap.to_bytes();
    assert!(matches!(
        SimSnapshot::from_bytes(&bytes),
        Err(SimError::SnapshotChecksum { .. })
    ));
}

#[test]
fn stale_fingerprint_is_rejected_at_resume() {
    let _w = window();
    let _g = Armed;
    let (sim, snap) = snapshot_probe();
    // A stale epoch header: the frame is internally consistent (magic,
    // version, checksum all pass) but claims a different simulation spec —
    // only the resume-time fingerprint comparison can catch it.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::SnapshotStaleFingerprint);
    let bytes = snap.to_bytes();
    let stale = SimSnapshot::from_bytes(&bytes)
        .expect("a stale-epoch frame still decodes — the codec alone cannot see it");
    assert!(matches!(
        sim.resume(&stale),
        Err(SimError::SnapshotSpecMismatch { .. })
    ));
}

#[test]
fn skipped_rng_stream_is_rejected_with_a_probe_error() {
    let _w = window();
    let _g = Armed;
    let (_, snap) = snapshot_probe();
    // Node 0's RNG stream is advanced one draw but its probe word is kept:
    // the state words stay individually plausible, so only the per-node
    // probe check can detect the skewed stream.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::SnapshotRngSkip);
    let bytes = snap.to_bytes();
    assert!(matches!(
        SimSnapshot::from_bytes(&bytes),
        Err(SimError::SnapshotRngStream { node: 0 })
    ));
}

#[test]
fn snapshot_corruption_is_detected_by_the_conformance_oracle() {
    let _w = window();
    let _g = Armed;
    // End to end: with the checksum fault armed, the oracle's own
    // crash/resume phase (which wire round-trips every snapshot) must fail
    // the very first case — the corruption never reaches an engine.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::SnapshotChecksumFlip);
    let case = CaseSpec::generate(0x5EED_0CA7, 0);
    let err = check_case_with(&case, &det_only())
        .expect_err("armed snapshot corruption must fail the oracle");
    assert!(
        err.contains("checksum"),
        "oracle failure does not name the checksum corruption: {err}"
    );
}

#[test]
fn hybrid_switch_drop_is_detected_and_shrunk() {
    let _w = window();
    let _g = Armed;
    // The conservative/optimistic mode switch drops the shard's carried
    // in-flight fragments. A tight cascade bound forces switches often, so
    // the lossy transition is reachable by small cases.
    aqs_cluster::fault::arm(aqs_cluster::fault::Fault::HybridSwitchDrop);
    let opts = CheckOpts {
        cascade_bound: 1,
        ..rollback_only()
    };
    detect_and_shrink("hybrid-switch-drop", &opts, 200);
}
