//! End-to-end conformance campaigns on the real engines, no faults armed.
//! This is the tier the CI smoke gate runs (`scripts/verify.sh` drives the
//! `conformance` binary with more cases); here a smaller sweep keeps the
//! default `cargo test` fast while still exercising generator → oracle →
//! runner → log end to end.

use aqs_check::{check_case, run_conformance, CaseSpec, ConformanceOpts};
use aqs_cluster::{ClusterConfig, EngineKind, Sim};
use proptest::prelude::*;
use serde_json::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// The active-set scheduler is a scheduling optimization, never a
    /// semantics change: for random generated programs × policies, every
    /// sharded-substrate engine at every shard count must produce the same
    /// simulated outcome with the wake wheel on as with
    /// [`Sim::force_full_sweep`], which executes every node every quantum.
    /// (The conformance oracle runs this differential too; this test pins
    /// it independently of oracle internals.)
    #[test]
    fn active_set_is_bit_identical_to_forced_full_sweep(index in 0u64..500) {
        let case = CaseSpec::generate(0x0AC7_15E7, index);
        let spec = Sim::new(case.programs())
            .config(ClusterConfig::new(case.policy.sync_config()).with_seed(case.seed))
            .switch(case.switch())
            .max_quanta(2_000_000);
        for kind in [
            EngineKind::Sharded,
            EngineKind::ShardedOptimistic,
            EngineKind::Hybrid,
        ] {
            for m in [1usize, 2, 3] {
                let run = |full_sweep: bool| {
                    spec.clone()
                        .engine(kind)
                        .shards(m)
                        .force_full_sweep(full_sweep)
                        .try_run()
                        .unwrap_or_else(|e| panic!(
                            "case {}: {} (M={m}, full_sweep={full_sweep}): {e}",
                            case.tag(),
                            kind.name()
                        ))
                        .simulated_outcome()
                };
                prop_assert_eq!(
                    run(false),
                    run(true),
                    "case {}: {} (M={}) active-set diverged from full sweep",
                    case.tag(), kind.name(), m
                );
            }
        }
    }
}

#[test]
fn fifty_cases_pass_on_all_engines() {
    let report = run_conformance(&ConformanceOpts {
        cases: 50,
        seed: 0xA5,
        ..ConformanceOpts::default()
    });
    assert_eq!(report.cases_run, 50);
    assert!(
        report.passed(),
        "conformance failures: {:#?}",
        report.failures
    );
}

#[test]
fn campaigns_are_reproducible() {
    // Same seed → same cases → same verdicts. The log carries wall-clock
    // fields, so compare the verdict-bearing fields instead of raw text.
    let opts = ConformanceOpts {
        cases: 12,
        seed: 0xD15EA5E,
        ..ConformanceOpts::default()
    };
    let (a, b) = (run_conformance(&opts), run_conformance(&opts));
    assert_eq!(a.cases_run, b.cases_run);
    assert_eq!(a.failures.len(), b.failures.len());
    let verdicts = |log: &str| -> Vec<(u64, String)> {
        log.lines()
            .filter_map(|l| {
                let v: Value = serde_json::from_str(l).expect("log line parses");
                let Some(&Value::U64(index)) = v.get("index") else {
                    return None;
                };
                let Some(Value::Str(status)) = v.get("status") else {
                    return None;
                };
                Some((index, status.clone()))
            })
            .collect()
    };
    assert_eq!(verdicts(&a.log), verdicts(&b.log));
}

#[test]
fn single_case_checks_are_deterministic() {
    for index in [0, 7, 23] {
        let case = CaseSpec::generate(0xA5, index);
        assert_eq!(check_case(&case), check_case(&case));
    }
}

/// Stateful-looking switches must still route as a pure function of
/// `(src, dst, bytes, departure)`: the oracle's cross-M identity check (and
/// its sharded-vs-deterministic differential) must hold under both the
/// latency matrix and the fat-tree fabric, not just the perfect switch.
/// This pins the fix for worker-dependent routing order feeding a stateful
/// switch model.
#[test]
fn non_perfect_switches_stay_bit_identical_across_shard_counts() {
    let mut saw_fabric = 0u32;
    let mut saw_matrix = 0u32;
    for index in 0..24 {
        let mut case = CaseSpec::generate(0xFAB, index);
        // Force the two non-perfect switch paths in alternation so the
        // sweep cannot silently degenerate into all-perfect cases.
        if index % 2 == 0 {
            case.fabric = true;
            case.switch_latency_ns = 0;
            saw_fabric += 1;
        } else {
            case.fabric = false;
            case.switch_latency_ns = 1_500;
            saw_matrix += 1;
        }
        check_case(&case).unwrap_or_else(|e| panic!("case {}: {e}", case.tag()));
    }
    assert!(saw_fabric >= 8 && saw_matrix >= 8);
}

#[test]
fn generator_emits_fabric_cases() {
    let drawn = (0..200)
        .filter(|&i| CaseSpec::generate(0xA5, i).fabric)
        .count();
    // ~20 % of cases route through the fabric; the exact count is pinned by
    // the seeded stream, the range just guards against a silent rate change.
    assert!(
        (15..=80).contains(&drawn),
        "expected a healthy fabric draw rate, got {drawn}/200"
    );
}
