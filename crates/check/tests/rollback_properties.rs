//! Rollback-property conformance tier: the sharded-optimistic and hybrid
//! engines swept through generated cases with the rollback oracles armed —
//! GVT monotone and committing at window edges (no committed event ever
//! rolls back), rollback depth within the cascade bound, wasted-sim equal to
//! the re-executed quanta, recorder parity, and ground-truth exactness for
//! undegraded runs — across every configured shard count.
//!
//! `scripts/verify.sh` and CI drive the same tier with more cases through
//! `aqs check --engines sharded-optimistic,hybrid`; this in-tree sweep keeps
//! plain `cargo test` covering it.

use aqs_check::{check_case_with, run_conformance, CaseSpec, CheckOpts, ConformanceOpts};

/// Rollback engines only: the deterministic run still anchors ground truth,
/// everything else is the new tier.
fn rollback_opts() -> CheckOpts {
    CheckOpts {
        threaded: false,
        optimistic: false,
        sharded: false,
        ..CheckOpts::default()
    }
}

#[test]
fn forty_cases_pass_the_rollback_property_tier() {
    let report = run_conformance(&ConformanceOpts {
        cases: 40,
        seed: 0xB0117,
        check: rollback_opts(),
        ..ConformanceOpts::default()
    });
    assert_eq!(report.cases_run, 40);
    assert!(
        report.passed(),
        "rollback-property failures: {:#?}",
        report.failures
    );
}

#[test]
fn the_tier_is_deterministic_case_by_case() {
    for index in [0, 5, 17] {
        let case = CaseSpec::generate(0xBEEF, index);
        let opts = rollback_opts();
        assert_eq!(
            check_case_with(&case, &opts),
            check_case_with(&case, &opts),
            "case {}",
            case.tag()
        );
    }
}

#[test]
fn a_tight_cascade_bound_still_passes_every_oracle() {
    // Bound 1: almost every violation degrades its shard, so the degraded
    // (conservative re-execution) path is exercised constantly. The run must
    // still conserve packets and keep every rollback invariant.
    let opts = CheckOpts {
        cascade_bound: 1,
        ..rollback_opts()
    };
    for index in 0..12 {
        let case = CaseSpec::generate(0xCA5CADE, index);
        check_case_with(&case, &opts).unwrap_or_else(|e| panic!("case {}: {e}", case.tag()));
    }
}
