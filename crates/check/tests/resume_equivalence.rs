//! Resume-equivalence property tier: running a generated case to
//! completion must be bit-identical (via
//! [`aqs_cluster::RunReport::simulated_outcome`]) to snapshotting it at a
//! random interior quantum edge and resuming — for the deterministic
//! engine and for every parallel engine at every
//! [`CheckOpts::shard_counts`] entry, all seeded from the *same* wire
//! round-tripped snapshot.
//!
//! The cut point is drawn per case from the run's own quantum count, so
//! over the sweep the snapshot lands early, mid-run, and on the final
//! barrier alike.

use aqs_check::{CaseSpec, CheckOpts};
use aqs_cluster::{ClusterConfig, EngineKind, Sim, SimSnapshot};
use aqs_core::SyncConfig;
use proptest::prelude::*;

/// Quantum cap for the parallel engines. Part of the spec fingerprint, so
/// every builder in this file must carry the same value.
const CAP: u64 = 2_000_000;

/// The ground-truth simulation for a case; under the safe 1 µs quantum all
/// five engines agree bit-for-bit, so one deterministic snapshot seeds
/// them all.
fn ground_truth_sim(case: &CaseSpec) -> Sim {
    Sim::new(case.programs())
        .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(case.seed))
        .switch(case.switch())
        .max_quanta(CAP)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn resume_at_a_random_quantum_is_bit_identical(
        index in 0u64..400,
        cut_draw in 0u64..u64::MAX,
    ) {
        let case = CaseSpec::generate(0x5EED_0CA7, index);
        let spec = ground_truth_sim(&case);
        let full = spec
            .clone()
            .try_run()
            .unwrap_or_else(|e| panic!("case {}: uninterrupted run failed: {e}", case.tag()));
        // A one-quantum run has no interior barrier to cut at.
        if full.total_quanta >= 2 {
            let cut = 1 + cut_draw % (full.total_quanta - 1);
            let truth = full.simulated_outcome();
            let snap = spec
                .snapshot_at(cut)
                .unwrap_or_else(|e| panic!("case {}: snapshot at {cut}: {e}", case.tag()));
            // The wire codec sits on the tested path: what resumes is what
            // a crashed process would reload from disk.
            let snap = SimSnapshot::from_bytes(&snap.to_bytes())
                .unwrap_or_else(|e| panic!("case {}: wire round trip: {e}", case.tag()));
            prop_assert_eq!(snap.quanta(), cut);

            let det = spec
                .resume(&snap)
                .unwrap_or_else(|e| panic!("case {}: det resume at {cut}: {e}", case.tag()));
            prop_assert_eq!(
                det.simulated_outcome(), truth.clone(),
                "case {}: det resume at quantum {} diverged", case.tag(), cut
            );

            for kind in [
                EngineKind::Threaded,
                EngineKind::Sharded,
                EngineKind::ShardedOptimistic,
                EngineKind::Hybrid,
            ] {
                for &m in &CheckOpts::default().shard_counts {
                    let r = spec
                        .clone()
                        .engine(kind)
                        .shards(m)
                        .resume(&snap)
                        .unwrap_or_else(|e| panic!(
                            "case {}: {} (M={m}) resume at {cut}: {e}",
                            case.tag(),
                            kind.name()
                        ));
                    prop_assert_eq!(
                        r.simulated_outcome(), truth.clone(),
                        "case {}: {} (M={}) resume at quantum {} diverged",
                        case.tag(), kind.name(), m, cut
                    );
                    if kind == EngineKind::Threaded {
                        // One worker per node regardless of M; once is enough.
                        break;
                    }
                }
            }
        }
    }
}
