//! Resume-equivalence property tier: running a generated case to
//! completion must be bit-identical (via
//! [`aqs_cluster::RunReport::simulated_outcome`]) to snapshotting it at a
//! random interior quantum edge and resuming — for the deterministic
//! engine and for every parallel engine at every
//! [`CheckOpts::shard_counts`] entry, all seeded from the *same* wire
//! round-tripped snapshot.
//!
//! The cut point is drawn per case from the run's own quantum count, so
//! over the sweep the snapshot lands early, mid-run, and on the final
//! barrier alike.

use aqs_check::{CaseSpec, CheckOpts};
use aqs_cluster::{ClusterConfig, EngineKind, Sim, SimSnapshot};
use aqs_core::SyncConfig;
use proptest::prelude::*;

/// A mostly-idle 4k-node cluster snapshotted mid-run: the wake wheel is not
/// serialized, so a resumed sharded run must rebuild it (every node re-polls
/// once at the resume edge, sleepers immediately re-park) and still land on
/// the uninterrupted run's outcome bit for bit. This is the active-set
/// scheduler's resume contract at a scale where <1 % of nodes are hot per
/// quantum — a skipped-sleeper bug in the rebuild path cannot hide behind
/// the all-nodes-busy traffic of the small generated cases above. Under the
/// safe ground-truth quantum the deterministic snapshot is valid for every
/// engine; only the sharded engine carries a wake wheel to rebuild, so it
/// alone is swept here (the optimistic substrate resumes with every node
/// runnable and is covered at generated-case scale above).
#[test]
fn mostly_idle_4k_snapshot_mid_run_resumes_bit_identically() {
    let n = 4096;
    let spec = Sim::new(aqs_workloads::rpc_fanout(n, 6, 8, 2_048, 16_384, 200_000, 11).programs)
        .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(0x1D7E))
        .max_quanta(CAP);
    let full = spec.clone().try_run().expect("uninterrupted run");
    assert!(
        full.total_quanta >= 4,
        "workload too short to cut mid-run: {} quanta",
        full.total_quanta
    );
    let truth = full.simulated_outcome();
    let cut = full.total_quanta / 2;
    let snap = spec.snapshot_at(cut).expect("snapshot mid-run");
    let snap = SimSnapshot::from_bytes(&snap.to_bytes()).expect("wire round trip");
    for m in [2usize, 5] {
        let r = spec
            .clone()
            .engine(EngineKind::Sharded)
            .shards(m)
            .resume(&snap)
            .unwrap_or_else(|e| panic!("sharded (M={m}) resume at {cut}: {e}"));
        assert_eq!(
            r.simulated_outcome(),
            truth,
            "sharded (M={m}) resume at quantum {cut} diverged"
        );
    }
}

/// Quantum cap for the parallel engines. Part of the spec fingerprint, so
/// every builder in this file must carry the same value.
const CAP: u64 = 2_000_000;

/// The ground-truth simulation for a case; under the safe 1 µs quantum all
/// five engines agree bit-for-bit, so one deterministic snapshot seeds
/// them all.
fn ground_truth_sim(case: &CaseSpec) -> Sim {
    Sim::new(case.programs())
        .config(ClusterConfig::new(SyncConfig::ground_truth()).with_seed(case.seed))
        .switch(case.switch())
        .max_quanta(CAP)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn resume_at_a_random_quantum_is_bit_identical(
        index in 0u64..400,
        cut_draw in 0u64..u64::MAX,
    ) {
        let case = CaseSpec::generate(0x5EED_0CA7, index);
        let spec = ground_truth_sim(&case);
        let full = spec
            .clone()
            .try_run()
            .unwrap_or_else(|e| panic!("case {}: uninterrupted run failed: {e}", case.tag()));
        // A one-quantum run has no interior barrier to cut at.
        if full.total_quanta >= 2 {
            let cut = 1 + cut_draw % (full.total_quanta - 1);
            let truth = full.simulated_outcome();
            let snap = spec
                .snapshot_at(cut)
                .unwrap_or_else(|e| panic!("case {}: snapshot at {cut}: {e}", case.tag()));
            // The wire codec sits on the tested path: what resumes is what
            // a crashed process would reload from disk.
            let snap = SimSnapshot::from_bytes(&snap.to_bytes())
                .unwrap_or_else(|e| panic!("case {}: wire round trip: {e}", case.tag()));
            prop_assert_eq!(snap.quanta(), cut);

            let det = spec
                .resume(&snap)
                .unwrap_or_else(|e| panic!("case {}: det resume at {cut}: {e}", case.tag()));
            prop_assert_eq!(
                det.simulated_outcome(), truth.clone(),
                "case {}: det resume at quantum {} diverged", case.tag(), cut
            );

            for kind in [
                EngineKind::Threaded,
                EngineKind::Sharded,
                EngineKind::ShardedOptimistic,
                EngineKind::Hybrid,
            ] {
                for &m in &CheckOpts::default().shard_counts {
                    let r = spec
                        .clone()
                        .engine(kind)
                        .shards(m)
                        .resume(&snap)
                        .unwrap_or_else(|e| panic!(
                            "case {}: {} (M={m}) resume at {cut}: {e}",
                            case.tag(),
                            kind.name()
                        ));
                    prop_assert_eq!(
                        r.simulated_outcome(), truth.clone(),
                        "case {}: {} (M={}) resume at quantum {} diverged",
                        case.tag(), kind.name(), m, cut
                    );
                    if kind == EngineKind::Threaded {
                        // One worker per node regardless of M; once is enough.
                        break;
                    }
                }
            }
        }
    }
}
