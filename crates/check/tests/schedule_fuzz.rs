//! Schedule fuzzing: the threaded and sharded engines' functional outcomes
//! must be independent of thread scheduling. The `schedule-fuzz` feature
//! arms test-only perturbation hooks in `aqs-sync` — randomized mailbox
//! drain order and jittered barrier arrivals — and the outcome under the
//! safe quantum must stay bit-identical to the deterministic engine through
//! every perturbed run. Sharded rounds additionally rotate the worker count,
//! so the partition itself is perturbed along with the schedule.
//!
//! ```text
//! cargo test -p aqs-check --features schedule-fuzz --test schedule_fuzz
//! ```

#![cfg(feature = "schedule-fuzz")]

use aqs_check::{check_case_fuzzed, CaseSpec};

#[test]
fn engine_outcomes_survive_perturbed_schedules() {
    // A spread of generated cases, several perturbation rounds each on both
    // real-thread engines (threaded, then sharded across worker counts).
    // The fuzz hooks are armed per round inside `check_case_fuzzed`, so
    // runs never overlap an armed window.
    for index in 0..8 {
        let case = CaseSpec::generate(0x5C4ED, index);
        check_case_fuzzed(&case, 4, 0xF0CC1A + index)
            .unwrap_or_else(|e| panic!("case {}: {e}", case.tag()));
    }
}

#[test]
fn fuzz_hooks_disarm_cleanly() {
    // After a fuzzed run the hooks must be fully disarmed: a plain
    // differential check right after must behave exactly like one that
    // never fuzzed.
    let case = CaseSpec::generate(0x5C4ED, 0);
    check_case_fuzzed(&case, 1, 7).expect("fuzzed run");
    assert!(!aqs_sync::fuzz::is_armed(), "fuzz hooks left armed");
    aqs_check::check_case(&case).expect("plain check after fuzzing");
}
