//! Differential and invariant oracles for one conformance case.
//!
//! [`check_case`] runs a [`CaseSpec`] through the engines and decides
//! pass/fail without any golden file. Two kinds of evidence:
//!
//! * **Differential** — under the ground-truth quantum (1 µs, the safe bound
//!   for the paper's 1 µs minimum latency) no straggler can occur, so every
//!   engine must produce a bit-identical [`aqs_cluster::SimulatedOutcome`].
//!   Any
//!   disagreement is a bug in one of them.
//! * **Invariants** — properties that hold for *any* correct run, checked on
//!   the policy runs where engines legitimately diverge from ground truth:
//!   quantum bounds, Algorithm 1's grow/shrink direction, packet
//!   conservation, the straggler delay bound, and stragglers-vs-dilation
//!   consistency.
//!
//! Engine panics (deadlock, quantum-cap overflow) are caught and reported as
//! failures rather than aborting the whole campaign.

use crate::gen::{CaseSpec, PolicySpec};
use aqs_cluster::{ClusterConfig, EngineKind, RunReport, Sim, SimError, SimSnapshot};
use aqs_core::SyncConfig;
use aqs_net::NicModel;
use aqs_node::{Op, SendTarget};
use aqs_obs::ObsConfig;
use aqs_time::{HostDuration, SimDuration};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Ring capacity for policy-run recording; large enough that realistic
/// conformance cases never wrap (checks that need the full history are
/// skipped if one does).
const OBS_RING: usize = 16_384;

/// Knobs for [`check_case_with`].
#[derive(Clone, Debug)]
pub struct CheckOpts {
    /// Run the threaded engine (differential + invariants).
    pub threaded: bool,
    /// Run the optimistic engine on perfect-switch cases (differential).
    pub optimistic: bool,
    /// Run the sharded engine (differential + invariants + cross-M
    /// identity), once per entry of [`shard_counts`](Self::shard_counts).
    pub sharded: bool,
    /// Run the sharded-optimistic engine (differential + rollback-property
    /// invariants), once per entry of [`shard_counts`](Self::shard_counts).
    pub sharded_optimistic: bool,
    /// Run the hybrid engine (differential + rollback-property invariants),
    /// once per entry of [`shard_counts`](Self::shard_counts).
    pub hybrid: bool,
    /// Worker counts the sharded engines are exercised with. The engines
    /// clamp each to the node count, so oversized entries still run (as one
    /// worker per node) — deliberately, since results must not depend on M.
    pub shard_counts: Vec<usize>,
    /// Cascade depth bound handed to the sharded-optimistic and hybrid
    /// engines; the rollback-depth oracle checks runs against it.
    pub cascade_bound: u32,
    /// Override the threaded/sharded engines' quantum cap (deadlock guard).
    /// The default is derived from the ground-truth run and generous;
    /// mutation tests lower it so injected deadlocks fail fast.
    pub quanta_cap: Option<u64>,
    /// Run the crash/resume oracle: snapshot the ground-truth run at its
    /// midpoint barrier, round-trip the snapshot through the wire codec,
    /// and resume on every enabled engine at every shard count — each
    /// resumed run must land on the uninterrupted outcome bit-for-bit. The
    /// deterministic engine is additionally resumed mid-way through the
    /// case's *policy* run, where resume equality must hold even though
    /// engines legitimately dilate time.
    pub resume: bool,
}

impl Default for CheckOpts {
    fn default() -> Self {
        Self {
            threaded: true,
            optimistic: true,
            sharded: true,
            sharded_optimistic: true,
            hybrid: true,
            shard_counts: vec![1, 2, 3],
            cascade_bound: 8,
            quanta_cap: None,
            resume: true,
        }
    }
}

/// Checks one case with every engine enabled. See [`check_case_with`].
pub fn check_case(case: &CaseSpec) -> Result<(), String> {
    check_case_with(case, &CheckOpts::default())
}

/// Checks one case; `Err` carries a human-readable description of the first
/// violated oracle, prefixed with the failing run for context.
pub fn check_case_with(case: &CaseSpec, opts: &CheckOpts) -> Result<(), String> {
    let (exp_packets, exp_receives) = expected_counts(case);

    // Phase A: ground truth. Every engine must agree bit-for-bit.
    let det_truth = run_guarded("det ground truth", || {
        sim_for(case, SyncConfig::ground_truth()).run()
    })?;
    if det_truth.stragglers.count() != 0 {
        return Err(format!(
            "det ground truth: safe quantum produced {} stragglers",
            det_truth.stragglers.count()
        ));
    }
    conservation("det ground truth", &det_truth, exp_packets, exp_receives)?;
    let truth = det_truth.simulated_outcome();
    let truth_end_ns = det_truth.sim_end.as_nanos();
    let (lo, hi) = case.policy.quantum_bounds();
    let cap = opts
        .quanta_cap
        .unwrap_or_else(|| default_quanta_cap(truth_end_ns, exp_packets, hi));

    if opts.threaded {
        let thr = run_guarded("threaded ground truth", || {
            sim_for(case, SyncConfig::ground_truth())
                .engine(EngineKind::Threaded)
                .max_quanta(cap)
                .run()
        })?;
        if thr.simulated_outcome() != truth {
            return Err(format!(
                "differential: threaded ground truth diverged from deterministic \
                 (sim_end {} vs {}, packets {} vs {}, received {} vs {})",
                thr.sim_end.as_nanos(),
                truth_end_ns,
                thr.total_packets,
                truth.total_packets,
                thr.messages_received,
                truth.messages_received,
            ));
        }
    }
    if opts.sharded {
        for &m in &opts.shard_counts {
            let sh = run_guarded("sharded ground truth", || {
                sim_for(case, SyncConfig::ground_truth())
                    .engine(EngineKind::Sharded)
                    .shards(m)
                    .max_quanta(cap)
                    .run()
            })?;
            if sh.simulated_outcome() != truth {
                return Err(format!(
                    "differential: sharded ground truth (M={m}) diverged from \
                     deterministic (sim_end {} vs {}, packets {} vs {})",
                    sh.sim_end.as_nanos(),
                    truth_end_ns,
                    sh.total_packets,
                    truth.total_packets,
                ));
            }
        }
    }
    for (enabled, kind) in [
        (opts.sharded_optimistic, EngineKind::ShardedOptimistic),
        (opts.hybrid, EngineKind::Hybrid),
    ] {
        if !enabled {
            continue;
        }
        for &m in &opts.shard_counts {
            let label = format!("{} ground truth (M={m})", kind.name());
            let r = run_guarded(&label, || {
                sim_for(case, SyncConfig::ground_truth())
                    .engine(kind)
                    .shards(m)
                    .cascade_bound(opts.cascade_bound)
                    .max_quanta(cap)
                    .run()
            })?;
            if r.simulated_outcome() != truth {
                return Err(format!(
                    "differential: {label} diverged from deterministic \
                     (sim_end {} vs {}, packets {} vs {})",
                    r.sim_end.as_nanos(),
                    truth_end_ns,
                    r.total_packets,
                    truth.total_packets,
                ));
            }
            let d = r.detail.as_sharded_optimistic().expect("opt detail");
            if d.rollbacks != 0 {
                return Err(format!(
                    "{label}: safe quantum produced {} rollbacks (Q ≤ T forbids \
                     in-window arrivals entirely)",
                    d.rollbacks
                ));
            }
        }
    }
    if opts.optimistic && case.optimistic_ok() {
        let opt = run_guarded("optimistic ground truth", || {
            sim_for(case, SyncConfig::ground_truth())
                .engine(EngineKind::Optimistic)
                .window(SimDuration::from_micros(20))
                .optimistic_costs(HostDuration::ZERO, HostDuration::ZERO)
                .run()
        })?;
        if opt.simulated_outcome() != truth {
            return Err(format!(
                "differential: optimistic diverged from deterministic \
                 (sim_end {} vs {})",
                opt.sim_end.as_nanos(),
                truth_end_ns,
            ));
        }
    }

    // Phase A½: crash/resume conformance. Cut the ground-truth run at its
    // midpoint barrier, round-trip the snapshot through the wire codec, and
    // resume on every enabled engine at every shard count.
    if opts.resume {
        check_resume_truth(case, opts, &det_truth, &truth, cap)?;
    }

    // Phase B: the case's own policy, where dilation is allowed but must
    // obey the paper's invariants.
    let det_pol = run_guarded("det policy run", || {
        sim_for(case, case.policy.sync_config())
            .record(ObsConfig::new().with_ring_capacity(OBS_RING))
            .run()
    })?;
    check_policy_run("det policy run", &det_pol, case, lo, hi)?;
    conservation("det policy run", &det_pol, exp_packets, exp_receives)?;
    if opts.resume {
        check_resume_policy(case, &det_pol)?;
    }
    // Stragglers-vs-dilation: dilation only ever happens by snapping a
    // delivery forward, which records a straggler. Zero stragglers ⟹ the
    // timeline is the ground-truth timeline.
    if det_pol.stragglers.count() == 0 && det_pol.sim_end != det_truth.sim_end {
        return Err(format!(
            "det policy run: zero stragglers but sim_end {} != ground truth {}",
            det_pol.sim_end.as_nanos(),
            truth_end_ns,
        ));
    }

    if opts.threaded {
        let thr_pol = run_guarded("threaded policy run", || {
            sim_for(case, case.policy.sync_config())
                .engine(EngineKind::Threaded)
                .max_quanta(cap)
                .record(ObsConfig::new().with_ring_capacity(OBS_RING))
                .run()
        })?;
        check_policy_run("threaded policy run", &thr_pol, case, lo, hi)?;
        conservation("threaded policy run", &thr_pol, exp_packets, exp_receives)?;
    }

    if opts.sharded {
        // Unlike the threaded engine, the sharded engine is deterministic
        // for *every* policy (deliveries are fixed at the sender's quantum
        // edge), so policy-run outcomes must be bit-identical across M too.
        let mut baseline: Option<(usize, aqs_cluster::SimulatedOutcome)> = None;
        let mut active_exec: Option<u64> = None;
        for &m in &opts.shard_counts {
            let label = format!("sharded policy run (M={m})");
            let sh_pol = run_guarded(&label, || {
                sim_for(case, case.policy.sync_config())
                    .engine(EngineKind::Sharded)
                    .shards(m)
                    .max_quanta(cap)
                    .record(ObsConfig::new().with_ring_capacity(OBS_RING))
                    .run()
            })?;
            check_policy_run(&label, &sh_pol, case, lo, hi)?;
            conservation(&label, &sh_pol, exp_packets, exp_receives)?;
            let executed = sh_pol
                .detail
                .as_sharded()
                .ok_or_else(|| format!("{label}: report carries no sharded detail"))?
                .nodes_executed;
            let outcome = sh_pol.simulated_outcome();
            match &baseline {
                None => {
                    baseline = Some((m, outcome));
                    active_exec = Some(executed);
                }
                Some((m0, base)) => {
                    if outcome != *base {
                        return Err(format!(
                            "{label}: outcome differs from M={m0} \
                             (sim_end {} vs {})",
                            outcome.sim_end.as_nanos(),
                            base.sim_end.as_nanos(),
                        ));
                    }
                    if executed != active_exec.expect("set with baseline") {
                        return Err(format!(
                            "{label}: active-set executed {executed} nodes, M={m0} \
                             executed {} — the wake schedule depends on the \
                             partition",
                            active_exec.expect("set with baseline"),
                        ));
                    }
                }
            }
        }
        // Active-set oracle: force the legacy full sweep on the first
        // worker count and require a bit-identical outcome. A node the
        // worklist skipped in quantum k therefore observed no event in
        // quantum k — if it could have acted (an executor step, a timer, a
        // delivery), the full sweep would have taken it and the timelines
        // would differ. The executed-node accounting is pinned both ways:
        // the sweep runs everyone every quantum, the active set never runs
        // more.
        if let Some((m0, base)) = &baseline {
            let label = format!("sharded full-sweep policy run (M={m0})");
            let fs = run_guarded(&label, || {
                sim_for(case, case.policy.sync_config())
                    .engine(EngineKind::Sharded)
                    .shards(*m0)
                    .max_quanta(cap)
                    .force_full_sweep(true)
                    .run()
            })?;
            if fs.simulated_outcome() != *base {
                return Err(format!(
                    "active-set oracle: {label} diverged from the active-set run \
                     (sim_end {} vs {}, packets {} vs {}) — a skipped node \
                     observed an event in a skipped quantum",
                    fs.sim_end.as_nanos(),
                    base.sim_end.as_nanos(),
                    fs.total_packets,
                    base.total_packets,
                ));
            }
            let d = fs
                .detail
                .as_sharded()
                .ok_or_else(|| format!("{label}: report carries no sharded detail"))?;
            let swept = case.n_nodes as u64 * fs.total_quanta;
            if d.nodes_executed != swept {
                return Err(format!(
                    "{label}: full sweep executed {} nodes, expected n × quanta = {swept}",
                    d.nodes_executed
                ));
            }
            let active = active_exec.expect("set with baseline");
            if active > d.nodes_executed {
                return Err(format!(
                    "active-set oracle: worklist executed {active} nodes, more than \
                     the full sweep's {}",
                    d.nodes_executed
                ));
            }
        }
    }

    // Phase C: rollback-property tier. The sharded-optimistic and hybrid
    // engines run the case's own policy, where windows above the safe bound
    // legitimately roll back; the run must still obey the rollback
    // invariants (GVT monotone and committing exactly at window edges,
    // depth within the cascade bound, wasted-sim equal to the re-executed
    // quanta, recorder parity) and — when it never degraded a shard — land
    // on the ground-truth timeline exactly. Outcomes are *not* compared
    // across M here: which shard degrades depends on the partition.
    for (enabled, kind) in [
        (opts.sharded_optimistic, EngineKind::ShardedOptimistic),
        (opts.hybrid, EngineKind::Hybrid),
    ] {
        if !enabled {
            continue;
        }
        let mut first: Option<(usize, aqs_cluster::SimulatedOutcome)> = None;
        for &m in &opts.shard_counts {
            let label = format!("{} policy run (M={m})", kind.name());
            let r = run_guarded(&label, || {
                sim_for(case, case.policy.sync_config())
                    .engine(kind)
                    .shards(m)
                    .cascade_bound(opts.cascade_bound)
                    .max_quanta(cap)
                    .record(ObsConfig::new().with_ring_capacity(OBS_RING))
                    .run()
            })?;
            check_policy_run(&label, &r, case, lo, hi)?;
            conservation(&label, &r, exp_packets, exp_receives)?;
            check_rollback_run(&label, &r, opts.cascade_bound, &truth)?;
            if first.is_none() {
                first = Some((m, r.simulated_outcome()));
            }
        }
        // Active-set oracle for the optimistic substrate: wake-based
        // window skipping must be invisible next to the forced full sweep
        // at the same worker count (same partition, same rollback
        // trajectory).
        if let Some((m0, base)) = &first {
            let label = format!("{} full-sweep policy run (M={m0})", kind.name());
            let fs = run_guarded(&label, || {
                sim_for(case, case.policy.sync_config())
                    .engine(kind)
                    .shards(*m0)
                    .cascade_bound(opts.cascade_bound)
                    .max_quanta(cap)
                    .force_full_sweep(true)
                    .run()
            })?;
            if fs.simulated_outcome() != *base {
                return Err(format!(
                    "active-set oracle: {label} diverged from the active-set run \
                     (sim_end {} vs {}) — a skipped node observed an event in a \
                     skipped window",
                    fs.sim_end.as_nanos(),
                    base.sim_end.as_nanos(),
                ));
            }
        }
    }
    Ok(())
}

/// The rollback-property oracles on one sharded-optimistic or hybrid run:
///
/// * GVT is monotonically non-decreasing and every window commits with GVT
///   exactly at its edge — so no committed event is ever rolled back, and
///   the committed horizon covers `sim_end`;
/// * rollback depth never exceeds the configured cascade bound;
/// * `wasted_sim` equals the re-executed quanta (Σ window length × nodes
///   re-executed, straight from the run's traces);
/// * the flight recorder's rollback counters agree with the result, per
///   shard and in total;
/// * a run that never degraded a shard and never snapped a packet must
///   reproduce the ground-truth timeline exactly.
fn check_rollback_run(
    label: &str,
    report: &RunReport,
    cascade_bound: u32,
    truth: &aqs_cluster::SimulatedOutcome,
) -> Result<(), String> {
    let d = report
        .detail
        .as_sharded_optimistic()
        .ok_or_else(|| format!("{label}: report carries no sharded-optimistic detail"))?;
    if d.cascade_bound != cascade_bound {
        return Err(format!(
            "{label}: configured cascade bound {cascade_bound} but the run reports {}",
            d.cascade_bound
        ));
    }
    if d.max_rollback_depth > cascade_bound {
        return Err(format!(
            "{label}: rollback depth {} exceeds the cascade bound {cascade_bound}",
            d.max_rollback_depth
        ));
    }
    if !d.traces_truncated {
        if d.gvt_trace.len() as u64 != d.windows {
            return Err(format!(
                "{label}: {} windows committed but the GVT trace has {} entries",
                d.windows,
                d.gvt_trace.len()
            ));
        }
        let mut edge = 0u64;
        let mut prev = 0u64;
        for (k, (&gvt, &len)) in d.gvt_trace.iter().zip(&d.window_len_trace).enumerate() {
            edge += len;
            if gvt < prev {
                return Err(format!(
                    "{label}: GVT retreated from {prev} to {gvt} at window #{k}"
                ));
            }
            prev = gvt;
            if gvt != edge {
                return Err(format!(
                    "{label}: window #{k} committed with GVT {gvt} ns, not its \
                     edge {edge} ns — a committed event could still roll back"
                ));
            }
        }
        if edge < report.sim_end.as_nanos() {
            return Err(format!(
                "{label}: committed GVT stopped at {edge} ns, short of sim_end {} ns",
                report.sim_end.as_nanos()
            ));
        }
        let replayed: u64 = d
            .window_len_trace
            .iter()
            .zip(&d.reexec_trace)
            .map(|(&len, &k)| len * u64::from(k))
            .sum();
        if d.wasted_sim.as_nanos() != replayed {
            return Err(format!(
                "{label}: wasted_sim {} ns but the traces re-executed {replayed} ns",
                d.wasted_sim.as_nanos()
            ));
        }
        let reexec_nodes: u64 = d.reexec_trace.iter().map(|&k| u64::from(k)).sum();
        if reexec_nodes != d.rollbacks {
            return Err(format!(
                "{label}: {} rollbacks counted but the traces re-executed {reexec_nodes} nodes",
                d.rollbacks
            ));
        }
    }
    if let Some(fr) = &report.obs {
        if fr.rollbacks() != d.rollbacks
            || fr.checkpoints() != d.checkpoints
            || fr.wasted_sim() != d.wasted_sim
        {
            return Err(format!(
                "{label}: flight recorder disagrees with the result \
                 (rollbacks {} vs {}, checkpoints {} vs {}, wasted {} vs {} ns)",
                fr.rollbacks(),
                d.rollbacks,
                fr.checkpoints(),
                d.checkpoints,
                fr.wasted_sim().as_nanos(),
                d.wasted_sim.as_nanos(),
            ));
        }
        let shard = fr
            .shard_rollback_stats()
            .ok_or_else(|| format!("{label}: recorder holds no per-shard rollback lanes"))?;
        if shard.rollbacks.iter().sum::<u64>() != d.rollbacks
            || shard.checkpoints.iter().sum::<u64>() != d.checkpoints
            || shard.wasted_ns.iter().sum::<u64>() != d.wasted_sim.as_nanos()
        {
            return Err(format!(
                "{label}: per-shard rollback lanes do not sum to the run totals"
            ));
        }
    }
    if d.degraded_windows == 0
        && report.stragglers.count() == 0
        && report.simulated_outcome() != *truth
    {
        return Err(format!(
            "{label}: never degraded, never snapped, yet diverged from the \
             ground-truth timeline (sim_end {} vs {} ns) — a committed event \
             was rolled back or restored from a stale checkpoint",
            report.sim_end.as_nanos(),
            truth.sim_end.as_nanos(),
        ));
    }
    Ok(())
}

/// The crash/resume oracle on the ground-truth run: capture a snapshot at
/// the run's midpoint quantum edge, serialize and reparse it (so the wire
/// codec sits on the tested path), then resume every enabled engine at
/// every shard count from that one snapshot. Under the safe quantum a
/// resumed run must be indistinguishable from the uninterrupted one, so
/// each resume must land on `truth` bit-for-bit.
///
/// All builders here carry `max_quanta(cap)`, which is part of the spec
/// fingerprint; the engine choice and shard count are deliberately not, so
/// the single deterministic capture seeds every engine.
fn check_resume_truth(
    case: &CaseSpec,
    opts: &CheckOpts,
    det_truth: &RunReport,
    truth: &aqs_cluster::SimulatedOutcome,
    cap: u64,
) -> Result<(), String> {
    if det_truth.total_quanta < 2 {
        // No interior barrier to cut at: the run fits in one quantum.
        return Ok(());
    }
    let cut = det_truth.total_quanta / 2;
    let capture = sim_for(case, SyncConfig::ground_truth()).max_quanta(cap);
    let snap = capture
        .snapshot_at(cut)
        .map_err(|e| format!("ground-truth snapshot at quantum {cut}: {e}"))?;
    let snap = SimSnapshot::from_bytes(&snap.to_bytes())
        .map_err(|e| format!("ground-truth snapshot wire round trip: {e}"))?;

    let det_res = resume_guarded("det ground-truth resume", || capture.resume(&snap))?;
    resume_differential("det ground-truth resume", &det_res, truth, cut)?;

    let mut engines: Vec<(EngineKind, &[usize])> = Vec::new();
    if opts.threaded {
        // The threaded engine spawns one worker per node regardless of M.
        engines.push((EngineKind::Threaded, &[1]));
    }
    for (enabled, kind) in [
        (opts.sharded, EngineKind::Sharded),
        (opts.sharded_optimistic, EngineKind::ShardedOptimistic),
        (opts.hybrid, EngineKind::Hybrid),
    ] {
        if enabled {
            engines.push((kind, &opts.shard_counts));
        }
    }
    for (kind, counts) in engines {
        for &m in counts {
            let label = format!("{} ground-truth resume (M={m})", kind.name());
            let r = resume_guarded(&label, || {
                sim_for(case, SyncConfig::ground_truth())
                    .engine(kind)
                    .shards(m)
                    .cascade_bound(opts.cascade_bound)
                    .max_quanta(cap)
                    .resume(&snap)
            })?;
            resume_differential(&label, &r, truth, cut)?;
        }
    }
    Ok(())
}

/// Strong deterministic resume equality under the case's *own* policy:
/// even where engines legitimately dilate time, cutting the deterministic
/// run at a quantum edge and resuming it must reproduce the uninterrupted
/// policy run exactly (the snapshot carries the policy's adaptive state).
fn check_resume_policy(case: &CaseSpec, det_pol: &RunReport) -> Result<(), String> {
    if det_pol.total_quanta < 2 {
        return Ok(());
    }
    let cut = det_pol.total_quanta / 2;
    let spec = sim_for(case, case.policy.sync_config());
    let snap = spec
        .snapshot_at(cut)
        .map_err(|e| format!("policy snapshot at quantum {cut}: {e}"))?;
    let snap = SimSnapshot::from_bytes(&snap.to_bytes())
        .map_err(|e| format!("policy snapshot wire round trip: {e}"))?;
    let resumed = resume_guarded("det policy resume", || spec.resume(&snap))?;
    let truth = det_pol.simulated_outcome();
    resume_differential("det policy resume", &resumed, &truth, cut)?;
    if resumed.total_quanta != det_pol.total_quanta {
        return Err(format!(
            "det policy resume: {} total quanta, uninterrupted run had {} — the \
             resumed policy diverged even though the outcome agrees",
            resumed.total_quanta, det_pol.total_quanta,
        ));
    }
    Ok(())
}

/// Compares a resumed run's functional outcome against the uninterrupted
/// truth, naming the cut point on failure.
fn resume_differential(
    label: &str,
    resumed: &RunReport,
    truth: &aqs_cluster::SimulatedOutcome,
    cut: u64,
) -> Result<(), String> {
    let outcome = resumed.simulated_outcome();
    if outcome != *truth {
        return Err(format!(
            "resume differential: {label} (cut at quantum {cut}) diverged from \
             the uninterrupted run (sim_end {} vs {}, packets {} vs {}, \
             received {} vs {})",
            outcome.sim_end.as_nanos(),
            truth.sim_end.as_nanos(),
            outcome.total_packets,
            truth.total_packets,
            outcome.messages_received,
            truth.messages_received,
        ));
    }
    Ok(())
}

/// Runs a snapshot resume, converting both a panic and a typed engine error
/// into an `Err` naming the run.
fn resume_guarded(
    label: &str,
    f: impl FnOnce() -> Result<RunReport, SimError>,
) -> Result<RunReport, String> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|p| {
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            format!("{label}: engine panicked: {msg}")
        })?
        .map_err(|e| format!("{label}: {e}"))
}

/// Runs the threaded and sharded engines `rounds` times each under the
/// ground-truth quantum with the schedule-fuzz hooks armed (randomized
/// mailbox drain order, jittered barrier arrivals) and requires the outcome
/// to stay bit-identical to the deterministic engine every time. Sharded
/// rounds also rotate the worker count, so a schedule perturbation is
/// compounded with a partition perturbation.
#[cfg(feature = "schedule-fuzz")]
pub fn check_case_fuzzed(case: &CaseSpec, rounds: u64, fuzz_seed: u64) -> Result<(), String> {
    let truth = run_guarded("det ground truth", || {
        sim_for(case, SyncConfig::ground_truth()).run()
    })?;
    let (exp_packets, _) = expected_counts(case);
    let cap = default_quanta_cap(
        truth.sim_end.as_nanos(),
        exp_packets,
        SimDuration::from_micros(1),
    );
    let truth = truth.simulated_outcome();
    for round in 0..rounds {
        aqs_sync::fuzz::arm(fuzz_seed.wrapping_add(round.wrapping_mul(0x9E37)));
        let result = run_guarded("fuzzed threaded ground truth", || {
            sim_for(case, SyncConfig::ground_truth())
                .engine(EngineKind::Threaded)
                .max_quanta(cap)
                .run()
        });
        aqs_sync::fuzz::disarm();
        let fuzzed = result?;
        if fuzzed.simulated_outcome() != truth {
            return Err(format!(
                "schedule fuzz round {round}: threaded outcome diverged under \
                 perturbed drain/arrival order (sim_end {} vs {})",
                fuzzed.sim_end.as_nanos(),
                truth.sim_end.as_nanos(),
            ));
        }
    }
    for round in 0..rounds {
        let workers = 1 + (round as usize % 3);
        aqs_sync::fuzz::arm(fuzz_seed.wrapping_add(round.wrapping_mul(0xB5297)));
        let result = run_guarded("fuzzed sharded ground truth", || {
            sim_for(case, SyncConfig::ground_truth())
                .engine(EngineKind::Sharded)
                .shards(workers)
                .max_quanta(cap)
                .run()
        });
        aqs_sync::fuzz::disarm();
        let fuzzed = result?;
        if fuzzed.simulated_outcome() != truth {
            return Err(format!(
                "schedule fuzz round {round}: sharded (M={workers}) outcome \
                 diverged under perturbed drain/arrival order (sim_end {} vs {})",
                fuzzed.sim_end.as_nanos(),
                truth.sim_end.as_nanos(),
            ));
        }
    }
    Ok(())
}

/// Replays the case's deterministic policy run with recording on and
/// returns the flight-recorder ring as JSON Lines — the per-quantum
/// telemetry artifact written next to a failing case. `None` if the run
/// panics or recording produced nothing.
pub fn policy_run_jsonl(case: &CaseSpec) -> Option<String> {
    let report = run_guarded("det policy run (artifact)", || {
        sim_for(case, case.policy.sync_config())
            .record(ObsConfig::new().with_ring_capacity(OBS_RING))
            .run()
    })
    .ok()?;
    report.obs.as_ref().map(|rec| rec.to_jsonl())
}

/// Base simulation builder shared by every run of a case.
fn sim_for(case: &CaseSpec, sync: SyncConfig) -> Sim {
    Sim::new(case.programs())
        .config(ClusterConfig::new(sync).with_seed(case.seed))
        .switch(case.switch())
}

/// Runs `f`, converting an engine panic into an `Err` naming the run.
fn run_guarded(label: &str, f: impl FnOnce() -> RunReport) -> Result<RunReport, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| p.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        format!("{label}: engine panicked: {msg}")
    })
}

/// Counts what the case's programs must produce on any correct engine:
/// routed packets (fragments × receivers) and fully-received messages.
fn expected_counts(case: &CaseSpec) -> (u64, u64) {
    let nic = NicModel::paper_default();
    let n = case.n_nodes as u64;
    let (mut packets, mut receives) = (0u64, 0u64);
    for prog in case.programs() {
        for op in prog.ops() {
            match op {
                Op::Send { dst, bytes, .. } => {
                    let receivers = match dst {
                        SendTarget::Rank(_) => 1,
                        SendTarget::All => n - 1,
                    };
                    packets += receivers * nic.fragment_sizes(*bytes).len() as u64;
                }
                Op::Recv { .. } => receives += 1,
                _ => {}
            }
        }
    }
    (packets, receives)
}

fn conservation(
    label: &str,
    report: &RunReport,
    exp_packets: u64,
    exp_receives: u64,
) -> Result<(), String> {
    if report.total_packets != exp_packets {
        return Err(format!(
            "{label}: packet conservation violated: routed {} packets, programs \
             imply {exp_packets}",
            report.total_packets
        ));
    }
    if report.messages_received != exp_receives {
        return Err(format!(
            "{label}: message conservation violated: received {} messages, \
             programs imply {exp_receives}",
            report.messages_received
        ));
    }
    Ok(())
}

/// Generous quantum cap for threaded runs: enough for the ground-truth
/// timeline plus worst-case per-packet dilation, so only a genuine deadlock
/// (every quantum advancing with no progress) can hit it.
fn default_quanta_cap(truth_end_ns: u64, exp_packets: u64, hi: SimDuration) -> u64 {
    let truth_quanta = truth_end_ns / 1_000 + 1;
    let dilation_quanta = exp_packets.saturating_mul(hi.as_nanos() / 1_000 + 1);
    (4 * (truth_quanta + dilation_quanta) + 10_000).min(2_000_000)
}

/// Checks the per-quantum invariants on a recorded policy run: every
/// quantum length within the policy's bounds, and — for the adaptive policy
/// — Algorithm 1's exact grow/shrink direction against the packet counts
/// the policy consumed.
fn check_policy_run(
    label: &str,
    report: &RunReport,
    case: &CaseSpec,
    lo: SimDuration,
    hi: SimDuration,
) -> Result<(), String> {
    if report.stragglers.max_delay() > hi {
        return Err(format!(
            "{label}: straggler delayed {} ns, beyond the max quantum {} ns",
            report.stragglers.max_delay().as_nanos(),
            hi.as_nanos()
        ));
    }
    let rec = report
        .obs
        .as_ref()
        .ok_or_else(|| format!("{label}: recording was requested but report.obs is empty"))?;
    let quanta: Vec<(u64, u64)> = rec
        .samples()
        .map(|s| (s.len.as_nanos(), s.packets))
        .collect();
    // The deterministic engine records a final *partial* quantum truncated
    // to sim_end; drop the last sample so length checks see only quanta the
    // policy actually emitted.
    let Some((_, full)) = quanta.split_last() else {
        return Ok(());
    };
    let (lo_ns, hi_ns) = (lo.as_nanos(), hi.as_nanos());
    for (k, &(len, _)) in full.iter().enumerate() {
        if len < lo_ns || len > hi_ns {
            return Err(format!(
                "{label}: quantum #{k} length {len} ns outside [{lo_ns}, {hi_ns}] ns"
            ));
        }
    }
    if let PolicySpec::Adaptive { .. } = case.policy {
        if rec.dropped() == 0 {
            if let Some(&(first, _)) = full.first() {
                if first != lo_ns {
                    return Err(format!(
                        "{label}: adaptive run started at {first} ns, not the floor {lo_ns} ns"
                    ));
                }
            }
        }
        for (k, w) in full.windows(2).enumerate() {
            let (len, packets) = w[0];
            let (next, _) = w[1];
            if packets > 0 {
                // Algorithm 1: any packet shrinks the quantum (to the floor
                // in a few steps — dec ≪ 1 — so strictly below, or pinned
                // at the floor).
                if len > lo_ns && next >= len {
                    return Err(format!(
                        "{label}: quantum #{k} saw {packets} packets at {len} ns but \
                         grew/held to {next} ns"
                    ));
                }
                if len == lo_ns && next != lo_ns {
                    return Err(format!(
                        "{label}: quantum #{k} saw {packets} packets at the floor but \
                         next quantum is {next} ns"
                    ));
                }
            } else if next < len {
                return Err(format!(
                    "{label}: quiet quantum #{k} at {len} ns shrank to {next} ns"
                ));
            }
        }
    }
    Ok(())
}
