//! `conformance` — run a differential conformance campaign from the shell.
//!
//! ```text
//! conformance [--cases N] [--seed S] [--engines all|det|det,threaded]
//!             [--time-budget SECS] [--log FILE] [--artifacts DIR]
//!             [--no-shrink]
//! ```
//!
//! Exit status: 0 when every case passed and the campaign completed, 1 on
//! any failure or when the time budget cut the campaign short, 2 on usage
//! errors. `--log` writes the JSONL run log (one object per case plus a
//! summary line); `--artifacts` writes, per failure, the minimized
//! `.case.json`, a ready-to-paste `.rs` regression test, and the flight
//! recorder's per-quantum telemetry as `.obs.jsonl`.
//!
//! The same campaign is reachable as `aqs check …`.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match aqs_check::cli::run(&args) {
        Ok(code) => exit(code),
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage:\n  conformance {}", aqs_check::cli::USAGE);
            exit(2)
        }
    }
}
