//! Command-line front end shared by the `conformance` binary and the
//! `aqs check` subcommand.

use crate::oracle::policy_run_jsonl;
use crate::runner::{run_conformance, ConformanceOpts};

/// Flag summary for usage messages.
pub const USAGE: &str = "[--cases N] [--seed S] \
     [--engines all|det|det,threaded|det,sharded|sharded-optimistic,hybrid] \
     [--time-budget SECS] [--log FILE] [--artifacts DIR] [--no-shrink]";

/// Parses `args`, runs the campaign, writes any requested artifacts, and
/// returns the process exit code (0 pass, 1 fail/out-of-time). `Err` is a
/// usage problem — the caller prints it and its own usage text.
pub fn run(args: &[String]) -> Result<i32, String> {
    let (opts, log_path, artifact_dir) = parse(args)?;
    let report = run_conformance(&opts);
    if let Some(path) = &log_path {
        std::fs::write(path, &report.log).map_err(|e| format!("cannot write log {path}: {e}"))?;
    }
    for f in &report.failures {
        let stem = format!("failure-{:x}-{}", f.original.seed, f.original.index);
        eprintln!(
            "FAIL case {:#x}/{}: {}",
            f.original.seed, f.original.index, f.reason
        );
        if let Some(s) = &f.shrunk {
            eprintln!(
                "  minimized in {} steps ({} attempts): {}",
                s.steps, s.attempts, s.reason
            );
        }
        if let Some(dir) = &artifact_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            let case_path = format!("{dir}/{stem}.case.json");
            std::fs::write(&case_path, f.case_json())
                .map_err(|e| format!("cannot write {case_path}: {e}"))?;
            let test_path = format!("{dir}/{stem}.rs");
            std::fs::write(&test_path, f.regression_snippet())
                .map_err(|e| format!("cannot write {test_path}: {e}"))?;
            // Per-quantum telemetry of the minimized failure, for eyeballing
            // which quantum went wrong (aqs-obs JSONL schema).
            if let Some(obs) = policy_run_jsonl(f.minimal()) {
                let obs_path = format!("{dir}/{stem}.obs.jsonl");
                std::fs::write(&obs_path, obs)
                    .map_err(|e| format!("cannot write {obs_path}: {e}"))?;
            }
            eprintln!("  artifacts: {case_path}");
        } else {
            eprintln!("  replay: {}", f.case_json().replace('\n', " "));
        }
    }
    println!(
        "conformance: {} cases, {} failures{}",
        report.cases_run,
        report.failures.len(),
        if report.out_of_time {
            " (stopped early: time budget)"
        } else {
            ""
        }
    );
    Ok(if report.passed() { 0 } else { 1 })
}

type Parsed = (ConformanceOpts, Option<String>, Option<String>);

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut opts = ConformanceOpts::default();
    let mut log_path = None;
    let mut artifact_dir = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-shrink" => opts.shrink_failures = false,
            flag => {
                let key = flag
                    .strip_prefix("--")
                    .ok_or_else(|| format!("unexpected argument: {flag}"))?;
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                match key {
                    "cases" => {
                        opts.cases = value.parse().map_err(|_| format!("bad --cases: {value}"))?
                    }
                    "seed" => opts.seed = parse_seed(value)?,
                    "engines" => apply_engines(&mut opts, value)?,
                    "time-budget" => {
                        let secs: u64 = value
                            .parse()
                            .map_err(|_| format!("bad --time-budget: {value}"))?;
                        opts.time_budget = Some(std::time::Duration::from_secs(secs));
                    }
                    "log" => log_path = Some(value.clone()),
                    "artifacts" => artifact_dir = Some(value.clone()),
                    _ => return Err(format!("unknown flag --{key}")),
                }
            }
        }
    }
    Ok((opts, log_path, artifact_dir))
}

/// Seeds accept decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad --seed: {s}"))
}

/// `--engines` narrows the differential vote: the deterministic engine
/// always runs (it anchors the ground truth); `threaded`, `optimistic`,
/// `sharded`, `sharded-optimistic`, and `hybrid` are opt-outable.
fn apply_engines(opts: &mut ConformanceOpts, spec: &str) -> Result<(), String> {
    opts.check.threaded = false;
    opts.check.optimistic = false;
    opts.check.sharded = false;
    opts.check.sharded_optimistic = false;
    opts.check.hybrid = false;
    for part in spec.split(',') {
        match part {
            "all" => {
                opts.check.threaded = true;
                opts.check.optimistic = true;
                opts.check.sharded = true;
                opts.check.sharded_optimistic = true;
                opts.check.hybrid = true;
            }
            "det" | "deterministic" => {}
            "threaded" => opts.check.threaded = true,
            "optimistic" => opts.check.optimistic = true,
            "sharded" => opts.check.sharded = true,
            "sharded-optimistic" | "sharded_optimistic" => {
                opts.check.sharded_optimistic = true;
            }
            "hybrid" => opts.check.hybrid = true,
            other => return Err(format!("unknown engine: {other}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_the_documented_flags() {
        let (opts, log, dir) = parse(&argv(
            "--cases 7 --seed 0xA5 --engines det,threaded --time-budget 30 \
             --log run.jsonl --artifacts out --no-shrink",
        ))
        .expect("parses");
        assert_eq!(opts.cases, 7);
        assert_eq!(opts.seed, 0xA5);
        assert!(opts.check.threaded);
        assert!(!opts.check.optimistic);
        assert!(!opts.check.sharded);
        assert_eq!(opts.time_budget, Some(std::time::Duration::from_secs(30)));
        assert!(!opts.shrink_failures);
        assert_eq!(log.as_deref(), Some("run.jsonl"));
        assert_eq!(dir.as_deref(), Some("out"));
    }

    #[test]
    fn rejects_unknown_flags_and_engines() {
        assert!(parse(&argv("--bogus 1")).is_err());
        assert!(parse(&argv("--engines warp")).is_err());
        assert!(parse(&argv("--seed zz")).is_err());
        assert!(parse(&argv("--cases")).is_err());
    }

    #[test]
    fn sharded_is_selectable_and_part_of_all() {
        let (opts, ..) = parse(&argv("--engines det,sharded")).expect("parses");
        assert!(opts.check.sharded);
        assert!(!opts.check.threaded);
        let (opts, ..) = parse(&argv("--engines all")).expect("parses");
        assert!(opts.check.sharded && opts.check.threaded && opts.check.optimistic);
    }

    #[test]
    fn rollback_engines_are_selectable_and_part_of_all() {
        let (opts, ..) = parse(&argv("--engines sharded-optimistic,hybrid")).expect("parses");
        assert!(opts.check.sharded_optimistic && opts.check.hybrid);
        assert!(!opts.check.sharded && !opts.check.threaded && !opts.check.optimistic);
        let (opts, ..) = parse(&argv("--engines all")).expect("parses");
        assert!(opts.check.sharded_optimistic && opts.check.hybrid);
    }

    #[test]
    fn decimal_and_hex_seeds_agree() {
        assert_eq!(parse_seed("165").unwrap(), 0xA5);
        assert_eq!(parse_seed("0xA5").unwrap(), 0xA5);
        assert_eq!(parse_seed("0Xa5").unwrap(), 0xA5);
    }
}
