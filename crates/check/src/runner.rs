//! Conformance campaign driver.
//!
//! [`run_conformance`] sweeps `cases` seeded cases through the oracle,
//! emitting one JSONL line per case as it goes, shrinking every failure to a
//! minimal reproducer, and stopping early when a wall-clock budget runs out.
//! The report carries everything a CI gate or the `conformance` binary
//! needs: counts, minimized failures with replay artifacts, and the full
//! run log.

use crate::gen::CaseSpec;
use crate::oracle::{check_case_with, CheckOpts};
use crate::shrink::{case_json, regression_snippet, shrink, ShrinkResult};
use serde_json::Value;
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct ConformanceOpts {
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Master seed; case `i` is [`CaseSpec::generate`]`(seed, i)`.
    pub seed: u64,
    /// Per-case oracle knobs (which engines run, quantum cap).
    pub check: CheckOpts,
    /// Wall-clock budget for the whole campaign; generation stops (and the
    /// report says so) once it is exhausted. Shrinking a failure already in
    /// progress is allowed to finish.
    pub time_budget: Option<Duration>,
    /// Shrink failures to a minimal reproducer (on by default; a smoke gate
    /// in a hurry can turn it off).
    pub shrink_failures: bool,
}

impl Default for ConformanceOpts {
    fn default() -> Self {
        Self {
            cases: 200,
            seed: 0xA5,
            check: CheckOpts::default(),
            time_budget: None,
            shrink_failures: true,
        }
    }
}

/// One failing case, minimized and ready to replay.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// The case as generated (before shrinking).
    pub original: CaseSpec,
    /// Failure reason on the original case.
    pub reason: String,
    /// Shrink outcome; `None` when shrinking was disabled.
    pub shrunk: Option<ShrinkResult>,
}

impl CaseFailure {
    /// The minimized case if shrinking ran, otherwise the original.
    pub fn minimal(&self) -> &CaseSpec {
        self.shrunk.as_ref().map_or(&self.original, |s| &s.case)
    }

    /// The failure reason attached to [`Self::minimal`].
    pub fn minimal_reason(&self) -> &str {
        self.shrunk.as_ref().map_or(&self.reason, |s| &s.reason)
    }

    /// The minimized case as pretty JSON (the `.case.json` artifact).
    pub fn case_json(&self) -> String {
        case_json(self.minimal())
    }

    /// A ready-to-paste Rust regression test replaying the minimized case.
    pub fn regression_snippet(&self) -> String {
        regression_snippet(self.minimal(), self.minimal_reason())
    }
}

/// What a campaign did.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Cases actually checked (≤ `opts.cases` when the budget ran out).
    pub cases_run: u64,
    /// Failures, in discovery order.
    pub failures: Vec<CaseFailure>,
    /// True when the wall-clock budget stopped the campaign early.
    pub out_of_time: bool,
    /// JSON Lines run log: one object per case, plus a trailing summary
    /// object (`"event": "summary"`).
    pub log: String,
}

impl ConformanceReport {
    /// True when every checked case passed and the campaign completed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && !self.out_of_time
    }
}

fn log_line(out: &mut String, fields: Vec<(&str, Value)>) {
    let obj = Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    out.push_str(&serde_json::to_string(&obj).expect("log line serializes"));
    out.push('\n');
}

/// Runs a conformance campaign. Never panics on a failing case — engine
/// panics are converted to failures by the oracle and shrunk like any other.
pub fn run_conformance(opts: &ConformanceOpts) -> ConformanceReport {
    let start = Instant::now();
    let mut log = String::new();
    let mut failures = Vec::new();
    let mut cases_run = 0u64;
    let mut out_of_time = false;
    for index in 0..opts.cases {
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                out_of_time = true;
                break;
            }
        }
        let case = CaseSpec::generate(opts.seed, index);
        let case_started = Instant::now();
        let result = check_case_with(&case, &opts.check);
        cases_run += 1;
        let elapsed_ms = case_started.elapsed().as_millis() as u64;
        match result {
            Ok(()) => log_line(
                &mut log,
                vec![
                    ("event", Value::Str("case".into())),
                    ("seed", Value::U64(case.seed)),
                    ("index", Value::U64(case.index)),
                    ("status", Value::Str("pass".into())),
                    ("elapsed_ms", Value::U64(elapsed_ms)),
                ],
            ),
            Err(reason) => {
                let shrunk = opts
                    .shrink_failures
                    .then(|| shrink(&case, &mut |c| check_case_with(c, &opts.check).err()));
                let failure = CaseFailure {
                    original: case.clone(),
                    reason: reason.clone(),
                    shrunk,
                };
                let minimal = failure.minimal();
                log_line(
                    &mut log,
                    vec![
                        ("event", Value::Str("case".into())),
                        ("seed", Value::U64(case.seed)),
                        ("index", Value::U64(case.index)),
                        ("status", Value::Str("fail".into())),
                        ("reason", Value::Str(reason)),
                        ("minimal_case", serde_json::to_value(minimal)),
                        (
                            "minimal_reason",
                            Value::Str(failure.minimal_reason().to_string()),
                        ),
                        ("elapsed_ms", Value::U64(elapsed_ms)),
                    ],
                );
                failures.push(failure);
            }
        }
    }
    log_line(
        &mut log,
        vec![
            ("event", Value::Str("summary".into())),
            ("seed", Value::U64(opts.seed)),
            ("cases_requested", Value::U64(opts.cases)),
            ("cases_run", Value::U64(cases_run)),
            ("failures", Value::U64(failures.len() as u64)),
            ("out_of_time", Value::Bool(out_of_time)),
            ("elapsed_ms", Value::U64(start.elapsed().as_millis() as u64)),
        ],
    );
    ConformanceReport {
        cases_run,
        failures,
        out_of_time,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_logs_every_case() {
        let opts = ConformanceOpts {
            cases: 4,
            seed: 0xC0FFEE,
            ..ConformanceOpts::default()
        };
        let report = run_conformance(&opts);
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert_eq!(report.cases_run, 4);
        let lines: Vec<&str> = report.log.lines().collect();
        assert_eq!(lines.len(), 5, "4 case lines + 1 summary");
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("log line parses");
            assert!(v.get("event").is_some());
        }
        assert_eq!(
            lines.last().and_then(|l| {
                let v: Value = serde_json::from_str(l).ok()?;
                v.get("event").cloned()
            }),
            Some(Value::Str("summary".into()))
        );
    }

    #[test]
    fn time_budget_stops_the_campaign_early() {
        let opts = ConformanceOpts {
            cases: 10_000,
            seed: 1,
            time_budget: Some(Duration::from_millis(1)),
            ..ConformanceOpts::default()
        };
        let report = run_conformance(&opts);
        assert!(report.out_of_time);
        assert!(report.cases_run < 10_000);
        assert!(!report.passed());
    }
}
