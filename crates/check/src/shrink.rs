//! Greedy case shrinking.
//!
//! When a case fails, [`shrink`] walks it toward a local minimum: fewer
//! nodes, fewer phases, smaller numbers — re-running the failure predicate
//! after every candidate edit and keeping only edits that still fail. The
//! result is the smallest case this greedy pass can reach, plus replayable
//! artifacts: the case as JSON and a ready-to-paste Rust regression test.

use crate::gen::{CaseSpec, PolicySpec};

/// Outcome of a shrink pass.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized case (still failing).
    pub case: CaseSpec,
    /// Failure reason reported for the minimized case.
    pub reason: String,
    /// Accepted shrink steps.
    pub steps: u32,
    /// Total candidate executions (accepted + rejected).
    pub attempts: u32,
}

/// Upper bound on predicate executions per shrink; each execution runs full
/// simulations, so runaway shrinking would dominate a campaign's budget.
const MAX_ATTEMPTS: u32 = 400;

/// Shrinks `case` against `fails`, which returns `Some(reason)` while the
/// case still exhibits the failure.
///
/// # Panics
///
/// Panics if `case` does not fail the predicate — shrinking a passing case
/// means the caller mixed up its bookkeeping.
pub fn shrink(case: &CaseSpec, fails: &mut dyn FnMut(&CaseSpec) -> Option<String>) -> ShrinkResult {
    let mut reason = fails(case).expect("shrink called on a passing case");
    let mut current = case.clone();
    let mut steps = 0u32;
    let mut attempts = 1u32;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if attempts >= MAX_ATTEMPTS {
                return ShrinkResult {
                    case: current,
                    reason,
                    steps,
                    attempts,
                };
            }
            attempts += 1;
            if let Some(r) = fails(&candidate) {
                current = candidate;
                reason = r;
                steps += 1;
                improved = true;
                break; // restart the candidate list from the smaller case
            }
        }
        if !improved {
            return ShrinkResult {
                case: current,
                reason,
                steps,
                attempts,
            };
        }
    }
}

/// Candidate edits, most aggressive first: structural deletions, then value
/// halving, then policy narrowing.
fn candidates(case: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    if case.n_nodes > 2 {
        let mut c = case.clone();
        c.n_nodes -= 1;
        out.push(c);
    }
    if case.phases.len() > 1 {
        for i in 0..case.phases.len() {
            let mut c = case.clone();
            c.phases.remove(i);
            out.push(c);
        }
    }
    for i in 0..case.phases.len() {
        let p = case.phases[i];
        if p.compute > 0 {
            let mut c = case.clone();
            c.phases[i].compute = 0;
            out.push(c);
            if p.compute > 1 {
                let mut c = case.clone();
                c.phases[i].compute = p.compute / 2;
                out.push(c);
            }
        }
        if p.spread > 0.0 {
            let mut c = case.clone();
            c.phases[i].spread = 0.0;
            out.push(c);
        }
        if p.bytes > 1 {
            let mut c = case.clone();
            c.phases[i].bytes = (p.bytes / 2).max(1);
            out.push(c);
        }
        if p.salt > 0 {
            let mut c = case.clone();
            c.phases[i].salt = 0;
            out.push(c);
        }
    }
    if case.switch_latency_ns > 0 {
        let mut c = case.clone();
        c.switch_latency_ns = 0;
        out.push(c);
    }
    if case.fabric {
        let mut c = case.clone();
        c.fabric = false;
        out.push(c);
    }
    match case.policy {
        PolicySpec::Fixed { micros } if micros > 1 => {
            let mut c = case.clone();
            c.policy = PolicySpec::Fixed {
                micros: (micros / 2).max(1),
            };
            out.push(c);
        }
        PolicySpec::Adaptive { min_us, max_us, .. } if max_us / 2 > min_us => {
            let mut c = case.clone();
            if let PolicySpec::Adaptive { max_us, .. } = &mut c.policy {
                *max_us /= 2;
            }
            out.push(c);
        }
        _ => {}
    }
    out
}

/// The minimized case as pretty JSON (the `.case.json` artifact).
pub fn case_json(case: &CaseSpec) -> String {
    serde_json::to_string_pretty(case).expect("CaseSpec serializes")
}

/// A ready-to-paste Rust regression test that replays the minimized case
/// through the full oracle.
pub fn regression_snippet(case: &CaseSpec, reason: &str) -> String {
    format!(
        "/// Conformance regression (seed {seed:#x}, case {index}).\n\
         /// Original failure: {reason}\n\
         #[test]\n\
         fn conformance_regression_{seed:x}_{index}() {{\n\
        \x20   let case: aqs_check::CaseSpec = serde_json::from_str(\n\
        \x20       r##\"{json}\"##,\n\
        \x20   )\n\
        \x20   .expect(\"case spec parses\");\n\
        \x20   aqs_check::check_case(&case).expect(\"conformance oracle\");\n\
         }}\n",
        seed = case.seed,
        index = case.index,
        reason = reason.replace('\n', " "),
        json = case_json(case),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseSpec;

    /// A synthetic predicate: "fails" while the case still has ≥ 3 nodes
    /// and ≥ 2 phases. The shrinker must find the boundary exactly.
    #[test]
    fn shrinks_to_the_predicate_boundary() {
        let case = CaseSpec::generate(0xBEEF, 3);
        let big = {
            let mut c = case.clone();
            c.n_nodes = 5;
            let p0 = c.phases[0];
            while c.phases.len() < 3 {
                c.phases.push(p0);
            }
            c
        };
        let mut fails =
            |c: &CaseSpec| (c.n_nodes >= 3 && c.phases.len() >= 2).then(|| "synthetic".to_string());
        let r = shrink(&big, &mut fails);
        assert_eq!(r.case.n_nodes, 3, "node count not minimized");
        assert_eq!(r.case.phases.len(), 2, "phase count not minimized");
        assert!(
            r.steps >= 3,
            "expected several accepted steps, got {}",
            r.steps
        );
    }

    #[test]
    #[should_panic(expected = "passing case")]
    fn refuses_a_passing_case() {
        let case = CaseSpec::generate(1, 1);
        shrink(&case, &mut |_| None);
    }

    #[test]
    fn snippet_embeds_replayable_json() {
        let case = CaseSpec::generate(0xA5, 7);
        let snippet = regression_snippet(&case, "differential: something diverged");
        assert!(snippet.contains("conformance_regression_a5_7"));
        let start = snippet.find("r##\"").unwrap() + 4;
        let end = snippet.find("\"##").unwrap();
        let parsed: CaseSpec = serde_json::from_str(&snippet[start..end]).expect("embedded JSON");
        assert_eq!(parsed, case);
    }
}
