//! Seeded generation of conformance cases.
//!
//! A [`CaseSpec`] is a complete, serializable description of one simulation
//! experiment: a random MPI-style program per node, a switch model, and a
//! quantum policy. Case `i` of master seed `s` is always the same spec, on
//! every platform — [`CaseSpec::generate`] draws from
//! [`Rng::substream`]`(s, i)` and nothing else, so a failure report of
//! `(seed, index)` is a complete reproducer.

use aqs_cluster::SimSwitch;
use aqs_core::{AdaptiveConfig, SyncConfig};
use aqs_net::{FabricConfig, LatencyMatrixSwitch};
use aqs_node::Program;
use aqs_rng::Rng;
use aqs_time::SimDuration;
use aqs_workloads::MpiBuilder;
use serde::{Deserialize, Serialize};

/// The collective (or point-to-point pattern) a phase performs after its
/// compute block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Zero-byte rendezvous.
    Barrier,
    /// Reduce-to-root then broadcast.
    Allreduce,
    /// Personalized all-to-all exchange.
    Alltoall,
    /// One-to-all from rank `salt % n`.
    Bcast,
    /// Ring neighbor exchange.
    NeighborExchange,
    /// A single `salt`-selected pair trades one message each way — the
    /// sparsest traffic the generator produces, and the pattern most likely
    /// to put exactly one packet in a quantum.
    PingPong,
}

const PHASE_KINDS: [PhaseKind; 6] = [
    PhaseKind::Barrier,
    PhaseKind::Allreduce,
    PhaseKind::Alltoall,
    PhaseKind::Bcast,
    PhaseKind::NeighborExchange,
    PhaseKind::PingPong,
];

/// One compute-then-communicate phase.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Communication pattern.
    pub kind: PhaseKind,
    /// Mean abstract compute operations per node before communicating.
    pub compute: u64,
    /// Load imbalance across nodes, in `[0, 1)`.
    pub spread: f64,
    /// Deterministic per-phase salt (imbalance pattern, root/pair choice).
    pub salt: u64,
    /// Payload bytes per message of the communication step.
    pub bytes: u64,
}

/// The quantum policy a case runs under (in addition to the ground truth).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Fixed quantum in microseconds.
    Fixed {
        /// Quantum length.
        micros: u64,
    },
    /// The paper's Algorithm 1.
    Adaptive {
        /// Floor, microseconds.
        min_us: u64,
        /// Ceiling, microseconds.
        max_us: u64,
        /// Growth factor.
        inc: f64,
        /// Shrink factor.
        dec: f64,
    },
}

impl PolicySpec {
    /// Builds the engine-facing [`SyncConfig`].
    pub fn sync_config(&self) -> SyncConfig {
        match *self {
            PolicySpec::Fixed { micros } => SyncConfig::fixed_micros(micros),
            PolicySpec::Adaptive {
                min_us,
                max_us,
                inc,
                dec,
            } => SyncConfig::Adaptive(AdaptiveConfig::new(
                SimDuration::from_micros(min_us),
                SimDuration::from_micros(max_us),
                inc,
                dec,
            )),
        }
    }

    /// `(min, max)` bounds every quantum this policy can emit.
    pub fn quantum_bounds(&self) -> (SimDuration, SimDuration) {
        match *self {
            PolicySpec::Fixed { micros } => {
                let q = SimDuration::from_micros(micros);
                (q, q)
            }
            PolicySpec::Adaptive { min_us, max_us, .. } => (
                SimDuration::from_micros(min_us),
                SimDuration::from_micros(max_us),
            ),
        }
    }
}

/// A complete, reproducible conformance case.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Master seed the case was derived from (also seeds the engines).
    pub seed: u64,
    /// Case index within the master seed's stream.
    pub index: u64,
    /// Cluster size.
    pub n_nodes: u32,
    /// Program phases, identical structure on every node.
    pub phases: Vec<PhaseSpec>,
    /// Uniform switch latency in nanoseconds; `0` selects the paper's
    /// perfect switch (and enables the optimistic engine). Ignored when
    /// [`fabric`](Self::fabric) is set (the generator keeps it `0` there).
    pub switch_latency_ns: u64,
    /// Route through a small two-nodes-per-rack fat-tree fabric instead of
    /// a uniform latency: per-link serialization, deterministic ECMP plane
    /// hashing, and epoch-keyed background queueing all in the transit path.
    pub fabric: bool,
    /// Quantum policy for the policy-invariant runs.
    pub policy: PolicySpec,
}

impl CaseSpec {
    /// Generates case `index` of master seed `seed`.
    pub fn generate(seed: u64, index: u64) -> Self {
        let mut rng = Rng::substream(seed, index);
        let n_nodes = rng.range_u64(2..6) as u32;
        let n_phases = rng.range_u64(1..5) as usize;
        let phases = (0..n_phases)
            .map(|_| PhaseSpec {
                kind: *rng.pick(&PHASE_KINDS),
                // Up to ~154 µs of contiguous compute at the default 2.6 GHz
                // CPU — long enough quiet stretches for the adaptive quantum
                // to actually reach its ceiling, so ceiling bugs are
                // reachable by generated cases.
                compute: rng.range_u64(0..400_000),
                spread: rng.range_f64(0.0, 0.9),
                salt: rng.next_u64() >> 1,
                bytes: rng.range_u64(1..16_000),
            })
            .collect();
        // 60 % perfect switch so the optimistic engine joins the vote; the
        // rest split between the latency-matrix and fat-tree fabric paths.
        let (switch_latency_ns, fabric) = if rng.bernoulli(0.6) {
            (0, false)
        } else if rng.bernoulli(0.5) {
            (rng.range_u64(1_000..4_000), false)
        } else {
            (0, true)
        };
        let policy = if rng.bernoulli(0.4) {
            PolicySpec::Fixed {
                micros: *rng.pick(&[1u64, 5, 20, 100, 1000]),
            }
        } else {
            let min_us = *rng.pick(&[1u64, 2]);
            PolicySpec::Adaptive {
                min_us,
                max_us: *rng.pick(&[20u64, 100, 1000]),
                inc: *rng.pick(&[1.02f64, 1.05, 1.1, 1.2]),
                dec: *rng.pick(&[0.02f64, 0.1, 0.3]),
            }
        };
        CaseSpec {
            seed,
            index,
            n_nodes,
            phases,
            switch_latency_ns,
            fabric,
            policy,
        }
    }

    /// Builds one program per node.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (`n_nodes < 2` or no phases) — the
    /// generator never produces such specs and the shrinker never leaves
    /// them behind.
    pub fn programs(&self) -> Vec<Program> {
        let n = self.n_nodes as usize;
        assert!(n >= 2, "conformance cases need at least two nodes");
        assert!(!self.phases.is_empty(), "conformance cases need a phase");
        let mut b = MpiBuilder::new(n);
        for p in &self.phases {
            if p.compute > 0 {
                b.compute_all_imbalanced(p.compute, p.spread, p.salt);
            }
            match p.kind {
                PhaseKind::Barrier => b.barrier(),
                PhaseKind::Allreduce => b.allreduce(p.bytes, 16),
                PhaseKind::Alltoall => b.alltoall(p.bytes),
                PhaseKind::Bcast => b.bcast((p.salt % n as u64) as usize, p.bytes),
                PhaseKind::NeighborExchange => {
                    b.neighbor_exchange(&[1], p.bytes);
                }
                PhaseKind::PingPong => {
                    let src = (p.salt % n as u64) as usize;
                    let dst = (src + 1 + (p.salt / 7 % (n as u64 - 1)) as usize) % n;
                    b.p2p(src, dst, p.bytes);
                    b.p2p(dst, src, p.bytes);
                }
            }
        }
        b.build()
    }

    /// The engine-facing switch model.
    pub fn switch(&self) -> SimSwitch {
        if self.fabric {
            // Two nodes per rack and two uplink planes: even the smallest
            // generated cluster (n = 3) crosses racks, exercising the full
            // uplink/downlink path and the ECMP plane hash.
            SimSwitch::Fabric(
                FabricConfig::fat_tree()
                    .with_rack_size(2)
                    .with_uplinks_per_rack(2),
            )
        } else if self.switch_latency_ns == 0 {
            SimSwitch::Perfect
        } else {
            SimSwitch::LatencyMatrix(LatencyMatrixSwitch::uniform(
                self.n_nodes as usize,
                SimDuration::from_nanos(self.switch_latency_ns),
            ))
        }
    }

    /// Whether the optimistic engine can run this case (perfect switch
    /// only).
    pub fn optimistic_ok(&self) -> bool {
        self.switch_latency_ns == 0 && !self.fabric
    }

    /// A compact human-readable tag for logs: `seed/index`.
    pub fn tag(&self) -> String {
        format!("{:#x}/{}", self.seed, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..32 {
            assert_eq!(CaseSpec::generate(0xA5, i), CaseSpec::generate(0xA5, i));
        }
        assert_ne!(CaseSpec::generate(0xA5, 0), CaseSpec::generate(0xA5, 1));
        assert_ne!(CaseSpec::generate(0xA5, 0), CaseSpec::generate(0xA6, 0));
    }

    #[test]
    fn generated_specs_are_well_formed() {
        for i in 0..64 {
            let c = CaseSpec::generate(7, i);
            assert!((2..=5).contains(&c.n_nodes));
            assert!(!c.phases.is_empty() && c.phases.len() <= 4);
            for p in &c.phases {
                assert!(p.bytes >= 1 && p.bytes < 16_000);
                assert!((0.0..0.9).contains(&p.spread));
            }
            let progs = c.programs();
            assert_eq!(progs.len(), c.n_nodes as usize);
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        for i in 0..16 {
            let c = CaseSpec::generate(11, i);
            let json = serde_json::to_string(&c).expect("serialize");
            let back: CaseSpec = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(c, back);
        }
    }
}
