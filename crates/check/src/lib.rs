//! # aqs-check — differential conformance harness
//!
//! Golden-file-free testing for the three engines. The harness generates
//! random but fully reproducible cases (program × topology × switch ×
//! policy), runs each through the deterministic, threaded, and optimistic
//! engines, and decides pass/fail from two kinds of evidence:
//!
//! * a **differential oracle**: under the safe 1 µs quantum every engine
//!   must produce a bit-identical [`aqs_cluster::SimulatedOutcome`];
//! * **invariant oracles** on the policy runs, where engines legitimately
//!   dilate time: quantum bounds, Algorithm 1's grow/shrink direction,
//!   packet conservation, the straggler delay bound, and
//!   stragglers-vs-dilation consistency.
//!
//! A failure is shrunk to a local minimum and reported as `(seed, index)`
//! plus a `.case.json` artifact and a ready-to-paste regression test —
//! see [`shrink()`], [`case_json`], and [`regression_snippet`].
//!
//! Two cargo features extend the harness into the engine crates (they are
//! *forwarding* features — plain builds compile none of it):
//!
//! * `schedule-fuzz` arms randomized mailbox drain order and jittered
//!   barrier arrivals in the threaded engine (`check_case_fuzzed`);
//! * `fault-inject` compiles deliberate, runtime-armed faults used by the
//!   mutation tests to prove the oracles actually detect bugs.
//!
//! Entry points: [`check_case`] for one case, [`run_conformance`] for a
//! campaign (also exposed as `aqs check` and the `conformance` binary).

pub mod cli;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use gen::{CaseSpec, PhaseKind, PhaseSpec, PolicySpec};
#[cfg(feature = "schedule-fuzz")]
pub use oracle::check_case_fuzzed;
pub use oracle::{check_case, check_case_with, CheckOpts};
pub use runner::{run_conformance, CaseFailure, ConformanceOpts, ConformanceReport};
pub use shrink::{case_json, regression_snippet, shrink, ShrinkResult};
