//! Global-virtual-time reduction for the sharded optimistic engine.
//!
//! Each shard publishes its local virtual time (LVT) into a cache-padded
//! slot; the tree-barrier leader reduces the minimum inside its exclusive
//! closure and commits the result into a monotone GVT cell. The cell refuses
//! to move backwards, so a correct engine produces a non-decreasing GVT
//! trace by construction and the rollback-property oracle only has to check
//! the published trace, not re-derive it.

use crate::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard LVT slots plus a monotone GVT cell, reduced by the barrier
/// leader.
///
/// Workers call [`publish_lvt`](GvtReduction::publish_lvt) before arriving at
/// the barrier; the leader (inside its exclusive closure, so the barrier's
/// release/acquire edges make every slot visible) calls
/// [`reduce`](GvtReduction::reduce) to fold the minimum and advance the GVT
/// cell.
#[derive(Debug)]
pub struct GvtReduction {
    lvt: Vec<CachePadded<AtomicU64>>,
    gvt: AtomicU64,
}

impl GvtReduction {
    /// A reduction over `shards` participants, GVT starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "gvt reduction needs at least one shard");
        GvtReduction {
            lvt: (0..shards)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            gvt: AtomicU64::new(0),
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.lvt.len()
    }

    /// Publishes shard `id`'s local virtual time for the round being closed.
    ///
    /// Relaxed store: callers publish before a barrier arrival whose AcqRel
    /// chain the leader acquires, exactly like the barrier's own timed
    /// arrival slots.
    pub fn publish_lvt(&self, id: usize, lvt_ns: u64) {
        self.lvt[id].store(lvt_ns, Ordering::Relaxed);
    }

    /// Shard `id`'s last published LVT.
    pub fn lvt(&self, id: usize) -> u64 {
        self.lvt[id].load(Ordering::Relaxed)
    }

    /// Leader-only: reduces the minimum over every shard's published LVT,
    /// advances the monotone GVT cell to it, and returns the (possibly
    /// unchanged) committed GVT.
    ///
    /// The cell never moves backwards: a reduction below the current GVT
    /// leaves it in place, so the sequence of returned values is
    /// non-decreasing regardless of what the shards publish.
    pub fn reduce(&self) -> u64 {
        let min = self
            .lvt
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");
        let cur = self.gvt.load(Ordering::Relaxed);
        if min > cur {
            self.gvt.store(min, Ordering::Relaxed);
            min
        } else {
            cur
        }
    }

    /// The last committed GVT.
    pub fn gvt(&self) -> u64 {
        self.gvt.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_takes_the_minimum_lvt() {
        let g = GvtReduction::new(3);
        g.publish_lvt(0, 30);
        g.publish_lvt(1, 10);
        g.publish_lvt(2, 20);
        assert_eq!(g.reduce(), 10);
        assert_eq!(g.gvt(), 10);
        assert_eq!(g.shards(), 3);
        assert_eq!(g.lvt(1), 10);
    }

    #[test]
    fn gvt_never_moves_backwards() {
        let g = GvtReduction::new(2);
        g.publish_lvt(0, 100);
        g.publish_lvt(1, 100);
        assert_eq!(g.reduce(), 100);
        // A stale (lower) publication must not drag GVT back.
        g.publish_lvt(0, 40);
        assert_eq!(g.reduce(), 100);
        assert_eq!(g.gvt(), 100);
        // Progress resumes once every shard moves past the old GVT.
        g.publish_lvt(0, 150);
        g.publish_lvt(1, 120);
        assert_eq!(g.reduce(), 120);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = GvtReduction::new(0);
    }
}
