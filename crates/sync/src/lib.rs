//! Lock-free synchronization primitives for the threaded cluster engine.
//!
//! `aqs-cluster` forbids `unsafe`, so the primitives that need it live here,
//! behind safe APIs sized exactly to the quantum-synchronous engine:
//!
//! * [`Mailbox`] — a multi-producer single-consumer intrusive list. Producers
//!   push with a single compare-and-swap; the owning consumer detaches the
//!   whole list with one atomic swap and drains it in push order. No mutex,
//!   no allocation beyond one node per message — and with a [`MailboxPool`]
//!   the nodes themselves are recycled, so a steady-state push/drain cycle
//!   performs zero heap allocations. A [`PoolDepot`] shared by a group of
//!   pools closes the loop for *directional* traffic (incast): a receiver's
//!   overflow is donated to the depot in batches instead of freed, and a
//!   starved sender refills from it before touching the heap.
//! * [`LeaderBarrier`] — an epoch-based (sense-reversing) barrier. The last
//!   thread to arrive becomes the leader, gets exclusive `&mut` access to the
//!   barrier's leader state (e.g. the quantum policy), and publishes the next
//!   epoch with a single release store that doubles as the handshake for
//!   whatever the leader wrote.
//! * [`TreeBarrier`] — the same leader contract folded over two levels
//!   (participants combine within fixed groups, group representatives meet at
//!   the root), so wide barriers don't funnel every arrival through one
//!   contended counter.
//! * [`GvtReduction`] — per-shard local-virtual-time slots plus a monotone
//!   global-virtual-time cell, reduced by the barrier leader inside its
//!   exclusive closure (the sharded optimistic engine's commit handshake).
//! * [`CachePadded`] — pads per-thread hot counters to their own cache line.
//!
//! Both barriers spin briefly before yielding; the spin budget is tunable via
//! the `AQS_SPIN_BUDGET` environment variable (see [`spin_budget`]) and
//! defaults low on single-core hosts where spinning only delays the leader.
//!
//! Memory-ordering arguments are documented inline at each unsafe block.

#![deny(missing_docs)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub mod gvt;
pub use gvt::GvtReduction;

#[cfg(feature = "schedule-fuzz")]
pub mod fuzz;

#[cfg(feature = "fault-inject")]
pub mod fault;

/// Pads (and aligns) a value to 128 bytes so neighbouring slots in a
/// `Vec<CachePadded<_>>` never share a cache line (128 covers the spatial
/// prefetcher pairing lines on x86 and the 128-byte lines on some ARM).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(
    /// The padded value; also reachable through `Deref`/`DerefMut`.
    pub T,
);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Spin budget
// ---------------------------------------------------------------------------

/// Number of busy-wait iterations a barrier waiter performs before falling
/// back to `yield_now`.
///
/// Resolved once per process from the `AQS_SPIN_BUDGET` environment variable;
/// when unset (or unparsable) it defaults to 128 on multi-core hosts and 1
/// when `available_parallelism()` reports a single core — there, the thread
/// holding the work we are waiting for cannot make progress until we yield,
/// so spinning just burns the timeslice.
pub fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Ok(s) = std::env::var("AQS_SPIN_BUDGET") {
            if let Ok(v) = s.trim().parse::<u32>() {
                return v;
            }
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores <= 1 {
            1
        } else {
            128
        }
    })
}

/// Spin-then-yield until `epoch` moves past `seen`, honouring [`spin_budget`].
fn spin_wait_for_epoch(epoch: &AtomicU64, seen: u64) {
    let budget = spin_budget();
    let mut spins = 0u32;
    while epoch.load(Ordering::Acquire) == seen {
        spins = spins.saturating_add(1);
        if spins < budget {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

struct MailboxNode<T> {
    /// Uninitialized while the node sits in a [`MailboxPool`] free list;
    /// initialized for the whole window a node is reachable from a mailbox.
    value: MaybeUninit<T>,
    next: *mut MailboxNode<T>,
}

/// An exclusively-owned free list of mailbox nodes.
///
/// Pools make the mailbox hot path allocation-free: `push_pooled` takes its
/// node from the caller's pool and `drain_into_pooled` returns drained nodes
/// to the drainer's pool, so in a steady push/drain cycle no `Box` traffic
/// remains. Each pool is owned by exactly one thread (all methods take
/// `&mut self`), which sidesteps the ABA hazard a *shared* lock-free free
/// list would have: a node is never simultaneously reachable from a mailbox
/// and a free list.
///
/// The pool holds at most `cap` spare nodes; releases beyond the cap free the
/// node instead, bounding idle memory.
///
/// # Examples
///
/// ```
/// use aqs_sync::{Mailbox, MailboxPool};
///
/// let mb = Mailbox::new();
/// let mut pool = MailboxPool::with_capacity(64);
/// let mut out = Vec::new();
/// for round in 0..100u32 {
///     mb.push_pooled(round, &mut pool);
///     mb.drain_into_pooled(&mut out, &mut pool);
/// }
/// // One allocation on the first push; every later round reused its node.
/// assert_eq!(pool.heap_allocs(), 1);
/// ```
pub struct MailboxPool<T> {
    free: *mut MailboxNode<T>,
    len: usize,
    cap: usize,
    /// Spare nodes kept local when donating to the depot; surplus beyond
    /// `2 × retain` is surrendered. See [`set_retain`](Self::set_retain).
    retain: usize,
    allocs: u64,
    depot: Option<Arc<PoolDepot<T>>>,
}

// SAFETY: the pool owns its free nodes exclusively (their values are
// uninitialized, so there is no payload to race on) and is only usable
// through `&mut self`; moving it to another thread is safe whenever the
// payload type itself may cross threads.
unsafe impl<T: Send> Send for MailboxPool<T> {}

impl<T> MailboxPool<T> {
    /// Default spare-node cap: comfortably above any per-quantum burst the
    /// engines generate, small enough to be irrelevant memory-wise.
    pub const DEFAULT_CAP: usize = 4096;

    /// A pool that retains at most `cap` spare nodes.
    pub fn with_capacity(cap: usize) -> Self {
        MailboxPool {
            free: ptr::null_mut(),
            len: 0,
            cap,
            retain: cap / 2,
            allocs: 0,
            depot: None,
        }
    }

    /// A pool that retains at most `cap` spare nodes and overflows into (and
    /// refills from) `depot` instead of the heap. The initial retain
    /// watermark is `cap / 2` (donation at `cap`, like plain overflow);
    /// callers with a per-round demand signal should tighten it with
    /// [`set_retain`](Self::set_retain).
    ///
    /// Attach every pool in a push/drain group to the same depot when the
    /// traffic between them is directional: without one, each drain migrates
    /// nodes into the receiver's pool for good, and the sender re-allocates
    /// every message once its own free list runs dry.
    pub fn with_depot(cap: usize, depot: Arc<PoolDepot<T>>) -> Self {
        MailboxPool {
            free: ptr::null_mut(),
            len: 0,
            cap,
            retain: cap / 2,
            allocs: 0,
            depot: Some(depot),
        }
    }

    /// Sets the retain watermark: with a depot attached, a release that
    /// finds more than `2 × retain` spare nodes donates the surplus down to
    /// `retain` (clamped to `cap / 2`).
    ///
    /// The right watermark is the caller's own push demand per round: a
    /// pool that keeps what *it* pushes is self-sufficient under balanced
    /// traffic (no depot round trips, no cross-thread timing races), while
    /// a net *receiver* — whose drains exceed its pushes — surrenders the
    /// surplus promptly instead of hoarding it up to `cap` while the
    /// sending threads fall back to the heap.
    pub fn set_retain(&mut self, retain: usize) {
        self.retain = retain.min(self.cap / 2);
    }

    /// A pool with [`DEFAULT_CAP`](Self::DEFAULT_CAP) spare nodes.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// Spare nodes currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no spare node is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap allocations performed on this pool's behalf so far — the
    /// steady-state count must stop growing once the working set is warm.
    pub fn heap_allocs(&self) -> u64 {
        self.allocs
    }

    /// Pops a spare node or allocates a fresh one (refilling from the depot
    /// first when one is attached). The returned node's value is
    /// uninitialized; `next` is unspecified.
    fn acquire(&mut self) -> *mut MailboxNode<T> {
        if self.free.is_null() {
            if let Some(depot) = &self.depot {
                if let Some(seg) = depot.take_segment() {
                    self.free = seg.head;
                    self.len = seg.len;
                }
            }
            if self.free.is_null() {
                self.allocs += 1;
                return Box::into_raw(Box::new(MailboxNode {
                    value: MaybeUninit::uninit(),
                    next: ptr::null_mut(),
                }));
            }
        }
        let node = self.free;
        // SAFETY: `free` nodes are exclusively ours; the chain is well formed.
        self.free = unsafe { (*node).next };
        self.len -= 1;
        node
    }

    /// Returns a value-less node to the free list; past the cap the surplus
    /// is donated to the depot (when attached) or the node is freed.
    ///
    /// # Safety
    ///
    /// `node` must have been produced by `acquire` (directly or via a
    /// mailbox drain), must not be reachable from any mailbox, and its value
    /// must already have been moved out or dropped.
    unsafe fn release(&mut self, node: *mut MailboxNode<T>) {
        if self.depot.is_some() && self.len >= self.retain.saturating_mul(2).max(1) {
            // Keep the head `retain` nodes (most recently recycled,
            // cache-warm) and hand the tail to the depot in one batch; the
            // walk to the cut point is O(retain) but amortized over the
            // releases it took to cross the watermark — O(1) per release.
            let depot = self.depot.clone().expect("checked above");
            self.donate_tail(&depot, self.retain);
        }
        if self.len >= self.cap {
            // No depot (or a watermark pinned at the cap): free the node.
            // SAFETY: caller guarantees the node came from Box::into_raw
            // and holds no live value, so dropping the box frees just the
            // node.
            drop(unsafe { Box::from_raw(node) });
            return;
        }
        // SAFETY: we own the node; threading it onto our private list.
        unsafe { (*node).next = self.free };
        self.free = node;
        self.len += 1;
    }

    /// Splits the free list after `keep` nodes and donates the tail to
    /// `depot` as one segment. No-op when the list is not longer than `keep`.
    fn donate_tail(&mut self, depot: &PoolDepot<T>, keep: usize) {
        if self.len <= keep {
            return;
        }
        let seg_len = self.len - keep;
        let head = if keep == 0 {
            let head = self.free;
            self.free = ptr::null_mut();
            head
        } else {
            let mut p = self.free;
            for _ in 1..keep {
                // SAFETY: the first `keep` nodes of our exclusively-owned
                // free list are live; the chain is well formed.
                p = unsafe { (*p).next };
            }
            // SAFETY: as above; cutting the chain after the `keep`-th node.
            let head = unsafe { (*p).next };
            unsafe { (*p).next = ptr::null_mut() };
            head
        };
        self.len = keep;
        depot.put_segment(DepotSegment { head, len: seg_len });
    }
}

impl<T> Default for MailboxPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MailboxPool<T> {
    fn drop(&mut self) {
        let mut p = self.free;
        while !p.is_null() {
            // SAFETY: free-list nodes are exclusively ours and hold no value;
            // each is visited exactly once.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
        }
    }
}

/// A batch of value-less nodes in depot custody: a null-terminated chain
/// with its length, so hand-offs never walk it.
struct DepotSegment<T> {
    head: *mut MailboxNode<T>,
    len: usize,
}

/// A shared overflow store that rebalances nodes between [`MailboxPool`]s.
///
/// Per-thread pools are allocation-free only while each thread's push and
/// drain volumes balance. Under *directional* traffic — many senders
/// converging on one receiver (incast) — every drained node lands in the
/// receiver's pool, overflows its cap, and (without a depot) is freed, while
/// the senders' pools run dry and re-allocate each message: a steady-state
/// heap leak proportional to traffic. A depot shared by the group closes the
/// cycle: overflow is donated in half-cap batches, and a pool whose free
/// list runs dry refills from the depot before falling back to the heap.
///
/// All transfers are whole segments under one brief mutex hold — the lock
/// sits on the overflow/starvation path only, never on the per-message hot
/// path. The depot retains at most `cap` nodes; donations beyond that are
/// freed, bounding idle memory exactly like the per-pool cap does.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use aqs_sync::{Mailbox, MailboxPool, PoolDepot};
///
/// let depot = Arc::new(PoolDepot::new());
/// let mb = Mailbox::new();
/// let mut sender = MailboxPool::with_depot(8, Arc::clone(&depot));
/// let mut receiver = MailboxPool::with_depot(8, Arc::clone(&depot));
/// for round in 0..100u32 {
///     for i in 0..32 {
///         mb.push_pooled(round * 32 + i, &mut sender);
///     }
///     let mut out = Vec::new();
///     mb.drain_into_pooled(&mut out, &mut receiver);
/// }
/// // Every node the receiver overflowed came back through the depot: the
/// // sender allocated only the warm-up working set, not 3200 nodes.
/// assert!(sender.heap_allocs() < 100);
/// ```
pub struct PoolDepot<T> {
    inner: Mutex<DepotInner<T>>,
    cap: usize,
}

struct DepotInner<T> {
    segments: Vec<DepotSegment<T>>,
    len: usize,
}

// SAFETY: depot nodes hold no value (their `MaybeUninit` slots are vacant
// between `release` and the next `push_pooled`), so the only state crossing
// threads is the node allocations themselves, guarded by the mutex; the
// `T: Send` bound mirrors `MailboxPool`'s, under which nodes are moved
// between threads in the first place.
unsafe impl<T: Send> Send for PoolDepot<T> {}
unsafe impl<T: Send> Sync for PoolDepot<T> {}

impl<T> PoolDepot<T> {
    /// Default node cap: generous enough to recirculate a large incast
    /// working set across a worker group, small enough to bound idle memory.
    pub const DEFAULT_CAP: usize = 1 << 20;

    /// A depot that retains at most `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        PoolDepot {
            inner: Mutex::new(DepotInner {
                segments: Vec::new(),
                len: 0,
            }),
            cap,
        }
    }

    /// A depot with [`DEFAULT_CAP`](Self::DEFAULT_CAP) nodes.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// Nodes currently in depot custody (takes the lock; diagnostic only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("depot poisoned").len
    }

    /// True if the depot holds no node.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accepts a donated segment, or frees it when the cap is reached.
    fn put_segment(&self, seg: DepotSegment<T>) {
        {
            let mut inner = self.inner.lock().expect("depot poisoned");
            if inner.len + seg.len <= self.cap {
                inner.len += seg.len;
                inner.segments.push(seg);
                return;
            }
        }
        // Over cap: free outside the lock.
        free_chain(seg.head);
    }

    /// Hands out one whole segment, LIFO (the most recently donated nodes
    /// are the most likely to still be cache-resident somewhere useful).
    fn take_segment(&self) -> Option<DepotSegment<T>> {
        let mut inner = self.inner.lock().expect("depot poisoned");
        let seg = inner.segments.pop()?;
        inner.len -= seg.len;
        Some(seg)
    }
}

impl<T> Default for PoolDepot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for PoolDepot<T> {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().expect("depot poisoned");
        for seg in inner.segments.drain(..) {
            free_chain(seg.head);
        }
    }
}

/// Frees a null-terminated chain of value-less nodes.
fn free_chain<T>(mut p: *mut MailboxNode<T>) {
    while !p.is_null() {
        // SAFETY: chain nodes are exclusively ours (detached from every pool
        // and mailbox) and hold no value; each is visited exactly once.
        let node = unsafe { Box::from_raw(p) };
        p = node.next;
    }
}

/// Lock-free multi-producer mailbox, drained wholesale by its owning thread.
///
/// Producers CAS new nodes onto the head (a Treiber push); the consumer swaps
/// the head to null and reverses the detached chain, recovering exact global
/// push order (the linearization order of the CASes). Any thread may push;
/// draining is safe from any single thread at a time — in the engine only
/// the owning node thread drains.
pub struct Mailbox<T> {
    head: AtomicPtr<MailboxNode<T>>,
}

// SAFETY: the mailbox hands values across threads by pointer; this is exactly
// a channel, so it is Send/Sync whenever the payload is Send.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes a value; lock-free, callable from any thread.
    ///
    /// Allocates one node per call. Hot paths should prefer
    /// [`push_pooled`](Self::push_pooled), which recycles drained nodes.
    pub fn push(&self, value: T) {
        let mut pool = MailboxPool::with_capacity(0);
        self.push_pooled(value, &mut pool);
    }

    /// Pushes a value using a node from `pool` when one is available;
    /// lock-free, callable from any thread holding its own pool.
    pub fn push_pooled(&self, value: T, pool: &mut MailboxPool<T>) {
        #[cfg(feature = "fault-inject")]
        if fault::mailbox_should_drop() {
            drop(value);
            return;
        }
        let node = pool.acquire();
        // SAFETY: `node` is not yet published, so writing its fields is
        // unsynchronized by construction; `acquire` hands us an exclusively
        // owned node whose value slot is uninitialized.
        unsafe {
            (*node).value = MaybeUninit::new(value);
            (*node).next = ptr::null_mut();
        }
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: still unpublished (the CAS below has not succeeded).
            unsafe { (*node).next = head };
            // Release: the consumer's Acquire swap must observe `value` and
            // `next` fully written before the node becomes reachable.
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Detaches everything pushed so far and appends it to `out` in push
    /// order. One atomic swap; never blocks producers.
    ///
    /// With the `schedule-fuzz` feature enabled **and** `fuzz::arm`-ed, the
    /// newly drained batch is shuffled before it is appended — consumers
    /// must not depend on intra-batch order for correctness.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let mut pool = MailboxPool::with_capacity(0);
        self.drain_into_pooled(out, &mut pool);
    }

    /// [`drain_into`](Self::drain_into), recycling the drained nodes into
    /// `pool` (up to its cap) instead of freeing them.
    pub fn drain_into_pooled(&self, out: &mut Vec<T>, pool: &mut MailboxPool<T>) {
        #[cfg(feature = "schedule-fuzz")]
        let drained_from = out.len();
        // Acquire pairs with the Release CAS in `push_pooled`: after the swap
        // we own the whole detached chain and every node is fully written.
        let mut p = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if p.is_null() {
            return;
        }
        // Reverse in place: the chain is most-recent-first.
        let mut prev: *mut MailboxNode<T> = ptr::null_mut();
        while !p.is_null() {
            // SAFETY: nodes in the detached chain are exclusively ours.
            let next = unsafe { (*p).next };
            unsafe { (*p).next = prev };
            prev = p;
            p = next;
        }
        let mut p = prev;
        while !p.is_null() {
            // SAFETY: each node is visited exactly once; its value was
            // initialized by `push_pooled` and is moved out here, leaving the
            // node value-less as `release` requires.
            unsafe {
                let next = (*p).next;
                out.push((*p).value.assume_init_read());
                pool.release(p);
                p = next;
            }
        }
        #[cfg(feature = "schedule-fuzz")]
        fuzz::shuffle_tail(out, drained_from);
    }

    /// True if no message is pending (racy by nature; exact only when all
    /// producers are quiescent, e.g. after a barrier).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let mut sink = Vec::new();
        self.drain_into(&mut sink);
    }
}

// ---------------------------------------------------------------------------
// LeaderBarrier
// ---------------------------------------------------------------------------

/// Epoch-based barrier with a leader phase.
///
/// All `n` participants call [`arrive`](LeaderBarrier::arrive) once per
/// round. The last arriver runs the supplied closure with `&mut` access to
/// the shared leader state `S`, then publishes the next epoch; the others
/// wait for the epoch to advance. A single release-store of the epoch is the
/// entire handshake: anything the leader wrote (to `S` or to outside atomics)
/// is visible to every participant that observed the new epoch.
pub struct LeaderBarrier<S> {
    n: usize,
    count: CachePadded<AtomicUsize>,
    epoch: CachePadded<AtomicU64>,
    /// Per-participant arrival timestamps for [`arrive_timed`]
    /// (LeaderBarrier::arrive_timed); untouched by plain `arrive`.
    arrivals: Vec<CachePadded<AtomicU64>>,
    state: UnsafeCell<S>,
}

/// Read-only view of every participant's arrival timestamp for the round
/// being closed, handed to the leader closure of
/// [`LeaderBarrier::arrive_timed`].
pub struct ArrivalTimes<'a> {
    slots: &'a [CachePadded<AtomicU64>],
}

impl ArrivalTimes<'_> {
    /// Number of participants.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: a barrier has at least one participant.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Arrival timestamp participant `i` published this round.
    ///
    /// Relaxed load: each participant's store is ordered before its AcqRel
    /// `count` increment, and the leader's own increment acquires the whole
    /// RMW chain, so every slot is visible by the time the closure runs.
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }
}

// SAFETY: `state` is only touched inside the leader closure, which the
// barrier protocol runs on exactly one thread per epoch, with a release/
// acquire edge (the epoch store) between successive leaders. That makes the
// UnsafeCell access exclusive, so the container is Sync whenever S is Send.
unsafe impl<S: Send> Sync for LeaderBarrier<S> {}

impl<S> LeaderBarrier<S> {
    /// A barrier for `n` participants with leader-owned `state`.
    pub fn new(n: usize, state: S) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        LeaderBarrier {
            n,
            count: CachePadded::new(AtomicUsize::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
            arrivals: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            state: UnsafeCell::new(state),
        }
    }

    /// Current epoch (rounds completed). Mostly useful for diagnostics.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Consumes the barrier and returns the leader state — for reading the
    /// final tallies once every participant has been joined.
    pub fn into_state(self) -> S {
        self.state.into_inner()
    }

    /// [`arrive`](Self::arrive) with a barrier-wait timing hook: the caller
    /// publishes its arrival timestamp (any monotonic nanosecond clock) and
    /// the leader closure additionally receives every participant's
    /// timestamp for the round, so it can compute per-thread barrier waits
    /// (`leader arrival − thread arrival`) without any extra
    /// synchronization. Costs one relaxed store over `arrive`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn arrive_timed<F: FnOnce(&mut S, ArrivalTimes<'_>)>(
        &self,
        id: usize,
        now_ns: u64,
        leader: F,
    ) -> bool {
        // Relaxed is enough: this store is ordered before our AcqRel
        // fetch_add in `arrive`, and the leader's fetch_add acquires the
        // whole RMW chain, so the slot is visible inside the closure.
        self.arrivals[id].store(now_ns, Ordering::Relaxed);
        self.arrive(|state| {
            leader(
                state,
                ArrivalTimes {
                    slots: &self.arrivals,
                },
            )
        })
    }

    /// Arrives at the barrier; returns `true` on the thread that acted as
    /// leader for this round. `leader` runs exactly once per round, after
    /// every participant has arrived and before any is released.
    ///
    /// With the `schedule-fuzz` feature enabled **and** `fuzz::arm`-ed, a
    /// pseudo-random jitter delay is inserted before the arrival so the
    /// arrival order (and hence leader election) varies between runs.
    pub fn arrive<F: FnOnce(&mut S)>(&self, leader: F) -> bool {
        #[cfg(feature = "schedule-fuzz")]
        fuzz::jitter();
        let epoch = self.epoch.load(Ordering::Acquire);
        // AcqRel: acquire every arriving thread's prior writes (their quantum
        // work) on the thread that becomes leader; release ours to it.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // SAFETY: we are the n-th arriver of this epoch, so no other
            // thread is past its own fetch_add and none touches `state`
            // until we bump the epoch; the previous leader's access
            // happened-before ours via the epoch release/acquire edge.
            leader(unsafe { &mut *self.state.get() });
            // Reset before the epoch bump: waiters re-enter arrive() only
            // after observing the new epoch, which orders this store first.
            self.count.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            // Short spin for the common fast hand-off, then yield: the test
            // and CI machines may have fewer cores than node threads, where
            // pure spinning would stall the leader for a whole timeslice.
            // The budget is tunable via AQS_SPIN_BUDGET (see `spin_budget`).
            spin_wait_for_epoch(&self.epoch, epoch);
            false
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for LeaderBarrier<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderBarrier")
            .field("n", &self.n)
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// TreeBarrier
// ---------------------------------------------------------------------------

/// Hierarchical two-level barrier with the [`LeaderBarrier`] leader contract.
///
/// Participants are split into fixed contiguous groups. Each arrival combines
/// on its group's counter; the last arriver of a group proceeds to the root
/// counter; the last group representative at the root becomes the leader,
/// runs the closure with exclusive `&mut` access to `S`, and publishes the
/// next epoch. Two small counters replace one counter shared by all `n`
/// threads, so wide barriers (many shards) don't serialize every arrival on
/// a single contended cache line.
///
/// Unlike [`LeaderBarrier::arrive`], [`arrive`](TreeBarrier::arrive) takes
/// the participant id (needed to find the group).
pub struct TreeBarrier<S> {
    n: usize,
    group_size: usize,
    n_groups: usize,
    group_counts: Vec<CachePadded<AtomicUsize>>,
    root_count: CachePadded<AtomicUsize>,
    epoch: CachePadded<AtomicU64>,
    arrivals: Vec<CachePadded<AtomicU64>>,
    state: UnsafeCell<S>,
}

// SAFETY: same argument as LeaderBarrier — `state` is only touched by the
// unique root leader of each epoch, with a release/acquire edge (the epoch
// store) between successive leaders.
unsafe impl<S: Send> Sync for TreeBarrier<S> {}

impl<S> TreeBarrier<S> {
    /// A barrier for `n` participants with a near-square group fan-in
    /// (`group_size ≈ √n`), which minimizes the worst contended counter.
    pub fn new(n: usize, state: S) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        let group_size = (1..).find(|g| g * g >= n).expect("unreachable");
        Self::with_group_size(n, group_size, state)
    }

    /// A barrier for `n` participants in groups of `group_size` (the last
    /// group may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `group_size` is zero.
    pub fn with_group_size(n: usize, group_size: usize, state: S) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        assert!(group_size >= 1, "group size must be positive");
        let n_groups = n.div_ceil(group_size);
        TreeBarrier {
            n,
            group_size,
            n_groups,
            group_counts: (0..n_groups)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            root_count: CachePadded::new(AtomicUsize::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
            arrivals: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            state: UnsafeCell::new(state),
        }
    }

    /// Current epoch (rounds completed).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Consumes the barrier and returns the leader state.
    pub fn into_state(self) -> S {
        self.state.into_inner()
    }

    fn group_len(&self, g: usize) -> usize {
        let start = g * self.group_size;
        self.group_size.min(self.n - start)
    }

    /// [`arrive`](Self::arrive) with the same barrier-wait timing hook as
    /// [`LeaderBarrier::arrive_timed`].
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn arrive_timed<F: FnOnce(&mut S, ArrivalTimes<'_>)>(
        &self,
        id: usize,
        now_ns: u64,
        leader: F,
    ) -> bool {
        // Relaxed is enough: ordered before our AcqRel group fetch_add, and
        // the leader acquires both RMW chains (group, then root) before the
        // closure runs.
        self.arrivals[id].store(now_ns, Ordering::Relaxed);
        self.arrive(id, |state| {
            leader(
                state,
                ArrivalTimes {
                    slots: &self.arrivals,
                },
            )
        })
    }

    /// Arrives at the barrier as participant `id`; returns `true` on the
    /// thread that acted as leader for this round. `leader` runs exactly once
    /// per round, after every participant has arrived and before any is
    /// released.
    ///
    /// With the `schedule-fuzz` feature enabled **and** `fuzz::arm`-ed, a
    /// pseudo-random jitter delay is inserted before the arrival.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn arrive<F: FnOnce(&mut S)>(&self, id: usize, leader: F) -> bool {
        assert!(id < self.n, "participant id out of range");
        #[cfg(feature = "schedule-fuzz")]
        fuzz::jitter();
        let epoch = self.epoch.load(Ordering::Acquire);
        let g = id / self.group_size;
        // AcqRel at both levels: a group's last arriver acquires every group
        // member's prior writes through the group counter's RMW chain and
        // releases them into its root fetch_add; the root's last arriver
        // acquires the root chain and therefore, transitively, everything
        // every participant wrote before arriving.
        if self.group_counts[g].fetch_add(1, Ordering::AcqRel) + 1 == self.group_len(g)
            && self.root_count.fetch_add(1, Ordering::AcqRel) + 1 == self.n_groups
        {
            // SAFETY: we are the last root arriver of this epoch, so every
            // other participant is parked before the epoch check and none
            // touches `state`; the previous leader's access happened-before
            // ours via the epoch release/acquire edge.
            leader(unsafe { &mut *self.state.get() });
            // Reset before the epoch bump: waiters re-enter arrive() only
            // after observing the new epoch, which orders these stores first.
            for c in &self.group_counts {
                c.store(0, Ordering::Relaxed);
            }
            self.root_count.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            spin_wait_for_epoch(&self.epoch, epoch);
            false
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for TreeBarrier<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeBarrier")
            .field("n", &self.n)
            .field("group_size", &self.group_size)
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mailbox_single_thread_fifo() {
        let mb = Mailbox::new();
        for i in 0..100 {
            mb.push(i);
        }
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(mb.is_empty());
    }

    #[test]
    fn mailbox_drop_releases_pending() {
        let mb = Mailbox::new();
        for i in 0..10 {
            mb.push(Box::new(i));
        }
        drop(mb); // must not leak; checked under sanitizers/miri when available
    }

    #[test]
    fn mailbox_mpsc_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 10_000;
        let mb = Arc::new(Mailbox::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        mb.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        // Consume concurrently with production.
        let mut got = Vec::new();
        while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
            mb.drain_into(&mut got);
            thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        mb.drain_into(&mut got);
        assert_eq!(got.len() as u64, PRODUCERS * PER_PRODUCER);
        // Per-producer FIFO and exactly-once delivery.
        let mut next = vec![0u64; PRODUCERS as usize];
        for v in got {
            let p = (v / PER_PRODUCER) as usize;
            assert_eq!(v % PER_PRODUCER, next[p], "out of order for producer {p}");
            next[p] += 1;
        }
        assert!(next.iter().all(|&n| n == PER_PRODUCER));
    }

    #[test]
    fn barrier_runs_leader_once_per_round() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 500;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, 0u64));
        let leader_runs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leader_runs = Arc::clone(&leader_runs);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        barrier.arrive(|state| {
                            // Exclusive access: observe then bump, no CAS.
                            assert_eq!(*state, round);
                            *state += 1;
                            leader_runs.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leader_runs.load(Ordering::Relaxed), ROUNDS);
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn timed_arrival_slots_reach_the_leader() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 200;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, ()));
        let handles: Vec<_> = (0..THREADS)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        // Every thread stamps `round * THREADS + id`, so the
                        // leader can verify it sees this round's stores, not
                        // a stale epoch's.
                        barrier.arrive_timed(id, round * THREADS as u64 + id as u64, |(), ts| {
                            assert_eq!(ts.len(), THREADS);
                            assert!(!ts.is_empty());
                            for j in 0..THREADS {
                                assert_eq!(
                                    ts.get(j),
                                    round * THREADS as u64 + j as u64,
                                    "stale arrival timestamp in round {round}"
                                );
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn pooled_mailbox_reuses_nodes() {
        let mb = Mailbox::new();
        let mut pool = MailboxPool::with_capacity(16);
        let mut out = Vec::new();
        // Warm up: 8 in flight at once.
        for i in 0..8 {
            mb.push_pooled(i, &mut pool);
        }
        mb.drain_into_pooled(&mut out, &mut pool);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        let warm_allocs = pool.heap_allocs();
        assert_eq!(warm_allocs, 8);
        assert_eq!(pool.len(), 8);
        // Steady state: no further allocation, ever.
        for round in 0..1000 {
            for i in 0..8 {
                mb.push_pooled(round * 8 + i, &mut pool);
            }
            out.clear();
            mb.drain_into_pooled(&mut out, &mut pool);
            assert_eq!(out.len(), 8);
        }
        assert_eq!(pool.heap_allocs(), warm_allocs);
        assert!(!pool.is_empty());
    }

    #[test]
    fn pool_cap_bounds_spare_nodes() {
        let mb = Mailbox::new();
        let mut pool = MailboxPool::<u32>::with_capacity(4);
        for i in 0..32 {
            mb.push_pooled(i, &mut pool);
        }
        let mut out = Vec::new();
        mb.drain_into_pooled(&mut out, &mut pool);
        assert_eq!(out.len(), 32);
        // Only `cap` nodes retained; the rest were freed on release.
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn depot_recirculates_directional_overflow() {
        // Incast in miniature: one pool only pushes, the other only drains.
        // Without a depot the sender would allocate every message once its
        // free list ran dry (the receiver's overflow would be freed); with a
        // shared depot the sender's allocations stop at the warm-up set.
        let depot = Arc::new(PoolDepot::new());
        let mb = Mailbox::new();
        let mut sender = MailboxPool::with_depot(16, Arc::clone(&depot));
        let mut receiver = MailboxPool::with_depot(16, Arc::clone(&depot));
        let mut out = Vec::new();
        for round in 0..500u32 {
            for i in 0..64 {
                mb.push_pooled(round * 64 + i, &mut sender);
            }
            out.clear();
            mb.drain_into_pooled(&mut out, &mut receiver);
            assert_eq!(out.len(), 64);
        }
        // Warm-up covers one burst plus the batch-transfer slack (each
        // donation keeps cap/2 nodes in the receiver, each refill moves one
        // segment); 500 rounds × 64 messages would be 32k allocations
        // without recirculation.
        assert!(
            sender.heap_allocs() <= 128,
            "sender kept allocating despite the depot: {} allocs",
            sender.heap_allocs()
        );
        assert_eq!(receiver.heap_allocs(), 0);
        assert!(!depot.is_empty() || sender.len() + receiver.len() > 0);
    }

    #[test]
    fn depot_cap_bounds_total_nodes() {
        let depot = Arc::new(PoolDepot::with_capacity(8));
        let mb = Mailbox::new();
        let mut sender = MailboxPool::with_depot(4, Arc::clone(&depot));
        let mut receiver = MailboxPool::with_depot(4, Arc::clone(&depot));
        let mut out = Vec::new();
        for _ in 0..100 {
            for i in 0..32u32 {
                mb.push_pooled(i, &mut sender);
            }
            out.clear();
            mb.drain_into_pooled(&mut out, &mut receiver);
        }
        // Donations past the cap are freed, exactly like per-pool overflow.
        assert!(depot.len() <= 8);
        assert!(receiver.len() <= 4);
    }

    #[test]
    fn depot_rebalances_across_threads() {
        // Four producer threads, one consumer, a shared depot, with a round
        // barrier standing in for the engines' quantum barrier: producers
        // burst, everyone synchronizes, the consumer drains (overflowing
        // into the depot), everyone synchronizes again. Steady state, each
        // producer's burst refills entirely from the depot: allocations
        // track the warm-up peak, not the message count.
        const PRODUCERS: u64 = 4;
        const ROUNDS: u64 = 200;
        const BURST: u64 = 100;
        let depot = Arc::new(PoolDepot::new());
        let mb = Arc::new(Mailbox::new());
        let round = Arc::new(std::sync::Barrier::new(PRODUCERS as usize + 1));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mb = Arc::clone(&mb);
                let depot = Arc::clone(&depot);
                let round = Arc::clone(&round);
                thread::spawn(move || {
                    let mut pool = MailboxPool::with_depot(64, depot);
                    for r in 0..ROUNDS {
                        for i in 0..BURST {
                            mb.push_pooled((p * ROUNDS + r) * BURST + i, &mut pool);
                        }
                        round.wait(); // burst visible to the consumer
                        round.wait(); // consumer done draining
                    }
                    pool.heap_allocs()
                })
            })
            .collect();
        let mut got = Vec::new();
        let mut pool = MailboxPool::with_depot(64, Arc::clone(&depot));
        for _ in 0..ROUNDS {
            round.wait();
            mb.drain_into_pooled(&mut got, &mut pool);
            round.wait();
        }
        let producer_allocs: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(got.len() as u64, PRODUCERS * ROUNDS * BURST);
        // No loss, no duplication — recirculated nodes carry fresh values.
        let mut seen = vec![false; (PRODUCERS * ROUNDS * BURST) as usize];
        for v in got {
            assert!(!seen[v as usize], "duplicate message {v}");
            seen[v as usize] = true;
        }
        // Warm-up is one all-producer burst plus batch-transfer slack;
        // without the depot this would be ~80k allocations (every burst
        // past the 64-node pool cap allocated fresh).
        assert!(
            producer_allocs <= PRODUCERS * BURST + 256,
            "depot failed to recirculate: {producer_allocs} producer allocs"
        );
    }

    #[test]
    fn pooled_mailbox_mpsc_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let mb = Arc::new(Mailbox::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    let mut pool = MailboxPool::with_capacity(64);
                    for i in 0..PER_PRODUCER {
                        mb.push_pooled(p * PER_PRODUCER + i, &mut pool);
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        let mut pool = MailboxPool::with_capacity(1024);
        while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
            mb.drain_into_pooled(&mut got, &mut pool);
            thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        mb.drain_into_pooled(&mut got, &mut pool);
        assert_eq!(got.len() as u64, PRODUCERS * PER_PRODUCER);
        let mut next = vec![0u64; PRODUCERS as usize];
        for v in got {
            let p = (v / PER_PRODUCER) as usize;
            assert_eq!(v % PER_PRODUCER, next[p], "out of order for producer {p}");
            next[p] += 1;
        }
        assert!(next.iter().all(|&n| n == PER_PRODUCER));
    }

    #[test]
    fn spin_budget_is_positive_and_stable() {
        assert!(spin_budget() >= 1);
        assert_eq!(spin_budget(), spin_budget());
    }

    #[test]
    fn tree_barrier_runs_leader_once_per_round() {
        for (threads, group) in [(1, 1), (4, 2), (5, 2), (6, 4)] {
            const ROUNDS: u64 = 300;
            let barrier = Arc::new(TreeBarrier::with_group_size(threads, group, 0u64));
            let leader_runs = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..threads)
                .map(|id| {
                    let barrier = Arc::clone(&barrier);
                    let leader_runs = Arc::clone(&leader_runs);
                    thread::spawn(move || {
                        for round in 0..ROUNDS {
                            barrier.arrive(id, |state| {
                                assert_eq!(*state, round);
                                *state += 1;
                                leader_runs.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(leader_runs.load(Ordering::Relaxed), ROUNDS);
            assert_eq!(barrier.epoch(), ROUNDS);
            leader_runs.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn tree_barrier_timed_slots_reach_the_leader() {
        const THREADS: usize = 5;
        const ROUNDS: u64 = 200;
        let barrier = Arc::new(TreeBarrier::with_group_size(THREADS, 2, ()));
        let handles: Vec<_> = (0..THREADS)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        barrier.arrive_timed(id, round * THREADS as u64 + id as u64, |(), ts| {
                            assert_eq!(ts.len(), THREADS);
                            for j in 0..THREADS {
                                assert_eq!(
                                    ts.get(j),
                                    round * THREADS as u64 + j as u64,
                                    "stale arrival timestamp in round {round}"
                                );
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn tree_barrier_publishes_leader_writes() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 300;
        let barrier = Arc::new(TreeBarrier::new(THREADS, ()));
        let published = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                let published = Arc::clone(&published);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        let was_leader = barrier.arrive(id, |()| {
                            published.store(round + 1, Ordering::Relaxed);
                        });
                        let seen = published.load(Ordering::Relaxed);
                        assert!(
                            seen > round,
                            "leader={was_leader} round={round} saw stale {seen}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn barrier_publishes_leader_writes() {
        const THREADS: usize = 3;
        const ROUNDS: u64 = 300;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, ()));
        let published = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let published = Arc::clone(&published);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        let was_leader = barrier.arrive(|()| {
                            published.store(round + 1, Ordering::Relaxed);
                        });
                        // The epoch handshake must make the leader's store
                        // visible to every released thread.
                        let seen = published.load(Ordering::Relaxed);
                        assert!(
                            seen > round,
                            "leader={was_leader} round={round} saw stale {seen}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
