//! Lock-free synchronization primitives for the threaded cluster engine.
//!
//! `aqs-cluster` forbids `unsafe`, so the primitives that need it live here,
//! behind safe APIs sized exactly to the quantum-synchronous engine:
//!
//! * [`Mailbox`] — a multi-producer single-consumer intrusive list. Producers
//!   push with a single compare-and-swap; the owning consumer detaches the
//!   whole list with one atomic swap and drains it in push order. No mutex,
//!   no allocation beyond one node per message.
//! * [`LeaderBarrier`] — an epoch-based (sense-reversing) barrier. The last
//!   thread to arrive becomes the leader, gets exclusive `&mut` access to the
//!   barrier's leader state (e.g. the quantum policy), and publishes the next
//!   epoch with a single release store that doubles as the handshake for
//!   whatever the leader wrote.
//! * [`CachePadded`] — pads per-thread hot counters to their own cache line.
//!
//! Memory-ordering arguments are documented inline at each unsafe block.

#![deny(missing_docs)]

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "schedule-fuzz")]
pub mod fuzz;

#[cfg(feature = "fault-inject")]
pub mod fault;

/// Pads (and aligns) a value to 128 bytes so neighbouring slots in a
/// `Vec<CachePadded<_>>` never share a cache line (128 covers the spatial
/// prefetcher pairing lines on x86 and the 128-byte lines on some ARM).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(
    /// The padded value; also reachable through `Deref`/`DerefMut`.
    pub T,
);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

struct MailboxNode<T> {
    value: T,
    next: *mut MailboxNode<T>,
}

/// Lock-free multi-producer mailbox, drained wholesale by its owning thread.
///
/// Producers CAS new nodes onto the head (a Treiber push); the consumer swaps
/// the head to null and reverses the detached chain, recovering exact global
/// push order (the linearization order of the CASes). Any thread may push;
/// draining is safe from any single thread at a time — in the engine only
/// the owning node thread drains.
pub struct Mailbox<T> {
    head: AtomicPtr<MailboxNode<T>>,
}

// SAFETY: the mailbox hands values across threads by pointer; this is exactly
// a channel, so it is Send/Sync whenever the payload is Send.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes a value; lock-free, callable from any thread.
    pub fn push(&self, value: T) {
        #[cfg(feature = "fault-inject")]
        if fault::mailbox_should_drop() {
            drop(value);
            return;
        }
        let node = Box::into_raw(Box::new(MailboxNode {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is not yet published, so writing its next field
            // is unsynchronized by construction.
            unsafe { (*node).next = head };
            // Release: the consumer's Acquire swap must observe `value` and
            // `next` fully written before the node becomes reachable.
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Detaches everything pushed so far and appends it to `out` in push
    /// order. One atomic swap; never blocks producers.
    ///
    /// With the `schedule-fuzz` feature enabled **and** `fuzz::arm`-ed, the
    /// newly drained batch is shuffled before it is appended — consumers
    /// must not depend on intra-batch order for correctness.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        #[cfg(feature = "schedule-fuzz")]
        let drained_from = out.len();
        // Acquire pairs with the Release CAS in `push`: after the swap we own
        // the whole detached chain and every node in it is fully initialized.
        let mut p = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if p.is_null() {
            return;
        }
        // Reverse in place: the chain is most-recent-first.
        let mut prev: *mut MailboxNode<T> = ptr::null_mut();
        while !p.is_null() {
            // SAFETY: nodes in the detached chain are exclusively ours.
            let next = unsafe { (*p).next };
            unsafe { (*p).next = prev };
            prev = p;
            p = next;
        }
        let mut p = prev;
        while !p.is_null() {
            // SAFETY: each node was allocated by Box::into_raw in `push` and
            // is visited exactly once.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
            out.push(node.value);
        }
        #[cfg(feature = "schedule-fuzz")]
        fuzz::shuffle_tail(out, drained_from);
    }

    /// True if no message is pending (racy by nature; exact only when all
    /// producers are quiescent, e.g. after a barrier).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let mut sink = Vec::new();
        self.drain_into(&mut sink);
    }
}

// ---------------------------------------------------------------------------
// LeaderBarrier
// ---------------------------------------------------------------------------

/// Epoch-based barrier with a leader phase.
///
/// All `n` participants call [`arrive`](LeaderBarrier::arrive) once per
/// round. The last arriver runs the supplied closure with `&mut` access to
/// the shared leader state `S`, then publishes the next epoch; the others
/// wait for the epoch to advance. A single release-store of the epoch is the
/// entire handshake: anything the leader wrote (to `S` or to outside atomics)
/// is visible to every participant that observed the new epoch.
pub struct LeaderBarrier<S> {
    n: usize,
    count: CachePadded<AtomicUsize>,
    epoch: CachePadded<AtomicU64>,
    /// Per-participant arrival timestamps for [`arrive_timed`]
    /// (LeaderBarrier::arrive_timed); untouched by plain `arrive`.
    arrivals: Vec<CachePadded<AtomicU64>>,
    state: UnsafeCell<S>,
}

/// Read-only view of every participant's arrival timestamp for the round
/// being closed, handed to the leader closure of
/// [`LeaderBarrier::arrive_timed`].
pub struct ArrivalTimes<'a> {
    slots: &'a [CachePadded<AtomicU64>],
}

impl ArrivalTimes<'_> {
    /// Number of participants.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: a barrier has at least one participant.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Arrival timestamp participant `i` published this round.
    ///
    /// Relaxed load: each participant's store is ordered before its AcqRel
    /// `count` increment, and the leader's own increment acquires the whole
    /// RMW chain, so every slot is visible by the time the closure runs.
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }
}

// SAFETY: `state` is only touched inside the leader closure, which the
// barrier protocol runs on exactly one thread per epoch, with a release/
// acquire edge (the epoch store) between successive leaders. That makes the
// UnsafeCell access exclusive, so the container is Sync whenever S is Send.
unsafe impl<S: Send> Sync for LeaderBarrier<S> {}

impl<S> LeaderBarrier<S> {
    /// A barrier for `n` participants with leader-owned `state`.
    pub fn new(n: usize, state: S) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        LeaderBarrier {
            n,
            count: CachePadded::new(AtomicUsize::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
            arrivals: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            state: UnsafeCell::new(state),
        }
    }

    /// Current epoch (rounds completed). Mostly useful for diagnostics.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Consumes the barrier and returns the leader state — for reading the
    /// final tallies once every participant has been joined.
    pub fn into_state(self) -> S {
        self.state.into_inner()
    }

    /// [`arrive`](Self::arrive) with a barrier-wait timing hook: the caller
    /// publishes its arrival timestamp (any monotonic nanosecond clock) and
    /// the leader closure additionally receives every participant's
    /// timestamp for the round, so it can compute per-thread barrier waits
    /// (`leader arrival − thread arrival`) without any extra
    /// synchronization. Costs one relaxed store over `arrive`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn arrive_timed<F: FnOnce(&mut S, ArrivalTimes<'_>)>(
        &self,
        id: usize,
        now_ns: u64,
        leader: F,
    ) -> bool {
        // Relaxed is enough: this store is ordered before our AcqRel
        // fetch_add in `arrive`, and the leader's fetch_add acquires the
        // whole RMW chain, so the slot is visible inside the closure.
        self.arrivals[id].store(now_ns, Ordering::Relaxed);
        self.arrive(|state| {
            leader(
                state,
                ArrivalTimes {
                    slots: &self.arrivals,
                },
            )
        })
    }

    /// Arrives at the barrier; returns `true` on the thread that acted as
    /// leader for this round. `leader` runs exactly once per round, after
    /// every participant has arrived and before any is released.
    ///
    /// With the `schedule-fuzz` feature enabled **and** `fuzz::arm`-ed, a
    /// pseudo-random jitter delay is inserted before the arrival so the
    /// arrival order (and hence leader election) varies between runs.
    pub fn arrive<F: FnOnce(&mut S)>(&self, leader: F) -> bool {
        #[cfg(feature = "schedule-fuzz")]
        fuzz::jitter();
        let epoch = self.epoch.load(Ordering::Acquire);
        // AcqRel: acquire every arriving thread's prior writes (their quantum
        // work) on the thread that becomes leader; release ours to it.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // SAFETY: we are the n-th arriver of this epoch, so no other
            // thread is past its own fetch_add and none touches `state`
            // until we bump the epoch; the previous leader's access
            // happened-before ours via the epoch release/acquire edge.
            leader(unsafe { &mut *self.state.get() });
            // Reset before the epoch bump: waiters re-enter arrive() only
            // after observing the new epoch, which orders this store first.
            self.count.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            // Short spin for the common fast hand-off, then yield: the test
            // and CI machines may have fewer cores than node threads, where
            // pure spinning would stall the leader for a whole timeslice.
            let mut spins = 0u32;
            while self.epoch.load(Ordering::Acquire) == epoch {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for LeaderBarrier<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderBarrier")
            .field("n", &self.n)
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mailbox_single_thread_fifo() {
        let mb = Mailbox::new();
        for i in 0..100 {
            mb.push(i);
        }
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(mb.is_empty());
    }

    #[test]
    fn mailbox_drop_releases_pending() {
        let mb = Mailbox::new();
        for i in 0..10 {
            mb.push(Box::new(i));
        }
        drop(mb); // must not leak; checked under sanitizers/miri when available
    }

    #[test]
    fn mailbox_mpsc_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 10_000;
        let mb = Arc::new(Mailbox::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        mb.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        // Consume concurrently with production.
        let mut got = Vec::new();
        while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
            mb.drain_into(&mut got);
            thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        mb.drain_into(&mut got);
        assert_eq!(got.len() as u64, PRODUCERS * PER_PRODUCER);
        // Per-producer FIFO and exactly-once delivery.
        let mut next = vec![0u64; PRODUCERS as usize];
        for v in got {
            let p = (v / PER_PRODUCER) as usize;
            assert_eq!(v % PER_PRODUCER, next[p], "out of order for producer {p}");
            next[p] += 1;
        }
        assert!(next.iter().all(|&n| n == PER_PRODUCER));
    }

    #[test]
    fn barrier_runs_leader_once_per_round() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 500;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, 0u64));
        let leader_runs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leader_runs = Arc::clone(&leader_runs);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        barrier.arrive(|state| {
                            // Exclusive access: observe then bump, no CAS.
                            assert_eq!(*state, round);
                            *state += 1;
                            leader_runs.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leader_runs.load(Ordering::Relaxed), ROUNDS);
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn timed_arrival_slots_reach_the_leader() {
        const THREADS: usize = 4;
        const ROUNDS: u64 = 200;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, ()));
        let handles: Vec<_> = (0..THREADS)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        // Every thread stamps `round * THREADS + id`, so the
                        // leader can verify it sees this round's stores, not
                        // a stale epoch's.
                        barrier.arrive_timed(id, round * THREADS as u64 + id as u64, |(), ts| {
                            assert_eq!(ts.len(), THREADS);
                            assert!(!ts.is_empty());
                            for j in 0..THREADS {
                                assert_eq!(
                                    ts.get(j),
                                    round * THREADS as u64 + j as u64,
                                    "stale arrival timestamp in round {round}"
                                );
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.epoch(), ROUNDS);
    }

    #[test]
    fn barrier_publishes_leader_writes() {
        const THREADS: usize = 3;
        const ROUNDS: u64 = 300;
        let barrier = Arc::new(LeaderBarrier::new(THREADS, ()));
        let published = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let published = Arc::clone(&published);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        let was_leader = barrier.arrive(|()| {
                            published.store(round + 1, Ordering::Relaxed);
                        });
                        // The epoch handshake must make the leader's store
                        // visible to every released thread.
                        let seen = published.load(Ordering::Relaxed);
                        assert!(
                            seen > round,
                            "leader={was_leader} round={round} saw stale {seen}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
