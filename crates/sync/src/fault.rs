//! Deliberate, runtime-armable bugs (`fault-inject` feature).
//!
//! The conformance harness in `crates/check` proves its own teeth with a
//! mutation smoke test: each fault here is a realistic bug a refactor could
//! introduce, and the harness must detect and shrink every one. The faults
//! are compiled in only under the `fault-inject` feature and are inert until
//! armed, so even a fault-enabled build behaves correctly by default.
//!
//! Never enable this feature outside the mutation tests. Arming is
//! process-global, so test binaries that arm faults must serialize the armed
//! window (a shared mutex, or `cargo test -- --test-threads=1`) — an armed
//! fault would corrupt unrelated concurrently running tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Drop period for the mailbox fault; 0 = disarmed.
static MAILBOX_DROP_PERIOD: AtomicU64 = AtomicU64::new(0);
static MAILBOX_PUSH_COUNT: AtomicU64 = AtomicU64::new(0);

/// Arms the mailbox-drop fault: every `period`-th
/// [`Mailbox::push`](crate::Mailbox::push) in the process silently discards
/// its message — the classic lost-wakeup/lost-fragment bug.
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn arm_mailbox_drop(period: u64) {
    assert!(period > 0, "drop period must be positive");
    MAILBOX_PUSH_COUNT.store(0, Ordering::Relaxed);
    MAILBOX_DROP_PERIOD.store(period, Ordering::Release);
}

/// Disarms every fault in this crate.
pub fn disarm_all() {
    MAILBOX_DROP_PERIOD.store(0, Ordering::Release);
}

/// Decides whether the current push is the unlucky one.
pub(crate) fn mailbox_should_drop() -> bool {
    let period = MAILBOX_DROP_PERIOD.load(Ordering::Acquire);
    if period == 0 {
        return false;
    }
    MAILBOX_PUSH_COUNT.fetch_add(1, Ordering::Relaxed) % period == period - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mailbox;

    #[test]
    fn armed_mailbox_drops_every_nth_push() {
        arm_mailbox_drop(3);
        let mb = Mailbox::new();
        for i in 0..9 {
            mb.push(i);
        }
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        disarm_all();
        assert_eq!(out.len(), 6, "every 3rd push must vanish");
        // Disarmed again: nothing is lost.
        for i in 0..5 {
            mb.push(i);
        }
        out.clear();
        mb.drain_into(&mut out);
        assert_eq!(out.len(), 5);
    }
}
