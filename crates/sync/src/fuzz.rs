//! Test-only schedule perturbation hooks (`schedule-fuzz` feature).
//!
//! The threaded engine's functional results must be independent of two
//! sources of OS-level nondeterminism: the order in which a mailbox batch is
//! drained, and the order in which threads arrive at the quantum barrier.
//! This module lets a test *amplify* both far beyond what a quiet CI machine
//! would ever produce, so schedule-dependent bugs surface in seconds instead
//! of once a year:
//!
//! * [`Mailbox::drain_into`](crate::Mailbox::drain_into) shuffles each newly
//!   drained batch;
//! * [`LeaderBarrier::arrive`](crate::LeaderBarrier::arrive) spins a
//!   pseudo-random delay before arriving, perturbing arrival order and
//!   leader election.
//!
//! Both hooks are compiled in only under the `schedule-fuzz` feature and do
//! nothing until [`arm`]ed, so a fuzz-enabled build can still run unfuzzed
//! reference runs. The perturbation stream is process-global and lock-free;
//! it deliberately does *not* promise a reproducible schedule (the OS
//! scheduler is part of the experiment) — reproducibility of the *cases* is
//! the conformance generator's job.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: AtomicU64 = AtomicU64::new(0);

/// Arms the hooks with `seed`. Affects every mailbox and barrier in the
/// process until [`disarm`] is called.
pub fn arm(seed: u64) {
    STATE.store(seed, Ordering::Relaxed);
    ARMED.store(true, Ordering::Release);
}

/// Disarms the hooks; both become no-ops again.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// True when the hooks are armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Next pseudo-random value, or `None` when disarmed. Wait-free: a single
/// `fetch_add` of the SplitMix64 golden gamma plus a stateless mix, so
/// concurrent callers each get a distinct value.
fn next() -> Option<u64> {
    if !is_armed() {
        return None;
    }
    let z = STATE
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Some(z ^ (z >> 31))
}

/// Fisher–Yates shuffle of `out[from..]` (the batch a drain just appended).
/// No-op when disarmed.
pub(crate) fn shuffle_tail<T>(out: &mut [T], from: usize) {
    let n = out.len() - from;
    if n < 2 {
        return;
    }
    let Some(mut r) = next() else { return };
    let tail = &mut out[from..];
    for i in (1..n).rev() {
        // Cheap xorshift between swaps; quality is irrelevant here.
        r ^= r << 13;
        r ^= r >> 7;
        r ^= r << 17;
        tail.swap(i, (r % (i as u64 + 1)) as usize);
    }
}

/// Spins for a pseudo-random short delay (0–few µs) to perturb barrier
/// arrival order. No-op when disarmed.
pub(crate) fn jitter() {
    let Some(r) = next() else { return };
    let spins = r % 4096;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    // Occasionally yield the timeslice too: on few-core CI machines that is
    // the perturbation that actually reorders arrivals.
    if r % 7 == 0 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_do_nothing() {
        disarm();
        let mut v = vec![1, 2, 3, 4, 5];
        shuffle_tail(&mut v, 0);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        jitter(); // must not hang
    }

    #[test]
    fn armed_shuffle_permutes_only_the_tail() {
        arm(42);
        let mut v: Vec<u64> = (0..100).collect();
        shuffle_tail(&mut v, 90);
        assert_eq!(&v[..90], (0..90).collect::<Vec<u64>>().as_slice());
        let mut tail: Vec<u64> = v[90..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, (90..100).collect::<Vec<u64>>());
        disarm();
    }
}
