//! Stress: N producers vs concurrent drains under thread churn.
//!
//! Replays the threaded engine's synchronization protocol in miniature and
//! proves the two PR-1 primitives hold up in its known-thin spot — a thread
//! that finishes its program mid-quantum but must keep meeting the barrier:
//!
//! * node threads with *different* program lengths exchange messages every
//!   round; a finished thread stops producing but keeps arriving until the
//!   leader observes that everyone is done and publishes stop through the
//!   epoch handshake (exactly the engine's `done`/`Q_END_STOP` protocol);
//! * waves of short-lived external producer threads (the churn) push into
//!   the same mailboxes while the node threads are draining them;
//! * every message is accounted for at the end: exactly once, per-producer
//!   FIFO, nothing dropped, nothing duplicated, no deadlock.

use aqs_sync::{LeaderBarrier, Mailbox};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

/// A stuck barrier (e.g. a participant died) would spin this binary forever;
/// turn that into a loud failure instead. The watchdog thread is detached
/// and dies with the process on success.
fn arm_watchdog(done: &'static AtomicBool, secs: u64) {
    thread::spawn(move || {
        thread::sleep(Duration::from_secs(secs));
        if !done.load(Ordering::Acquire) {
            eprintln!("stress watchdog: no completion after {secs}s — deadlock");
            std::process::exit(101);
        }
    });
}

#[derive(Clone, Copy, Debug)]
struct Msg {
    /// Producer id: node threads are `0..n`, external producers follow.
    from: usize,
    seq: u64,
}

struct Ctrl {
    mailboxes: Vec<Mailbox<Msg>>,
    done: AtomicU64,
    /// 1 once the leader decided to stop; published before the epoch bump,
    /// so the release of the round makes it visible to every participant.
    stop: AtomicU64,
    barrier: LeaderBarrier<u64>,
}

/// Per-receiver FIFO/exactly-once tracker. A producer's sequence numbers
/// must arrive strictly increasing at any single receiver (per-producer
/// FIFO, no duplicates); `counts` catches losses when totalled at the end.
/// External producers stripe their stream across mailboxes, so a receiver
/// sees an increasing *subsequence*, not a contiguous one.
struct Receiver {
    watermark: Vec<Option<u64>>,
    counts: Vec<u64>,
    received: u64,
}

impl Receiver {
    fn new(producers: usize) -> Self {
        Receiver {
            watermark: vec![None; producers],
            counts: vec![0; producers],
            received: 0,
        }
    }

    fn take(&mut self, m: Msg) {
        if let Some(last) = self.watermark[m.from] {
            assert!(
                m.seq > last,
                "producer {} seq {} after {}: reordered or duplicated",
                m.from,
                m.seq,
                last
            );
        }
        self.watermark[m.from] = Some(m.seq);
        self.counts[m.from] += 1;
        self.received += 1;
    }
}

#[test]
fn churn_and_mid_quantum_finish_lose_nothing() {
    const N: usize = 4; // barrier participants (node threads)
    const WAVES: usize = 3;
    const EXTERNAL_PER_WAVE: usize = 3;
    const EXTERNAL_MSGS: u64 = 2_000;
    const ROUND_CAP: u64 = 1_000_000;
    // Deliberately spread program lengths so threads finish far apart and
    // spend many rounds in the "done but still arriving" state.
    let program_len: [u64; N] = [50, 400, 2_000, 6_000];
    let producers = N + WAVES * EXTERNAL_PER_WAVE;
    static DONE: AtomicBool = AtomicBool::new(false);
    arm_watchdog(&DONE, 300);

    let ctrl = Ctrl {
        mailboxes: (0..N).map(|_| Mailbox::new()).collect(),
        done: AtomicU64::new(0),
        stop: AtomicU64::new(0),
        barrier: LeaderBarrier::new(N, 0u64),
    };

    let receivers: Vec<Receiver> = thread::scope(|scope| {
        let node_handles: Vec<_> = (0..N)
            .map(|i| {
                let ctrl = &ctrl;
                scope.spawn(move || {
                    let mut rx = Receiver::new(producers);
                    let mut inbox = Vec::new();
                    let mut seq = 0u64;
                    let mut round = 0u64;
                    loop {
                        ctrl.mailboxes[i].drain_into(&mut inbox);
                        for m in inbox.drain(..) {
                            rx.take(m);
                        }
                        if round < program_len[i] {
                            for j in 0..N {
                                if j != i {
                                    ctrl.mailboxes[j].push(Msg { from: i, seq });
                                }
                            }
                            seq += 1;
                        } else if round == program_len[i] {
                            // Program over mid-quantum: report done exactly
                            // once, then keep meeting the barrier.
                            ctrl.done.fetch_add(1, Ordering::AcqRel);
                        }
                        round += 1;
                        assert!(round < ROUND_CAP, "stress deadlocked (round cap)");
                        ctrl.barrier.arrive(|rounds| {
                            *rounds += 1;
                            if ctrl.done.load(Ordering::Acquire) == N as u64 {
                                ctrl.stop.store(1, Ordering::Relaxed);
                            }
                        });
                        if ctrl.stop.load(Ordering::Relaxed) == 1 {
                            return rx;
                        }
                    }
                })
            })
            .collect();

        // Thread churn: waves of external producers created and joined while
        // the node threads are running and draining.
        for wave in 0..WAVES {
            let wave_handles: Vec<_> = (0..EXTERNAL_PER_WAVE)
                .map(|k| {
                    let ctrl = &ctrl;
                    let from = N + wave * EXTERNAL_PER_WAVE + k;
                    scope.spawn(move || {
                        for seq in 0..EXTERNAL_MSGS {
                            ctrl.mailboxes[(seq as usize) % N].push(Msg { from, seq });
                            if seq % 256 == 0 {
                                thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            for h in wave_handles {
                h.join().unwrap();
            }
        }

        node_handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });

    // Residual messages: pushes that landed after a receiver's final drain
    // (e.g. external pushes racing the stop round). They must still be
    // intact, in order, and complete.
    let mut receivers = receivers;
    let mut residue = Vec::new();
    for (i, rx) in receivers.iter_mut().enumerate() {
        residue.clear();
        ctrl.mailboxes[i].drain_into(&mut residue);
        for m in residue.drain(..) {
            rx.take(m);
        }
    }

    // Exactly-once, globally: every produced message was consumed.
    let node_sent: u64 = program_len.iter().map(|l| l * (N as u64 - 1)).sum();
    let external_sent = (WAVES * EXTERNAL_PER_WAVE) as u64 * EXTERNAL_MSGS;
    let received: u64 = receivers.iter().map(|r| r.received).sum();
    assert_eq!(
        received,
        node_sent + external_sent,
        "messages lost or duplicated"
    );
    // And per producer: each receiver saw a clean prefix of every stream;
    // summed over receivers the prefixes must cover each stream exactly.
    for (from, len) in program_len.iter().enumerate() {
        let total: u64 = receivers.iter().map(|r| r.counts[from]).sum();
        assert_eq!(total, len * (N as u64 - 1));
    }
    for from in N..producers {
        let total: u64 = receivers.iter().map(|r| r.counts[from]).sum();
        assert_eq!(total, EXTERNAL_MSGS);
    }
    // The epoch handshake closed as many rounds as the leader counted.
    let Ctrl { barrier, .. } = ctrl;
    let epochs = barrier.epoch();
    assert_eq!(epochs, barrier.into_state());
    DONE.store(true, Ordering::Release);
}
