//! The JSON Lines wire protocol.
//!
//! Every request is one JSON object on one line; every request gets exactly
//! one JSON object back on one line. Successful responses carry
//! `"ok": true`; rejections carry `"ok": false` and a typed `error` object:
//!
//! ```text
//! {"ok":false,"error":{"kind":"overloaded","detail":"queue full: 32 jobs"}}
//! ```
//!
//! Requests (the `op` field selects one):
//!
//! * `submit` — enqueue a job. Fields: `tenant` (default `"default"`),
//!   `deadline_ms` (default from server config), and either a case spec
//!   (`workload`, `nodes`, `policy`, `seed`, `scale`, `inject_panic`) or
//!   `scenario` (path to a scenario TOML).
//! * `status` — one job's record (`job` field).
//! * `wait` — block until the job is terminal, then return its record.
//! * `list` — every job's summary.
//! * `stats` — queue depth, state counts, per-tenant in-flight counts.
//! * `shutdown` — stop accepting work and wind the server down.

use serde_json::Value;

/// Why a *request* was rejected (job failures are a separate, per-job
/// record — see [`crate::jobs::JobError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The job queue is at capacity; resubmit later.
    Overloaded,
    /// The tenant already has its maximum number of jobs in flight.
    QuotaExceeded,
    /// The request was malformed (unknown op, missing/invalid fields).
    BadRequest,
    /// The referenced job id does not exist.
    UnknownJob,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl RejectKind {
    /// The wire name of this rejection kind.
    pub fn name(self) -> &'static str {
        match self {
            RejectKind::Overloaded => "overloaded",
            RejectKind::QuotaExceeded => "quota_exceeded",
            RejectKind::BadRequest => "bad_request",
            RejectKind::UnknownJob => "unknown_job",
            RejectKind::ShuttingDown => "shutting_down",
        }
    }
}

/// Builds a JSON object from `(key, value)` pairs, preserving order.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `"ok": true` response with the given extra fields.
pub fn ok(mut fields: Vec<(&str, Value)>) -> Value {
    let mut all = vec![("ok", Value::Bool(true))];
    all.append(&mut fields);
    obj(all)
}

/// A `"ok": false` rejection with a typed error object.
pub fn reject(kind: RejectKind, detail: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Value::Str(kind.name().to_string())),
                ("detail", Value::Str(detail.into())),
            ]),
        ),
    ])
}

/// String field accessor (missing or non-string → `None`).
pub fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// Unsigned-integer field accessor.
pub fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Boolean field accessor.
pub fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}
