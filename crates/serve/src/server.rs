//! The resident job server.
//!
//! A fixed pool of worker threads drains a bounded queue of jobs submitted
//! over the JSONL protocol. The fault envelope:
//!
//! * **Panic isolation** — each execution attempt runs under
//!   `catch_unwind`; a panicking job is retried with exponential backoff up
//!   to the configured attempt budget, then fails with a typed `panicked`
//!   record. The worker, the queue, and every other job survive.
//! * **Deadlines** — a watchdog thread flags jobs past their deadline; the
//!   checkpointed executor observes the flag between quantum chunks and
//!   fails the job with a typed `deadline_exceeded` record.
//! * **Load shedding** — a full queue rejects with `overloaded`, a tenant
//!   over its in-flight quota with `quota_exceeded`; both are typed
//!   protocol rejections, never dropped connections.
//! * **Crash safety** — every submission, quantum-edge snapshot, retry,
//!   and terminal outcome is journaled write-ahead. After `kill -9`,
//!   startup replays the journal: finished jobs keep their results,
//!   unfinished case jobs resume from their last intact snapshot
//!   (bit-identical to an uninterrupted run), scenario jobs restart from
//!   scratch (they are deterministic, so a restart is safe — just slower).

use crate::jobs::{run_case, run_scenario_job, JobError, JobSpec};
use crate::journal::{from_hex, to_hex, Journal};
use crate::protocol::{get_str, get_u64, obj, ok, reject, RejectKind};
use aqs_cluster::SimSnapshot;
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration. `Default` gives a loopback server on an
/// OS-assigned port with a journal in the system temp directory — tests
/// and smoke runs override what they need.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before `overloaded`.
    pub queue_cap: usize,
    /// Maximum in-flight (queued + running) jobs per tenant before
    /// `quota_exceeded`.
    pub tenant_cap: usize,
    /// Default per-attempt execution deadline, milliseconds; `0` disables.
    /// Submissions override per job via `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Execution attempts per job before a panic becomes terminal.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, milliseconds (attempt `k`
    /// waits `backoff_base_ms << (k-1)`).
    pub backoff_base_ms: u64,
    /// Quanta per execution chunk — the checkpoint (and deadline-check)
    /// granularity for case jobs.
    pub chunk_quanta: u64,
    /// Write-ahead journal path.
    pub journal: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let mut journal = std::env::temp_dir();
        journal.push(format!("aqs-serve-{}.journal", std::process::id()));
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            tenant_cap: 8,
            default_deadline_ms: 30_000,
            max_attempts: 3,
            backoff_base_ms: 20,
            chunk_quanta: 2_000,
            journal,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(Value),
    Failed(Value),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

struct Job {
    id: u64,
    tenant: String,
    spec: JobSpec,
    deadline_ms: u64,
    state: JobState,
    attempts: u32,
    /// Last journaled quantum-edge snapshot (case jobs only).
    snapshot: Option<Vec<u8>>,
    /// Watchdog → executor deadline signal for the current attempt.
    cancel: Arc<AtomicBool>,
    /// When the current attempt started executing.
    started_at: Option<Instant>,
}

struct State {
    jobs: Vec<Job>,
    queue: VecDeque<u64>,
    next_id: u64,
    journal: Journal,
}

impl State {
    fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    fn job_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    fn in_flight(&self, tenant: &str) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.tenant == tenant && !j.state.terminal())
            .count()
    }
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    /// Poison-tolerant lock: a worker that panicked *outside*
    /// `catch_unwind` (a server bug, not a job panic) must not take the
    /// whole server down with it.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let st = self.lock();
        // Wake executors parked between chunks so they re-queue promptly.
        for job in st.jobs.iter() {
            if matches!(job.state, JobState::Running) {
                job.cancel.store(true, Ordering::SeqCst);
            }
        }
        drop(st);
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// A running server. Dropping the handle does *not* stop it — call
/// [`Server::stop`] (tests) or [`Server::join`] (the CLI, which waits for
/// a `shutdown` request).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens (replaying) the journal, binds the listener, and spawns the
    /// worker pool, the deadline watchdog, and the accept loop.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let (journal, records) = Journal::open(&cfg.journal)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut state = State {
            jobs: Vec::new(),
            queue: VecDeque::new(),
            next_id: 1,
            journal,
        };
        recover(&mut state, &records);

        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for w in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name(format!("aqs-worker-{w}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("aqs-watchdog".to_string())
                    .spawn(move || watchdog_loop(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("aqs-accept".to_string())
                    .spawn(move || accept_loop(&inner, listener))?,
            );
        }
        Ok(Server {
            inner,
            addr,
            threads,
        })
    }

    /// The bound listen address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` request arrives, then joins every thread.
    pub fn join(self) {
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(25));
        }
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown and joins every thread.
    pub fn stop(self) {
        self.inner.begin_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Rebuilds in-memory job state from replayed journal records. Unfinished
/// jobs are re-enqueued in submission order; terminal results are kept so
/// clients can still query them after a restart.
fn recover(state: &mut State, records: &[Value]) {
    for rec in records {
        let Some(ev) = get_str(rec, "ev") else {
            continue;
        };
        match ev {
            "submit" => {
                let Some(id) = get_u64(rec, "job") else {
                    continue;
                };
                let Some(spec_v) = rec.get("spec") else {
                    continue;
                };
                let Ok(spec) = JobSpec::from_value(spec_v) else {
                    continue;
                };
                state.jobs.push(Job {
                    id,
                    tenant: get_str(rec, "tenant").unwrap_or("default").to_string(),
                    spec,
                    deadline_ms: get_u64(rec, "deadline_ms").unwrap_or(0),
                    state: JobState::Queued,
                    attempts: 0,
                    snapshot: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    started_at: None,
                });
                state.next_id = state.next_id.max(id + 1);
            }
            "snapshot" => {
                let bytes = get_str(rec, "bytes").and_then(from_hex);
                if let (Some(id), Some(bytes)) = (get_u64(rec, "job"), bytes) {
                    if let Some(job) = state.job_mut(id) {
                        job.snapshot = Some(bytes);
                    }
                }
            }
            "retry" => {
                if let Some(job) = get_u64(rec, "job").and_then(|id| state.job_mut(id)) {
                    job.attempts = get_u64(rec, "attempt").unwrap_or(0) as u32;
                }
            }
            "done" => {
                if let Some(job) = get_u64(rec, "job").and_then(|id| state.job_mut(id)) {
                    let outcome = rec.get("outcome").cloned().unwrap_or(Value::Null);
                    job.state = JobState::Done(outcome);
                }
            }
            "failed" => {
                if let Some(job) = get_u64(rec, "job").and_then(|id| state.job_mut(id)) {
                    let error = rec.get("error").cloned().unwrap_or(Value::Null);
                    job.state = JobState::Failed(error);
                }
            }
            _ => {}
        }
    }
    for job in &state.jobs {
        if !job.state.terminal() {
            state.queue.push_back(job.id);
        }
    }
}

/// One worker: claim the queue head, execute an attempt under
/// `catch_unwind`, journal and record the outcome, repeat.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let claimed = {
            let mut st = inner.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                let (guard, _) = inner
                    .work_cv
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        };
        execute(inner, claimed);
    }
}

/// Runs one attempt of job `id` and applies the outcome.
fn execute(inner: &Arc<Inner>, id: u64) {
    let cancel;
    let spec;
    let deadline_ms;
    let attempt;
    let from;
    {
        let mut st = inner.lock();
        let Some(job) = st.job_mut(id) else { return };
        job.attempts += 1;
        attempt = job.attempts;
        job.state = JobState::Running;
        job.cancel.store(false, Ordering::SeqCst);
        job.started_at = Some(Instant::now());
        cancel = Arc::clone(&job.cancel);
        spec = job.spec.clone();
        deadline_ms = job.deadline_ms;
        // Resume from the last journaled snapshot when one decodes; a
        // snapshot that does not (it cannot be corrupt — the journal is
        // checksummed — but the binary may have changed across a restart)
        // falls back to a fresh, equally deterministic run.
        from = job
            .snapshot
            .as_deref()
            .and_then(|b| SimSnapshot::from_bytes(b).ok());
    }

    let chunk = inner.cfg.chunk_quanta.max(1);
    let result = catch_unwind(AssertUnwindSafe(|| match &spec {
        JobSpec::Case(case) => run_case(
            case,
            from,
            chunk,
            deadline_ms,
            &|| cancel.load(Ordering::SeqCst),
            &mut |snap| {
                let mut st = inner.lock();
                let rec = obj(vec![
                    ("ev", Value::Str("snapshot".to_string())),
                    ("job", Value::U64(id)),
                    ("quanta", Value::U64(snap.quanta())),
                    ("bytes", Value::Str(to_hex(&snap.to_bytes()))),
                ]);
                st.journal
                    .append(&rec)
                    .map_err(|e| format!("journal append: {e}"))?;
                if let Some(job) = st.job_mut(id) {
                    job.snapshot = Some(snap.to_bytes());
                }
                Ok(())
            },
        ),
        JobSpec::Scenario(s) => run_scenario_job(s),
    }));

    match result {
        Ok(Ok(outcome)) => finish(
            inner,
            id,
            "done",
            ("outcome", outcome.clone()),
            JobState::Done(outcome),
        ),
        Ok(Err(JobError::DeadlineExceeded { .. })) if inner.shutdown.load(Ordering::SeqCst) => {
            // The cancel flag was raised by shutdown, not the watchdog:
            // the job is not at fault. Leave it non-terminal with no
            // journal event, so the next start resumes it from its last
            // snapshot exactly as after a crash.
            let mut st = inner.lock();
            if let Some(job) = st.job_mut(id) {
                job.state = JobState::Queued;
            }
        }
        Ok(Err(err)) => {
            // Typed errors are deterministic — retrying cannot change the
            // outcome, so they are terminal on the first attempt.
            let v = err.to_value();
            finish(
                inner,
                id,
                "failed",
                ("error", v.clone()),
                JobState::Failed(v),
            );
        }
        Err(panic) => {
            // `&panic` would unsize the Box itself into `dyn Any` and the
            // downcast would always miss — deref to the payload first.
            let detail = panic_message(panic.as_ref());
            if attempt < inner.cfg.max_attempts {
                let backoff =
                    Duration::from_millis(inner.cfg.backoff_base_ms << (attempt - 1).min(16));
                {
                    let mut st = inner.lock();
                    let rec = obj(vec![
                        ("ev", Value::Str("retry".to_string())),
                        ("job", Value::U64(id)),
                        ("attempt", Value::U64(attempt as u64)),
                        ("detail", Value::Str(detail.clone())),
                    ]);
                    let _ = st.journal.append(&rec);
                    if let Some(job) = st.job_mut(id) {
                        job.state = JobState::Queued;
                    }
                }
                thread::sleep(backoff);
                let mut st = inner.lock();
                st.queue.push_back(id);
                drop(st);
                inner.work_cv.notify_one();
            } else {
                let v = JobError::Panicked {
                    detail: format!("{detail} ({attempt} attempts)"),
                }
                .to_value();
                finish(
                    inner,
                    id,
                    "failed",
                    ("error", v.clone()),
                    JobState::Failed(v),
                );
            }
        }
    }
}

/// Journals a terminal record, applies the state, and wakes waiters.
fn finish(inner: &Arc<Inner>, id: u64, ev: &str, field: (&str, Value), state: JobState) {
    let mut st = inner.lock();
    let rec = obj(vec![
        ("ev", Value::Str(ev.to_string())),
        ("job", Value::U64(id)),
        field,
    ]);
    let _ = st.journal.append(&rec);
    if let Some(job) = st.job_mut(id) {
        job.state = state;
        job.started_at = None;
    }
    drop(st);
    inner.done_cv.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Flags running jobs whose current attempt has outlived its deadline.
fn watchdog_loop(inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        {
            let st = inner.lock();
            for job in st.jobs.iter() {
                if let (JobState::Running, Some(started), d) =
                    (&job.state, job.started_at, job.deadline_ms)
                {
                    if d > 0 && started.elapsed() >= Duration::from_millis(d) {
                        job.cancel.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Accepts connections until shutdown; each connection gets its own
/// handler thread (clients are few: CLIs and smoke scripts).
fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let _ = thread::Builder::new()
                    .name("aqs-conn".to_string())
                    .spawn(move || handle_connection(&inner, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One JSONL connection: a request per line, a response per line.
fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(reader_stream);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Value>(&line) {
            Ok(req) => handle_request(inner, &req),
            Err(e) => reject(RejectKind::BadRequest, format!("request is not JSON: {e}")),
        };
        let Ok(mut text) = serde_json::to_string(&response) else {
            break;
        };
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() {
            break;
        }
    }
}

/// The job's wire record.
fn job_value(job: &Job) -> Value {
    let mut fields = vec![
        ("job", Value::U64(job.id)),
        ("tenant", Value::Str(job.tenant.clone())),
        ("label", Value::Str(job.spec.label())),
        ("state", Value::Str(job.state.name().to_string())),
        ("attempts", Value::U64(job.attempts as u64)),
    ];
    match &job.state {
        JobState::Done(outcome) => fields.push(("outcome", outcome.clone())),
        JobState::Failed(error) => fields.push(("error", error.clone())),
        _ => {}
    }
    obj(fields)
}

/// Dispatches one request to its handler.
fn handle_request(inner: &Arc<Inner>, req: &Value) -> Value {
    match get_str(req, "op") {
        Some("submit") => handle_submit(inner, req),
        Some("status") => with_job(inner, req, |job| ok(vec![("job_record", job_value(job))])),
        Some("wait") => handle_wait(inner, req),
        Some("list") => {
            let st = inner.lock();
            let jobs: Vec<Value> = st.jobs.iter().map(job_value).collect();
            ok(vec![("jobs", Value::Array(jobs))])
        }
        Some("stats") => handle_stats(inner),
        Some("shutdown") => {
            inner.begin_shutdown();
            ok(vec![("stopping", Value::Bool(true))])
        }
        Some(other) => reject(RejectKind::BadRequest, format!("unknown op `{other}`")),
        None => reject(RejectKind::BadRequest, "missing `op` field"),
    }
}

fn handle_submit(inner: &Arc<Inner>, req: &Value) -> Value {
    if inner.shutdown.load(Ordering::SeqCst) {
        return reject(RejectKind::ShuttingDown, "server is shutting down");
    }
    let spec = match JobSpec::from_value(req) {
        Ok(spec) => spec,
        Err(detail) => return reject(RejectKind::BadRequest, detail),
    };
    let tenant = get_str(req, "tenant").unwrap_or("default").to_string();
    let deadline_ms = get_u64(req, "deadline_ms").unwrap_or(inner.cfg.default_deadline_ms);

    let mut st = inner.lock();
    if st.queue.len() >= inner.cfg.queue_cap {
        return reject(
            RejectKind::Overloaded,
            format!("queue full: {} jobs queued", st.queue.len()),
        );
    }
    if st.in_flight(&tenant) >= inner.cfg.tenant_cap {
        return reject(
            RejectKind::QuotaExceeded,
            format!(
                "tenant `{tenant}` already has {} jobs in flight",
                inner.cfg.tenant_cap
            ),
        );
    }
    let id = st.next_id;
    // Write-ahead: the submission is durable before it is accepted.
    let rec = obj(vec![
        ("ev", Value::Str("submit".to_string())),
        ("job", Value::U64(id)),
        ("tenant", Value::Str(tenant.clone())),
        ("deadline_ms", Value::U64(deadline_ms)),
        ("spec", spec.to_value()),
    ]);
    if let Err(e) = st.journal.append(&rec) {
        return reject(RejectKind::BadRequest, format!("journal append: {e}"));
    }
    st.next_id += 1;
    st.jobs.push(Job {
        id,
        tenant,
        spec,
        deadline_ms,
        state: JobState::Queued,
        attempts: 0,
        snapshot: None,
        cancel: Arc::new(AtomicBool::new(false)),
        started_at: None,
    });
    st.queue.push_back(id);
    drop(st);
    inner.work_cv.notify_one();
    ok(vec![("job", Value::U64(id))])
}

fn with_job(inner: &Arc<Inner>, req: &Value, f: impl FnOnce(&Job) -> Value) -> Value {
    let Some(id) = get_u64(req, "job") else {
        return reject(RejectKind::BadRequest, "missing `job` field");
    };
    let st = inner.lock();
    match st.job(id) {
        Some(job) => f(job),
        None => reject(RejectKind::UnknownJob, format!("no job {id}")),
    }
}

fn handle_wait(inner: &Arc<Inner>, req: &Value) -> Value {
    let Some(id) = get_u64(req, "job") else {
        return reject(RejectKind::BadRequest, "missing `job` field");
    };
    let mut st = inner.lock();
    loop {
        match st.job(id) {
            None => return reject(RejectKind::UnknownJob, format!("no job {id}")),
            Some(job) if job.state.terminal() => return ok(vec![("job_record", job_value(job))]),
            Some(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return reject(RejectKind::ShuttingDown, "server is shutting down");
                }
                let (guard, _) = inner
                    .done_cv
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }
}

fn handle_stats(inner: &Arc<Inner>) -> Value {
    let st = inner.lock();
    let mut counts = [0u64; 4];
    let mut tenants: Vec<(String, u64)> = Vec::new();
    for job in &st.jobs {
        let i = match job.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done(_) => 2,
            JobState::Failed(_) => 3,
        };
        counts[i] += 1;
        if !job.state.terminal() {
            match tenants.iter_mut().find(|(t, _)| *t == job.tenant) {
                Some((_, n)) => *n += 1,
                None => tenants.push((job.tenant.clone(), 1)),
            }
        }
    }
    ok(vec![
        ("queued", Value::U64(counts[0])),
        ("running", Value::U64(counts[1])),
        ("done", Value::U64(counts[2])),
        ("failed", Value::U64(counts[3])),
        (
            "tenants",
            Value::Object(
                tenants
                    .into_iter()
                    .map(|(t, n)| (t, Value::U64(n)))
                    .collect(),
            ),
        ),
    ])
}
