//! The write-ahead job journal.
//!
//! Every state transition the server must survive — a job's submission, each
//! quantum-edge snapshot of its checkpointed execution, a retry, and its
//! terminal outcome — is appended to a single journal file *before* the
//! in-memory state changes. After a crash (`kill -9` included) the server
//! replays the journal on startup: finished jobs keep their results,
//! unfinished jobs are re-enqueued, and a case job resumes from its last
//! intact snapshot instead of from scratch.
//!
//! Each record is a binary frame around a compact JSON payload:
//!
//! ```text
//! [payload_len u32 LE | fnv1a64(payload) u64 LE | payload bytes]
//! ```
//!
//! Replay stops at the first torn or corrupt frame (a crash mid-append) and
//! truncates the file there, so a torn tail can never poison recovery —
//! everything before it is intact by checksum.

use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit, the frame checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An append-only, checksummed record log (see module docs for framing).
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays every intact
    /// record, and truncates any torn tail. Returns the journal positioned
    /// for appending plus the replayed records in append order.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<Value>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut at = 0usize;
        let mut good = 0usize;
        while bytes.len() - at >= 12 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            let Some(payload) = bytes.get(at + 12..at + 12 + len) else {
                break; // torn tail: frame declared longer than the file
            };
            if fnv1a(payload) != checksum {
                break; // corrupt frame: crash mid-write
            }
            let Ok(text) = std::str::from_utf8(payload) else {
                break;
            };
            let Ok(record) = serde_json::from_str::<Value>(text) else {
                break;
            };
            records.push(record);
            at += 12 + len;
            good = at;
        }
        if good < bytes.len() {
            file.set_len(good as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Appends one record and syncs it to disk — the record is durable
    /// before this returns, which is what makes the journal *write-ahead*.
    pub fn append(&mut self, record: &Value) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::other(format!("journal record serializes: {e}")))?;
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Lowercase hex encoding, for snapshot bytes inside JSON records.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aqs-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec(n: u64) -> Value {
        Value::Object(vec![("n".to_string(), Value::U64(n))])
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip");
        {
            let (mut j, initial) = Journal::open(&path).unwrap();
            assert!(initial.is_empty());
            for n in 0..5 {
                j.append(&rec(n)).unwrap();
            }
        }
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[3], rec(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&rec(1)).unwrap();
            j.append(&rec(2)).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more bytes
        // than the file holds.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&999u32.to_le_bytes()).unwrap();
            f.write_all(&0u64.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (mut j, records) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 2, "intact prefix survives");
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "torn tail removed"
        );
        // The journal keeps working after truncation.
        j.append(&rec(3)).unwrap();
        drop(j);
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_frame_stops_replay_at_the_last_good_record() {
        let path = tmp("corrupt");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&rec(1)).unwrap();
            j.append(&rec(2)).unwrap();
        }
        // Flip a byte inside the second frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], rec(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hex_round_trips() {
        let bytes = vec![0x00, 0x0f, 0xa5, 0xff];
        assert_eq!(to_hex(&bytes), "000fa5ff");
        assert_eq!(from_hex("000fa5ff"), Some(bytes));
        assert_eq!(from_hex("0g"), None);
        assert_eq!(from_hex("abc"), None);
    }
}
