//! A fault-tolerant resident job server for simulation campaigns.
//!
//! `aqs serve` keeps a simulator process warm and accepts jobs over a
//! dependency-free JSONL-over-TCP protocol (std [`std::net::TcpListener`]
//! only — the build container has no registry access). A fixed worker
//! pool drains a bounded queue; per-tenant quotas and queue caps shed load
//! with typed rejections instead of dropped connections.
//!
//! The robustness story leans on the engine's quantum-edge snapshots
//! ([`aqs_cluster::Sim::step_snapshot`]):
//!
//! * case jobs execute in quantum chunks, journaling a checksummed
//!   snapshot at every chunk edge (write-ahead, fsynced);
//! * a panic in a job is caught, isolated, and retried with exponential
//!   backoff — the server and every other job keep running;
//! * a watchdog cancels attempts past their deadline at the next chunk
//!   edge, producing a typed `deadline_exceeded` failure;
//! * after `kill -9`, startup replays the journal and resumes every
//!   in-flight case job from its last intact snapshot — the resumed run
//!   is bit-identical to an uninterrupted one, which the conformance
//!   oracle in `aqs-check` proves for every engine.
//!
//! See [`protocol`] for the wire format, [`journal`] for the on-disk
//! record framing, and [`server`] for the fault envelope.
//!
//! # Examples
//!
//! ```
//! use aqs_serve::{client, protocol, ServeConfig, Server};
//! use serde_json::Value;
//!
//! let mut cfg = ServeConfig::default();
//! cfg.journal = std::env::temp_dir().join("aqs-serve-doc.journal");
//! let _ = std::fs::remove_file(&cfg.journal);
//! let server = Server::start(cfg).unwrap();
//! let addr = server.addr().to_string();
//!
//! let resp = client::request(
//!     &addr,
//!     &protocol::obj(vec![
//!         ("op", Value::Str("submit".into())),
//!         ("workload", Value::Str("pingpong".into())),
//!         ("nodes", Value::U64(2)),
//!     ]),
//! )
//! .unwrap();
//! assert_eq!(protocol::get_bool(&resp, "ok"), Some(true));
//!
//! let job = protocol::get_u64(&resp, "job").unwrap();
//! let done = client::request(
//!     &addr,
//!     &protocol::obj(vec![
//!         ("op", Value::Str("wait".into())),
//!         ("job", Value::U64(job)),
//!     ]),
//! )
//! .unwrap();
//! assert_eq!(protocol::get_bool(&done, "ok"), Some(true));
//! server.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod jobs;
pub mod journal;
pub mod protocol;
pub mod server;

pub use jobs::{CaseJob, JobError, JobSpec, ScenarioJob};
pub use journal::Journal;
pub use protocol::RejectKind;
pub use server::{ServeConfig, Server};
