//! Job specifications and their execution.
//!
//! Two job kinds exist:
//!
//! * **Case** — one workload run, executed through
//!   [`Sim::step_snapshot`] in fixed quantum-budget chunks. After every
//!   chunk the caller-provided checkpoint hook persists the quantum-edge
//!   snapshot, so a crash loses at most one chunk and a resumed run is
//!   bit-identical to an uninterrupted one.
//! * **Scenario** — a declarative scenario TOML executed with
//!   [`aqs_scenario::run_scenario_file`]. Scenario runs are monolithic (no
//!   quantum-edge cut spans *all* of a scenario's engine runs), so recovery
//!   restarts them from scratch; their determinism makes that safe.

use crate::protocol::{get_bool, get_str, get_u64, obj};
use aqs_cluster::{RunReport, Sim, SimSnapshot, SnapshotStep};
use aqs_core::SyncConfig;
use aqs_scenario::{ScenarioError, ScenarioReport};
use aqs_workloads::{Scale, Workload};
use serde_json::Value;

/// A case job: one workload run with checkpointed execution.
#[derive(Clone, Debug)]
pub struct CaseJob {
    /// Workload name (`pingpong`, `cg`, `is`, …; see `aqs policies`).
    pub workload: String,
    /// Cluster size.
    pub nodes: usize,
    /// Synchronization policy string (`truth`, `fixed:<µs>`, `dyn1`, `dyn2`).
    pub policy: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Workload scale (`tiny`, `mini`, `full`).
    pub scale: String,
    /// Smoke-test hook: panic at the start of every execution attempt, to
    /// exercise the server's panic isolation and retry path end to end.
    pub inject_panic: bool,
}

/// A scenario job: a scenario TOML path, run on every engine combination
/// the file configures.
#[derive(Clone, Debug)]
pub struct ScenarioJob {
    /// Path to the scenario file, resolved on the server's filesystem.
    pub file: String,
}

/// What a submitted job asks the server to run.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// A checkpointed workload run.
    Case(CaseJob),
    /// A declarative scenario execution.
    Scenario(ScenarioJob),
}

impl JobSpec {
    /// Parses a spec out of a `submit` request (or a journal `submit`
    /// record — the wire shape is identical on purpose).
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        if let Some(file) = get_str(v, "scenario") {
            return Ok(JobSpec::Scenario(ScenarioJob {
                file: file.to_string(),
            }));
        }
        let Some(workload) = get_str(v, "workload") else {
            return Err("a job needs either `workload` or `scenario`".to_string());
        };
        let job = CaseJob {
            workload: workload.to_string(),
            nodes: get_u64(v, "nodes").unwrap_or(4) as usize,
            policy: get_str(v, "policy").unwrap_or("dyn1").to_string(),
            seed: get_u64(v, "seed").unwrap_or(42),
            scale: get_str(v, "scale").unwrap_or("tiny").to_string(),
            inject_panic: get_bool(v, "inject_panic").unwrap_or(false),
        };
        // Reject bad names at submit time, not first execution.
        build_sim(&job)?;
        Ok(JobSpec::Case(job))
    }

    /// The spec as a JSON object, the exact shape [`Self::from_value`]
    /// accepts — journaled verbatim.
    pub fn to_value(&self) -> Value {
        match self {
            JobSpec::Case(c) => obj(vec![
                ("workload", Value::Str(c.workload.clone())),
                ("nodes", Value::U64(c.nodes as u64)),
                ("policy", Value::Str(c.policy.clone())),
                ("seed", Value::U64(c.seed)),
                ("scale", Value::Str(c.scale.clone())),
                ("inject_panic", Value::Bool(c.inject_panic)),
            ]),
            JobSpec::Scenario(s) => obj(vec![("scenario", Value::Str(s.file.clone()))]),
        }
    }

    /// Short human-readable label for listings.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Case(c) => format!(
                "case {} n={} policy={} seed={}",
                c.workload, c.nodes, c.policy, c.seed
            ),
            JobSpec::Scenario(s) => format!("scenario {}", s.file),
        }
    }
}

/// Why a job attempt failed, in the shape the failure record carries. A
/// typed error is terminal (deterministic — retrying cannot help); only
/// panics are retried.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The watchdog cancelled the attempt past its deadline.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// Every retry attempt panicked; the last panic message.
    Panicked {
        /// The final attempt's panic payload.
        detail: String,
    },
    /// The engine returned a typed [`aqs_cluster::SimError`].
    Engine {
        /// The error's display form.
        detail: String,
    },
    /// A scenario run failed; carries the failing engine-run label and the
    /// first phase reproducing the failure, when attribution found one.
    Scenario {
        /// The engine × worker-count combination that failed, if one did.
        label: Option<String>,
        /// `(index, workload name)` of the first failing phase.
        phase: Option<(usize, String)>,
        /// The full scenario error display.
        detail: String,
    },
    /// The server itself failed the attempt (journal I/O, bad recovery
    /// state) — not the job's fault.
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl JobError {
    /// The wire name of this failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::DeadlineExceeded { .. } => "deadline_exceeded",
            JobError::Panicked { .. } => "panicked",
            JobError::Engine { .. } => "engine",
            JobError::Scenario { .. } => "scenario",
            JobError::Internal { .. } => "internal",
        }
    }

    /// The failure as the JSON `error` object of a job-failure record.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("kind", Value::Str(self.kind().to_string()))];
        match self {
            JobError::DeadlineExceeded { deadline_ms } => {
                fields.push(("deadline_ms", Value::U64(*deadline_ms)));
                fields.push((
                    "detail",
                    Value::Str(format!("deadline of {deadline_ms} ms exceeded")),
                ));
            }
            JobError::Panicked { detail }
            | JobError::Engine { detail }
            | JobError::Internal { detail } => {
                fields.push(("detail", Value::Str(detail.clone())));
            }
            JobError::Scenario {
                label,
                phase,
                detail,
            } => {
                if let Some(label) = label {
                    fields.push(("run", Value::Str(label.clone())));
                }
                if let Some((i, name)) = phase {
                    fields.push(("phase", Value::U64(*i as u64)));
                    fields.push(("phase_workload", Value::Str(name.clone())));
                }
                fields.push(("detail", Value::Str(detail.clone())));
            }
        }
        obj(fields)
    }
}

/// Parses a policy string: `truth`, `fixed:<µs>`, `dyn1`, `dyn2`.
pub fn parse_policy(s: &str) -> Result<SyncConfig, String> {
    match s {
        "truth" => Ok(SyncConfig::ground_truth()),
        "dyn1" => Ok(SyncConfig::paper_dyn1()),
        "dyn2" => Ok(SyncConfig::paper_dyn2()),
        other => match other.strip_prefix("fixed:") {
            Some(us) => us
                .parse::<u64>()
                .map(SyncConfig::fixed_micros)
                .map_err(|_| format!("bad fixed quantum `{us}`")),
            None => Err(format!(
                "unknown policy `{other}` (expected truth | fixed:<µs> | dyn1 | dyn2)"
            )),
        },
    }
}

/// Builds the simulation for a case job. Every attempt and every recovery
/// builds the same `Sim`, so the spec fingerprint embedded in journaled
/// snapshots always matches.
pub fn build_sim(job: &CaseJob) -> Result<Sim, String> {
    let workload = Workload::parse(&job.workload)
        .ok_or_else(|| format!("unknown workload `{}`", job.workload))?;
    let scale = match job.scale.as_str() {
        "tiny" => Scale::Tiny,
        "mini" => Scale::Mini,
        "full" => Scale::Full,
        other => return Err(format!("unknown scale `{other}`")),
    };
    if job.nodes == 0 {
        return Err("a case job needs at least one node".to_string());
    }
    let policy = parse_policy(&job.policy)?;
    let spec = workload.with_scale(scale).build(job.nodes, job.seed);
    Ok(Sim::new(spec.programs).sync(policy).seed(job.seed))
}

/// The engine-independent functional outcome of a finished run, as the
/// `outcome` object of a job-done record.
pub fn outcome_value(report: &RunReport) -> Value {
    obj(vec![
        ("sim_end_ns", Value::U64(report.sim_end.as_nanos())),
        ("total_packets", Value::U64(report.total_packets)),
        ("messages_received", Value::U64(report.messages_received)),
        ("stragglers", Value::U64(report.stragglers.count())),
        ("total_quanta", Value::U64(report.total_quanta)),
    ])
}

/// A finished scenario's outcome object.
pub fn scenario_outcome_value(report: &ScenarioReport) -> Value {
    obj(vec![
        ("scenario", Value::Str(report.name.clone())),
        ("sim_end_ns", Value::U64(report.outcome.sim_end.as_nanos())),
        ("total_packets", Value::U64(report.outcome.total_packets)),
        (
            "messages_received",
            Value::U64(report.outcome.messages_received),
        ),
        ("runs", Value::U64(report.runs.len() as u64)),
        ("checks", Value::U64(report.checks.len() as u64)),
    ])
}

/// Runs a case job to completion in `chunk_quanta` chunks, starting from
/// `from` (the last journaled snapshot, or `None` for a fresh run).
///
/// * `cancelled` is polled between chunks — the watchdog's deadline signal
///   lands there, bounding how long past its deadline a job can run by one
///   chunk.
/// * `checkpoint` persists each quantum-edge snapshot *before* execution
///   continues (write-ahead), and is handed the snapshot so the in-memory
///   job record can track it too.
pub fn run_case(
    job: &CaseJob,
    from: Option<SimSnapshot>,
    chunk_quanta: u64,
    deadline_ms: u64,
    cancelled: &dyn Fn() -> bool,
    checkpoint: &mut dyn FnMut(&SimSnapshot) -> Result<(), String>,
) -> Result<Value, JobError> {
    if job.inject_panic {
        panic!("injected panic (inject_panic=true)");
    }
    let sim = build_sim(job).map_err(|detail| JobError::Internal { detail })?;
    let mut cur = from;
    loop {
        if cancelled() {
            return Err(JobError::DeadlineExceeded { deadline_ms });
        }
        match sim.step_snapshot(cur.as_ref(), chunk_quanta) {
            Ok(SnapshotStep::Snapshot(snap)) => {
                checkpoint(&snap).map_err(|detail| JobError::Internal { detail })?;
                cur = Some(snap);
            }
            Ok(SnapshotStep::Finished(report)) => return Ok(outcome_value(&report)),
            Err(e) => {
                return Err(JobError::Engine {
                    detail: e.to_string(),
                })
            }
        }
    }
}

/// Runs a scenario job. Failures keep the scenario error's structure: the
/// failing engine-run label and attributed phase ride the failure record
/// instead of being flattened into prose.
pub fn run_scenario_job(job: &ScenarioJob) -> Result<Value, JobError> {
    match aqs_scenario::run_scenario_file(&job.file) {
        Ok(report) => Ok(scenario_outcome_value(&report)),
        Err(e) => {
            let detail = e.to_string();
            let (label, phase) = match e {
                ScenarioError::Run { label, phase, .. } => (Some(label), phase),
                _ => (None, None),
            };
            Err(JobError::Scenario {
                label,
                phase,
                detail,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_their_wire_shape() {
        let v = obj(vec![
            ("workload", Value::Str("pingpong".to_string())),
            ("nodes", Value::U64(2)),
            ("policy", Value::Str("fixed:100".to_string())),
            ("seed", Value::U64(7)),
        ]);
        let spec = JobSpec::from_value(&v).unwrap();
        let spec2 = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(spec.label(), spec2.label());
        let s = JobSpec::from_value(&obj(vec![(
            "scenario",
            Value::Str("scenarios/demo.toml".to_string()),
        )]))
        .unwrap();
        assert!(matches!(&s, JobSpec::Scenario(j) if j.file == "scenarios/demo.toml"));
    }

    #[test]
    fn bad_specs_are_rejected_at_submit_time() {
        for (k, v, needle) in [
            ("workload", "no-such-workload", "no-such-workload"),
            ("policy", "fixed:abc", "abc"),
            ("scale", "huge", "huge"),
        ] {
            let mut fields = vec![("workload", Value::Str("pingpong".to_string()))];
            if k != "workload" {
                fields.push((k, Value::Str(v.to_string())));
            } else {
                fields[0] = ("workload", Value::Str(v.to_string()));
            }
            let err = JobSpec::from_value(&obj(fields)).unwrap_err();
            assert!(
                err.contains(needle),
                "error `{err}` does not name `{needle}`"
            );
        }
        assert!(JobSpec::from_value(&obj(vec![])).is_err());
    }

    #[test]
    fn case_execution_checkpoints_and_resumes_bit_identically() {
        let job = CaseJob {
            workload: "pingpong".to_string(),
            nodes: 2,
            policy: "truth".to_string(),
            seed: 3,
            scale: "tiny".to_string(),
            inject_panic: false,
        };
        // Uninterrupted.
        let mut snaps = Vec::new();
        let full = run_case(&job, None, 50, 0, &|| false, &mut |s| {
            snaps.push(s.clone());
            Ok(())
        })
        .unwrap();
        assert!(!snaps.is_empty(), "a multi-chunk run must checkpoint");
        // "Crash" after the second checkpoint and resume from it.
        let resumed = run_case(&job, Some(snaps[1].clone()), 50, 0, &|| false, &mut |_| {
            Ok(())
        })
        .unwrap();
        assert_eq!(full, resumed, "resume from a checkpoint diverged");
    }

    #[test]
    fn scenario_failures_keep_their_run_label_and_phase_attribution() {
        let err = JobError::Scenario {
            label: Some("sharded m=2".to_string()),
            phase: Some((1, "cg".to_string())),
            detail: "scenario `x`: run `sharded m=2` failed".to_string(),
        };
        let v = err.to_value();
        assert_eq!(crate::protocol::get_str(&v, "kind"), Some("scenario"));
        assert_eq!(crate::protocol::get_str(&v, "run"), Some("sharded m=2"));
        assert_eq!(crate::protocol::get_u64(&v, "phase"), Some(1));
        assert_eq!(crate::protocol::get_str(&v, "phase_workload"), Some("cg"));
    }

    #[test]
    fn cancellation_is_a_typed_deadline_error() {
        let job = CaseJob {
            workload: "cg".to_string(),
            nodes: 4,
            policy: "truth".to_string(),
            seed: 1,
            scale: "mini".to_string(),
            inject_panic: false,
        };
        let err = run_case(&job, None, 10, 250, &|| true, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(
            err,
            JobError::DeadlineExceeded { deadline_ms: 250 }
        ));
        let v = err.to_value();
        assert_eq!(
            crate::protocol::get_str(&v, "kind"),
            Some("deadline_exceeded")
        );
    }
}
