//! A minimal one-shot client for the JSONL protocol, shared by the CLI
//! and the integration tests.

use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Sends one request to `addr` and returns the one-line response.
pub fn request(addr: &str, req: &Value) -> io::Result<Value> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut text = serde_json::to_string(req)
        .map_err(|e| io::Error::other(format!("request serializes: {e}")))?;
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    serde_json::from_str(&line).map_err(|e| io::Error::other(format!("response is not JSON: {e}")))
}
