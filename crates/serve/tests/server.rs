//! End-to-end tests of the resident job server's fault envelope, all over
//! real TCP connections against an in-process server.

use aqs_serve::client::request;
use aqs_serve::protocol::{get_bool, get_str, get_u64, obj};
use aqs_serve::{ServeConfig, Server};
use serde_json::Value;
use std::path::PathBuf;

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "aqs-serve-test-{name}-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn start(name: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (Server, String, PathBuf) {
    let mut cfg = ServeConfig {
        journal: tmp_journal(name),
        ..Default::default()
    };
    let journal = cfg.journal.clone();
    tweak(&mut cfg);
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr, journal)
}

fn submit_fields(extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![
        ("op", Value::Str("submit".to_string())),
        ("workload", Value::Str("pingpong".to_string())),
        ("nodes", Value::U64(2)),
        ("policy", Value::Str("dyn1".to_string())),
        ("seed", Value::U64(7)),
    ];
    fields.extend(extra);
    obj(fields)
}

fn wait_for(addr: &str, job: u64) -> Value {
    let resp = request(
        addr,
        &obj(vec![
            ("op", Value::Str("wait".to_string())),
            ("job", Value::U64(job)),
        ]),
    )
    .expect("wait round-trips");
    assert_eq!(get_bool(&resp, "ok"), Some(true), "wait failed: {resp:?}");
    resp.get("job_record")
        .cloned()
        .expect("wait returns the job record")
}

fn error_kind(record: &Value) -> String {
    let err = record.get("error").expect("failed job carries an error");
    get_str(err, "kind").expect("error has a kind").to_string()
}

#[test]
fn healthy_job_matches_a_direct_run_bit_for_bit() {
    let (server, addr, journal) = start("healthy", |_| {});
    let resp = request(&addr, &submit_fields(vec![])).unwrap();
    assert_eq!(get_bool(&resp, "ok"), Some(true), "submit failed: {resp:?}");
    let job = get_u64(&resp, "job").unwrap();
    let record = wait_for(&addr, job);
    assert_eq!(get_str(&record, "state"), Some("done"));
    let outcome = record.get("outcome").unwrap();

    // The same case run directly, without the server or checkpointing.
    let case = aqs_serve::CaseJob {
        workload: "pingpong".to_string(),
        nodes: 2,
        policy: "dyn1".to_string(),
        seed: 7,
        scale: "tiny".to_string(),
        inject_panic: false,
    };
    let direct = aqs_serve::jobs::build_sim(&case).unwrap().run();
    assert_eq!(
        outcome,
        &aqs_serve::jobs::outcome_value(&direct),
        "server outcome diverged from a direct run"
    );
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn a_panicking_job_is_retried_then_fails_typed_and_the_server_survives() {
    let (server, addr, journal) = start("panic", |cfg| {
        cfg.max_attempts = 3;
        cfg.backoff_base_ms = 1;
    });
    let resp = request(
        &addr,
        &submit_fields(vec![("inject_panic", Value::Bool(true))]),
    )
    .unwrap();
    let job = get_u64(&resp, "job").unwrap();
    let record = wait_for(&addr, job);
    assert_eq!(get_str(&record, "state"), Some("failed"));
    assert_eq!(error_kind(&record), "panicked");
    assert_eq!(get_u64(&record, "attempts"), Some(3), "retries exhausted");
    let detail = get_str(record.get("error").unwrap(), "detail").unwrap();
    assert!(
        detail.contains("injected panic"),
        "failure record lost the panic message: {detail}"
    );

    // The server is still healthy: a fresh job on the same server runs.
    let resp = request(&addr, &submit_fields(vec![])).unwrap();
    let job = get_u64(&resp, "job").unwrap();
    let record = wait_for(&addr, job);
    assert_eq!(get_str(&record, "state"), Some("done"));
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn a_job_past_its_deadline_fails_with_a_typed_deadline_error() {
    let (server, addr, journal) = start("deadline", |cfg| {
        // One-quantum chunks make deadline checks frequent; `full`-scale
        // cg is long enough to blow a 30 ms budget many times over.
        cfg.chunk_quanta = 1;
    });
    let resp = request(
        &addr,
        &obj(vec![
            ("op", Value::Str("submit".to_string())),
            ("workload", Value::Str("cg".to_string())),
            ("nodes", Value::U64(8)),
            ("policy", Value::Str("truth".to_string())),
            ("scale", Value::Str("full".to_string())),
            ("deadline_ms", Value::U64(30)),
        ]),
    )
    .unwrap();
    let job = get_u64(&resp, "job").unwrap();
    let record = wait_for(&addr, job);
    assert_eq!(get_str(&record, "state"), Some("failed"), "{record:?}");
    assert_eq!(error_kind(&record), "deadline_exceeded");
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn quota_and_queue_limits_shed_load_with_typed_rejections() {
    let (server, addr, journal) = start("quota", |cfg| {
        cfg.workers = 1;
        cfg.tenant_cap = 2;
        cfg.queue_cap = 3;
        // Slow jobs keep the queue occupied while the burst lands.
        cfg.chunk_quanta = 1;
    });
    let slow = |tenant: &str| {
        obj(vec![
            ("op", Value::Str("submit".to_string())),
            ("workload", Value::Str("cg".to_string())),
            ("nodes", Value::U64(8)),
            ("policy", Value::Str("truth".to_string())),
            ("scale", Value::Str("full".to_string())),
            ("tenant", Value::Str(tenant.to_string())),
            ("deadline_ms", Value::U64(2_000)),
        ])
    };
    // Tenant `a` fills its quota of 2.
    for _ in 0..2 {
        let r = request(&addr, &slow("a")).unwrap();
        assert_eq!(get_bool(&r, "ok"), Some(true), "{r:?}");
    }
    let r = request(&addr, &slow("a")).unwrap();
    assert_eq!(get_bool(&r, "ok"), Some(false));
    assert_eq!(
        get_str(r.get("error").unwrap(), "kind"),
        Some("quota_exceeded")
    );

    // Other tenants fill the queue; the next submission is shed.
    let mut last = None;
    for t in ["b", "c", "d", "e", "f"] {
        last = Some(request(&addr, &slow(t)).unwrap());
        if get_bool(last.as_ref().unwrap(), "ok") == Some(false) {
            break;
        }
    }
    let last = last.unwrap();
    assert_eq!(get_bool(&last, "ok"), Some(false), "burst was never shed");
    assert_eq!(
        get_str(last.get("error").unwrap(), "kind"),
        Some("overloaded")
    );

    // Typed rejections, not a wedged server: stats still answers.
    let stats = request(&addr, &obj(vec![("op", Value::Str("stats".to_string()))])).unwrap();
    assert_eq!(get_bool(&stats, "ok"), Some(true));
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn unknown_jobs_and_malformed_requests_get_typed_rejections() {
    let (server, addr, journal) = start("badreq", |_| {});
    let r = request(
        &addr,
        &obj(vec![
            ("op", Value::Str("status".to_string())),
            ("job", Value::U64(999)),
        ]),
    )
    .unwrap();
    assert_eq!(
        get_str(r.get("error").unwrap(), "kind"),
        Some("unknown_job")
    );
    let r = request(
        &addr,
        &obj(vec![("op", Value::Str("frobnicate".to_string()))]),
    )
    .unwrap();
    assert_eq!(
        get_str(r.get("error").unwrap(), "kind"),
        Some("bad_request")
    );
    let r = request(
        &addr,
        &obj(vec![
            ("op", Value::Str("submit".to_string())),
            ("workload", Value::Str("no-such".to_string())),
        ]),
    )
    .unwrap();
    assert_eq!(
        get_str(r.get("error").unwrap(), "kind"),
        Some("bad_request")
    );
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn recovery_resumes_from_the_journaled_snapshot_bit_identically() {
    let journal = tmp_journal("recover");
    let case = aqs_serve::CaseJob {
        workload: "cg".to_string(),
        nodes: 4,
        policy: "dyn1".to_string(),
        seed: 11,
        scale: "mini".to_string(),
        inject_panic: false,
    };

    // Forge the journal a crashed server would leave behind: a submitted
    // job plus one mid-run snapshot, and no terminal record. Using the
    // journal API directly stands in for `kill -9` — nothing after the
    // snapshot ever reached disk.
    let snap = aqs_serve::jobs::build_sim(&case)
        .unwrap()
        .snapshot_at(40)
        .unwrap();
    {
        let (mut j, initial) = aqs_serve::Journal::open(&journal).unwrap();
        assert!(initial.is_empty());
        j.append(&obj(vec![
            ("ev", Value::Str("submit".to_string())),
            ("job", Value::U64(1)),
            ("tenant", Value::Str("default".to_string())),
            ("deadline_ms", Value::U64(0)),
            ("spec", aqs_serve::JobSpec::Case(case.clone()).to_value()),
        ]))
        .unwrap();
        j.append(&obj(vec![
            ("ev", Value::Str("snapshot".to_string())),
            ("job", Value::U64(1)),
            ("quanta", Value::U64(snap.quanta())),
            (
                "bytes",
                Value::Str(aqs_serve::journal::to_hex(&snap.to_bytes())),
            ),
        ]))
        .unwrap();
    }
    // Torn tail on top: the crash hit mid-append.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(&[0xAA; 7]).unwrap();
    }

    let cfg = ServeConfig {
        journal: journal.clone(),
        ..Default::default()
    };
    let server = Server::start(cfg).expect("recovery tolerates the torn tail");
    let addr = server.addr().to_string();
    let record = wait_for(&addr, 1);
    assert_eq!(get_str(&record, "state"), Some("done"), "{record:?}");
    let outcome = record.get("outcome").cloned().unwrap();

    let direct = aqs_serve::jobs::build_sim(&case).unwrap().run();
    assert_eq!(
        outcome,
        aqs_serve::jobs::outcome_value(&direct),
        "resumed run diverged from an uninterrupted one"
    );
    server.stop();

    // Terminal results survive yet another restart.
    let cfg = ServeConfig {
        journal: journal.clone(),
        ..Default::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();
    let r = request(
        &addr,
        &obj(vec![
            ("op", Value::Str("status".to_string())),
            ("job", Value::U64(1)),
        ]),
    )
    .unwrap();
    let record = r.get("job_record").unwrap();
    assert_eq!(get_str(record, "state"), Some("done"));
    assert_eq!(record.get("outcome"), Some(&outcome));
    server.stop();
    let _ = std::fs::remove_file(journal);
}

#[test]
fn a_failed_scenario_job_carries_the_scenario_error_in_its_record() {
    // A scenario file whose assertion cannot hold: max_sim_ms = 0.
    let mut scenario = std::env::temp_dir();
    scenario.push(format!(
        "aqs-serve-test-scenario-{}.toml",
        std::process::id()
    ));
    std::fs::write(
        &scenario,
        r#"
name = "doomed"
nodes = 2

[[phases]]
workload = "pingpong"
rounds = 5

[asserts]
max_sim_ms = 0
"#,
    )
    .unwrap();

    let (server, addr, journal) = start("scenario", |_| {});
    let resp = request(
        &addr,
        &obj(vec![
            ("op", Value::Str("submit".to_string())),
            (
                "scenario",
                Value::Str(scenario.to_string_lossy().to_string()),
            ),
        ]),
    )
    .unwrap();
    assert_eq!(get_bool(&resp, "ok"), Some(true), "{resp:?}");
    let job = get_u64(&resp, "job").unwrap();
    let record = wait_for(&addr, job);
    assert_eq!(get_str(&record, "state"), Some("failed"));
    assert_eq!(error_kind(&record), "scenario");
    let detail = get_str(record.get("error").unwrap(), "detail").unwrap();
    assert!(
        detail.contains("doomed"),
        "failure record does not name the scenario: {detail}"
    );
    server.stop();
    let _ = std::fs::remove_file(journal);
    let _ = std::fs::remove_file(scenario);
}
