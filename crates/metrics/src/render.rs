//! Plain-text rendering of tables and charts.
//!
//! The harness prints the paper's figures as text so the reproduction is
//! self-contained (no plotting stack): grouped horizontal bars for
//! Figures 6/7, a log-y scatter for Figure 8, and a per-node traffic
//! density grid for Figure 9's left-hand panels.

/// Renders an aligned table with a header row.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// let t = aqs_metrics::render_table(
///     &["Quantum (µs)", "Speedup", "Error"],
///     &[vec!["100".into(), "72.7x".into(), "0.10%".into()]],
/// );
/// assert!(t.contains("72.7x"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), headers.len(), "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Renders grouped horizontal bars: one group per `group_labels` entry, one
/// bar per series, scaled to the global maximum.
///
/// `values[g][s]` is the value of series `s` in group `g`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent, `width` is zero, or any value is
/// negative/NaN.
///
/// # Examples
///
/// ```
/// let chart = aqs_metrics::render_bar_chart(
///     &["2", "4", "8"],
///     &["10", "dyn"],
///     &[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 8.0]],
///     20,
///     "x",
/// );
/// assert!(chart.contains("# processors = 8"));
/// ```
pub fn render_bar_chart(
    group_labels: &[&str],
    series_labels: &[&str],
    values: &[Vec<f64>],
    width: usize,
    unit: &str,
) -> String {
    assert!(width > 0, "width must be positive");
    assert_eq!(
        values.len(),
        group_labels.len(),
        "one value row per group required"
    );
    for (g, row) in values.iter().enumerate() {
        assert_eq!(row.len(), series_labels.len(), "group {g} has wrong arity");
        assert!(
            row.iter().all(|v| v.is_finite() && *v >= 0.0),
            "bar values must be >= 0"
        );
    }
    let max = values
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = series_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (g, group) in group_labels.iter().enumerate() {
        out.push_str(&format!("# processors = {group}\n"));
        for (s, series) in series_labels.iter().enumerate() {
            let v = values[g][s];
            let bar_len = ((v / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {series:<label_w$} |{} {v:.2}{unit}\n",
                "█".repeat(bar_len),
            ));
        }
    }
    out
}

/// Renders a log-y scatter (Figure 8): x is linear error (fraction), y is
/// log-scaled speedup. Points on the Pareto front are drawn `◆`, others `·`,
/// and every point is listed in a legend with its coordinates.
///
/// # Panics
///
/// Panics if any point has a non-positive speedup (log axis) or NaN values.
pub fn render_scatter_log_y(points: &[crate::ParetoPoint], cols: usize, rows: usize) -> String {
    assert!(cols >= 10 && rows >= 4, "canvas too small");
    assert!(
        points
            .iter()
            .all(|p| p.speedup > 0.0 && p.error.is_finite()),
        "log-y scatter needs positive speedups"
    );
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let front = crate::pareto_front(points);
    let x_max = points
        .iter()
        .map(|p| p.error)
        .fold(0.0f64, f64::max)
        .max(1e-6);
    let y_min = points
        .iter()
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min);
    let y_max = points.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
    let (ly_min, ly_max) = (y_min.ln(), (y_max.ln()).max(y_min.ln() + 1e-9));
    let mut grid = vec![vec![' '; cols]; rows];
    for (i, p) in points.iter().enumerate() {
        let cx = ((p.error / x_max) * (cols - 1) as f64).round() as usize;
        let cy =
            (((p.speedup.ln() - ly_min) / (ly_max - ly_min)) * (rows - 1) as f64).round() as usize;
        let row = rows - 1 - cy;
        grid[row][cx] = if front.contains(&i) { '◆' } else { '·' };
    }
    let mut out = String::new();
    out.push_str(&format!("speedup (log scale), max {y_max:.1}x\n"));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out.push_str(&format!("   accuracy error 0 .. {:.0}%\n", x_max * 100.0));
    for (i, p) in points.iter().enumerate() {
        let mark = if front.contains(&i) {
            "◆ pareto"
        } else {
            "·       "
        };
        out.push_str(&format!(
            "  {mark}  {:<16} error {:>7.2}%  speedup {:>6.2}x\n",
            p.label,
            p.error * 100.0,
            p.speedup
        ));
    }
    out
}

/// Renders the Figure 9 left-panel style traffic density grid: one text row
/// per node (or per node bucket when there are more nodes than `max_rows`),
/// one column per time bucket; cell brightness encodes packet count.
///
/// `events` are `(time_fraction, node_index)` pairs with `time_fraction`
/// already normalized into `[0, 1]`.
///
/// # Panics
///
/// Panics if a `time_fraction` is outside `[0, 1]`, a node index is out of
/// range, or dimensions are zero.
pub fn render_traffic_density(
    events: &[(f64, usize)],
    n_nodes: usize,
    cols: usize,
    max_rows: usize,
) -> String {
    assert!(
        n_nodes > 0 && cols > 0 && max_rows > 0,
        "dimensions must be positive"
    );
    let rows = n_nodes.min(max_rows);
    let nodes_per_row = n_nodes.div_ceil(rows);
    let mut counts = vec![vec![0usize; cols]; rows];
    for &(tf, node) in events {
        assert!((0.0..=1.0).contains(&tf), "time fraction {tf} out of [0,1]");
        assert!(node < n_nodes, "node {node} out of range");
        let c = ((tf * cols as f64) as usize).min(cols - 1);
        counts[node / nodes_per_row][c] += 1;
    }
    const SHADES: [char; 6] = [' ', '.', ':', '*', '#', '@'];
    let max = counts.iter().flatten().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (r, row) in counts.iter().enumerate() {
        let lo = r * nodes_per_row;
        let hi = ((r + 1) * nodes_per_row - 1).min(n_nodes - 1);
        let label = if lo == hi {
            format!("n{lo:<4}")
        } else {
            format!("n{lo}-{hi}")
        };
        out.push_str(&format!("{label:>8} |"));
        for &c in row {
            let shade = if c == 0 {
                SHADES[0]
            } else {
                let idx = 1 + (c * (SHADES.len() - 2)) / max;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(shade);
        }
        out.push_str("|\n");
    }
    out
}

/// Renders a horizontal-bar histogram: one row per `(label, count)` pair,
/// bars scaled to the largest count.
///
/// # Panics
///
/// Panics if `width` is zero.
///
/// # Examples
///
/// ```
/// let h = aqs_metrics::render_histogram(
///     &[("1µs".into(), 10), ("2µs".into(), 5)],
///     10,
/// );
/// assert!(h.contains("1µs"));
/// ```
pub fn render_histogram(rows: &[(String, u64)], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let max = rows.iter().map(|(_, c)| *c).max().unwrap_or(0).max(1);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, count) in rows {
        let bar_len = ((*count as f64 / max as f64) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:>label_w$} |{} {count}\n",
            "█".repeat(bar_len),
        ));
    }
    out
}

/// Renders a time series as a log-y column chart: the series is bucketed
/// into `cols` columns (bucket mean), each drawn as a `*` at its log-scaled
/// height. Non-positive values pin to the bottom row.
///
/// # Panics
///
/// Panics if the canvas is smaller than 10×4 or any value is NaN/negative.
pub fn render_series_log_y(series: &[f64], cols: usize, rows: usize) -> String {
    assert!(cols >= 10 && rows >= 4, "canvas too small");
    assert!(
        series.iter().all(|v| v.is_finite() && *v >= 0.0),
        "series values must be finite and non-negative"
    );
    if series.is_empty() {
        return String::from("(no samples)\n");
    }
    let cols = cols.min(series.len());
    let per_col = series.len().div_ceil(cols);
    let means: Vec<f64> = series
        .chunks(per_col)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let y_min = means
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    let y_max = means.iter().copied().fold(0.0f64, f64::max);
    if y_max <= 0.0 || !y_min.is_finite() {
        return String::from("(all-zero series)\n");
    }
    let (ly_min, ly_max) = (y_min.ln(), y_max.ln().max(y_min.ln() + 1e-9));
    let mut grid = vec![vec![' '; means.len()]; rows];
    for (x, &v) in means.iter().enumerate() {
        let cy = if v <= 0.0 {
            0
        } else {
            (((v.ln() - ly_min) / (ly_max - ly_min)) * (rows - 1) as f64).round() as usize
        };
        grid[rows - 1 - cy][x] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("max {y_max:.0}\n"));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(means.len()));
    out.push('\n');
    out.push_str(&format!("min {y_min:.0} ({} samples)\n", series.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParetoPoint;

    #[test]
    fn table_aligns_and_contains_cells() {
        let t = render_table(
            &["a", "long header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("long header"));
        assert!(t.contains("333"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, 2 rows
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = render_bar_chart(&["8"], &["fast", "slow"], &[vec![10.0, 5.0]], 10, "x");
        let fast_bar = chart.lines().find(|l| l.contains("fast")).unwrap();
        let slow_bar = chart.lines().find(|l| l.contains("slow")).unwrap();
        assert_eq!(fast_bar.matches('█').count(), 10);
        assert_eq!(slow_bar.matches('█').count(), 5);
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let chart = render_bar_chart(&["2"], &["a"], &[vec![0.0]], 10, "%");
        assert!(chart.contains("0.00%"));
    }

    #[test]
    fn scatter_marks_front_points() {
        let pts = vec![
            ParetoPoint::new(0.01, 20.0, "dyn"),
            ParetoPoint::new(0.85, 65.0, "Q1000"),
            ParetoPoint::new(0.3, 5.0, "bad"),
        ];
        let s = render_scatter_log_y(&pts, 40, 10);
        assert!(s.contains("◆ pareto  dyn"));
        assert!(s.contains("·         bad"));
        assert_eq!(s.matches('◆').count(), 2 + 2); // 2 in grid + 2 in legend
    }

    #[test]
    fn scatter_empty_is_graceful() {
        assert_eq!(render_scatter_log_y(&[], 40, 10), "(no points)\n");
    }

    #[test]
    fn traffic_density_shapes() {
        let events: Vec<(f64, usize)> = (0..100).map(|i| (i as f64 / 100.0, i % 4)).collect();
        let grid = render_traffic_density(&events, 4, 20, 64);
        assert_eq!(grid.lines().count(), 4);
        assert!(grid.contains("n0"));
    }

    #[test]
    fn traffic_density_buckets_many_nodes() {
        let events = vec![(0.5, 63usize)];
        let grid = render_traffic_density(&events, 64, 10, 16);
        assert_eq!(grid.lines().count(), 16);
        assert!(grid.contains("n60-63"));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn traffic_density_rejects_bad_fraction() {
        let _ = render_traffic_density(&[(1.5, 0)], 2, 10, 10);
    }

    #[test]
    fn histogram_scales_bars_to_max() {
        let h = render_histogram(&[("a".into(), 10), ("bb".into(), 5)], 10);
        let a = h.lines().find(|l| l.contains(" a |")).unwrap();
        let b = h.lines().find(|l| l.contains("bb |")).unwrap();
        assert_eq!(a.matches('█').count(), 10);
        assert_eq!(b.matches('█').count(), 5);
    }

    #[test]
    fn histogram_handles_empty_and_zero() {
        assert_eq!(render_histogram(&[], 10), "");
        let h = render_histogram(&[("z".into(), 0)], 10);
        assert!(h.contains("z |"));
    }

    #[test]
    fn series_log_y_buckets_long_series() {
        let series: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = render_series_log_y(&series, 40, 6);
        assert!(s.contains("1000 samples"));
        assert_eq!(s.matches('*').count(), 40);
    }

    #[test]
    fn series_log_y_graceful_degenerate_inputs() {
        assert_eq!(render_series_log_y(&[], 40, 6), "(no samples)\n");
        assert_eq!(
            render_series_log_y(&[0.0, 0.0], 40, 6),
            "(all-zero series)\n"
        );
    }
}
