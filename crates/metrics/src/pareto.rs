//! Pareto-front extraction for the Figure 8 speed/accuracy scatter.

use serde::{Deserialize, Serialize};

/// One experiment in the speed/accuracy plane.
///
/// `error` is minimized (x axis), `speedup` is maximized (log y axis).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Accuracy error vs. ground truth (fraction; minimized).
    pub error: f64,
    /// Simulation speedup vs. ground truth (maximized).
    pub speedup: f64,
    /// Display label ("NAS dyn 1", "NAMD 100", …).
    pub label: String,
}

impl ParetoPoint {
    /// Creates a point.
    pub fn new(error: f64, speedup: f64, label: impl Into<String>) -> Self {
        Self {
            error,
            speedup,
            label: label.into(),
        }
    }

    /// `true` if `self` dominates `other`: at least as good on both
    /// criteria and strictly better on one (the paper's definition, §5).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.error <= other.error && self.speedup >= other.speedup;
        let better = self.error < other.error || self.speedup > other.speedup;
        no_worse && better
    }
}

/// Indices of the Pareto-optimal points (non-dominated), sorted by
/// ascending error.
///
/// # Panics
///
/// Panics if any coordinate is NaN.
///
/// # Examples
///
/// ```
/// use aqs_metrics::{pareto_front, ParetoPoint};
///
/// let pts = vec![
///     ParetoPoint::new(0.01, 20.0, "dyn"),
///     ParetoPoint::new(0.85, 65.0, "Q=1000"),
///     ParetoPoint::new(0.30, 10.0, "dominated"),
/// ];
/// let front = pareto_front(&pts);
/// assert_eq!(front, vec![0, 1]); // "dominated" loses to "dyn" on both axes
/// ```
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<usize> {
    assert!(
        points
            .iter()
            .all(|p| !p.error.is_nan() && !p.speedup.is_nan()),
        "NaN coordinates cannot be ranked"
    );
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && q.dominates(&points[i]))
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a]
            .error
            .partial_cmp(&points[b].error)
            .expect("NaN ruled out")
            .then(
                points[a]
                    .speedup
                    .partial_cmp(&points[b].speedup)
                    .expect("NaN ruled out"),
            )
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_point_is_optimal() {
        let pts = vec![ParetoPoint::new(0.5, 1.0, "only")];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn strict_domination_removes_point() {
        let pts = vec![
            ParetoPoint::new(0.1, 10.0, "good"),
            ParetoPoint::new(0.2, 5.0, "bad"),
        ];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn duplicate_points_both_survive() {
        // Identical points do not dominate each other (no strict better).
        let pts = vec![
            ParetoPoint::new(0.1, 10.0, "a"),
            ParetoPoint::new(0.1, 10.0, "b"),
        ];
        assert_eq!(pareto_front(&pts).len(), 2);
    }

    #[test]
    fn front_is_sorted_by_error() {
        let pts = vec![
            ParetoPoint::new(0.9, 100.0, "fast"),
            ParetoPoint::new(0.0, 1.0, "exact"),
            ParetoPoint::new(0.3, 30.0, "mid"),
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![1, 2, 0]);
    }

    #[test]
    fn dominates_requires_strictness() {
        let a = ParetoPoint::new(0.1, 10.0, "a");
        assert!(!a.dominates(&a.clone()));
        let better = ParetoPoint::new(0.1, 11.0, "b");
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
    }

    proptest! {
        /// No point on the front is dominated by any input point, and every
        /// point off the front is dominated by someone.
        #[test]
        fn front_is_exactly_the_nondominated_set(
            coords in prop::collection::vec((0.0f64..1.0, 1.0f64..100.0), 1..40)
        ) {
            let pts: Vec<ParetoPoint> = coords
                .iter()
                .enumerate()
                .map(|(i, &(e, s))| ParetoPoint::new(e, s, format!("p{i}")))
                .collect();
            let front = pareto_front(&pts);
            for i in 0..pts.len() {
                let dominated = pts.iter().enumerate().any(|(j, q)| j != i && q.dominates(&pts[i]));
                prop_assert_eq!(front.contains(&i), !dominated);
            }
        }
    }
}
