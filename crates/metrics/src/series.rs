//! Time series with bucketing, for the "over time" panels of Figure 9.

use serde::{Deserialize, Serialize};

/// An (x, y) series with helpers for windowed aggregation.
///
/// # Examples
///
/// ```
/// use aqs_metrics::TimeSeries;
///
/// let mut s = TimeSeries::new();
/// for i in 0..100 {
///     s.push(i as f64, (i % 10) as f64);
/// }
/// let buckets = s.bucket_mean(10);
/// assert_eq!(buckets.len(), 10);
/// // Every bucket averages one full 0..10 ramp:
/// assert!((buckets[0].1 - 4.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a series from points.
    ///
    /// # Panics
    ///
    /// Panics if x values are not non-decreasing or any coordinate is NaN.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        let mut s = Self::new();
        for (x, y) in points {
            s.push(x, y);
        }
        s
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` is smaller than the previous x, or if either value is
    /// NaN.
    pub fn push(&mut self, x: f64, y: f64) {
        assert!(!x.is_nan() && !y.is_nan(), "NaN point");
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(x >= last_x, "x must be non-decreasing ({x} after {last_x})");
        }
        self.points.push((x, y));
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// x-range `(min, max)`, or `None` when empty.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        Some((self.points.first()?.0, self.points.last()?.0))
    }

    /// Splits the x-range into `n` equal windows and returns
    /// `(window_center, mean_y)` for every non-empty window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bucket_mean(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "need at least one bucket");
        let Some((lo, hi)) = self.x_range() else {
            return Vec::new();
        };
        let width = ((hi - lo) / n as f64).max(f64::MIN_POSITIVE);
        let mut sums = vec![(0.0f64, 0usize); n];
        for &(x, y) in &self.points {
            let idx = (((x - lo) / width) as usize).min(n - 1);
            sums[idx].0 += y;
            sums[idx].1 += 1;
        }
        sums.iter()
            .enumerate()
            .filter(|(_, (_, c))| *c > 0)
            .map(|(i, (sum, c))| (lo + (i as f64 + 0.5) * width, sum / *c as f64))
            .collect()
    }

    /// Splits the x-range into `n` equal windows and returns
    /// `(window_center, count)` for every window (including empty ones) —
    /// the packet-density view used for the Figure 9 traffic charts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bucket_count(&self, n: usize) -> Vec<(f64, usize)> {
        assert!(n > 0, "need at least one bucket");
        let Some((lo, hi)) = self.x_range() else {
            return Vec::new();
        };
        let width = ((hi - lo) / n as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; n];
        for &(x, _) in &self.points {
            let idx = (((x - lo) / width) as usize).min(n - 1);
            counts[idx] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_behaviour() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.x_range(), None);
        assert!(s.bucket_mean(4).is_empty());
        assert!(s.bucket_count(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_backwards_x() {
        let mut s = TimeSeries::new();
        s.push(2.0, 0.0);
        s.push(1.0, 0.0);
    }

    #[test]
    fn bucket_mean_averages() {
        let s = TimeSeries::from_points(vec![(0.0, 2.0), (1.0, 4.0), (9.0, 10.0), (10.0, 20.0)]);
        let b = s.bucket_mean(2);
        assert_eq!(b.len(), 2);
        assert!((b[0].1 - 3.0).abs() < 1e-9); // (2+4)/2
        assert!((b[1].1 - 15.0).abs() < 1e-9); // (10+20)/2
    }

    #[test]
    fn bucket_count_includes_empty_windows() {
        let s = TimeSeries::from_points(vec![(0.0, 1.0), (0.1, 1.0), (10.0, 1.0)]);
        let b = s.bucket_count(5);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].1, 2);
        assert_eq!(b[1].1, 0);
        assert_eq!(b[4].1, 1);
    }

    #[test]
    fn single_point_series() {
        let s = TimeSeries::from_points(vec![(5.0, 7.0)]);
        let b = s.bucket_mean(3);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 7.0).abs() < 1e-9);
    }

    #[test]
    fn equal_x_values_allowed() {
        let s = TimeSeries::from_points(vec![(1.0, 1.0), (1.0, 3.0)]);
        let b = s.bucket_mean(1);
        assert!((b[0].1 - 2.0).abs() < 1e-9);
    }
}
