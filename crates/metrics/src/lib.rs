//! Statistics, Pareto fronts and plain-text rendering for aqs experiments.
//!
//! The benchmark harness regenerates every table and figure of the paper as
//! text: bar groups for the accuracy/speedup charts (Figures 6 and 7), a
//! scatter with its Pareto-optimal frontier (Figure 8), traffic-density and
//! speedup-over-time panels (Figure 9), and aligned tables (§6). This crate
//! holds the math and the rendering so the harness binaries stay thin.
//!
//! # Examples
//!
//! ```
//! use aqs_metrics::{harmonic_mean, relative_error};
//!
//! // The paper aggregates NAS MOPS with a harmonic mean.
//! let mops = [400.0, 200.0];
//! assert!((harmonic_mean(&mops).unwrap() - 266.666).abs() < 1e-2);
//! // Accuracy error is relative to the 1 µs ground truth.
//! assert!((relative_error(95.0, 100.0) - 0.05).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pareto;
mod render;
mod series;
mod stats;

pub use pareto::{pareto_front, ParetoPoint};
pub use render::{
    render_bar_chart, render_histogram, render_scatter_log_y, render_series_log_y, render_table,
    render_traffic_density,
};
pub use series::TimeSeries;
pub use stats::{geometric_mean, harmonic_mean, mean, relative_error, Summary};
