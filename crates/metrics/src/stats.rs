//! Scalar statistics.

use serde::{Deserialize, Serialize};

/// Arithmetic mean, or `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(aqs_metrics::mean(&[1.0, 3.0]), Some(2.0));
/// assert_eq!(aqs_metrics::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Harmonic mean — the aggregation the NAS suite (and the paper) uses for
/// MOPS across benchmarks.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive (the harmonic mean of rates
/// is undefined otherwise).
///
/// # Examples
///
/// ```
/// let h = aqs_metrics::harmonic_mean(&[2.0, 2.0]).unwrap();
/// assert!((h - 2.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        values.iter().all(|&v| v.is_finite() && v > 0.0),
        "harmonic mean requires strictly positive values"
    );
    Some(values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>())
}

/// Geometric mean, or `None` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Examples
///
/// ```
/// let g = aqs_metrics::geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        values.iter().all(|&v| v.is_finite() && v > 0.0),
        "geometric mean requires strictly positive values"
    );
    Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
}

/// Relative error `|value − baseline| / baseline`, the paper's accuracy
/// metric ("accuracy error vs. 1 µs").
///
/// # Panics
///
/// Panics if `baseline` is zero or either input is not finite.
///
/// # Examples
///
/// ```
/// // A benchmark reporting 15 s against a 10 s ground truth is 50 % off —
/// // errors above 100 % are possible for time-based metrics (NAMD's 104 %).
/// assert!((aqs_metrics::relative_error(20.4, 10.0) - 1.04).abs() < 1e-12);
/// ```
pub fn relative_error(value: f64, baseline: f64) -> f64 {
    assert!(
        value.is_finite() && baseline.is_finite(),
        "inputs must be finite"
    );
    assert!(baseline != 0.0, "baseline must be non-zero");
    (value - baseline).abs() / baseline.abs()
}

/// Five-number summary of a sample.
///
/// # Examples
///
/// ```
/// use aqs_metrics::Summary;
/// let s = Summary::from_values(&[3.0, 1.0, 2.0]).unwrap();
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert_eq!(s.median, 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower-middle for even counts).
    pub median: f64,
    /// Sample count.
    pub count: usize,
}

impl Summary {
    /// Builds a summary, or `None` for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "summary of NaN is meaningless"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN ruled out above"));
        Some(Self {
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: mean(values).expect("non-empty"),
            median: sorted[(sorted.len() - 1) / 2],
            count: values.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn harmonic_le_geometric_le_arithmetic() {
        let v = [1.0, 2.0, 3.0, 10.0];
        let h = harmonic_mean(&v).unwrap();
        let g = geometric_mean(&v).unwrap();
        let a = mean(&v).unwrap();
        assert!(h <= g && g <= a);
    }

    #[test]
    fn empty_inputs_give_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(Summary::from_values(&[]), None);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn harmonic_rejects_zero() {
        let _ = harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn relative_error_is_symmetric_in_magnitude() {
        assert!((relative_error(80.0, 100.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(120.0, 100.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn relative_error_rejects_zero_baseline() {
        let _ = relative_error(1.0, 0.0);
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::from_values(&[5.0]).unwrap();
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.count, 1);
    }

    proptest! {
        #[test]
        fn mean_within_min_max(v in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_values(&v).unwrap();
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.median >= s.min && s.median <= s.max);
        }

        #[test]
        fn identical_values_fix_all_means(x in 0.001f64..1e6, n in 1usize..50) {
            let v = vec![x; n];
            prop_assert!((harmonic_mean(&v).unwrap() - x).abs() / x < 1e-9);
            prop_assert!((geometric_mean(&v).unwrap() - x).abs() / x < 1e-9);
            prop_assert!((mean(&v).unwrap() - x).abs() / x < 1e-9);
        }

        #[test]
        fn relative_error_zero_iff_equal(a in 0.001f64..1e6) {
            prop_assert!(relative_error(a, a).abs() < 1e-12);
        }
    }
}
