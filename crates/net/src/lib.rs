//! Network substrate for the aqs cluster simulator.
//!
//! The paper's cluster simulator bridges every node's simulated NIC into a
//! central **network controller** that behaves like a perfect link-layer
//! (MAC-to-MAC) switch, with a timing component layered on top. This crate
//! implements that machinery:
//!
//! * [`Packet`] — a timestamped link-layer frame (generic over payload).
//! * [`NicModel`] — per-node NIC timing: bandwidth serialization, minimum
//!   latency and MTU fragmentation (the paper's stress config is a 10 Gb/s
//!   NIC, 1 µs minimum latency, 9000 B jumbo frames — see
//!   [`NicModel::paper_default`]).
//! * [`SwitchModel`] implementations — [`PerfectSwitch`] (the paper's
//!   infinite-bandwidth zero-latency switch), [`StoreAndForwardSwitch`] and
//!   [`LatencyMatrixSwitch`] for richer topologies, and [`FatTreeFabric`]:
//!   a modeled multi-tier fabric with per-link bandwidth, epoch-keyed
//!   queue occupancy and deterministic ECMP hashing.
//! * [`NetworkController`] — functional routing (unicast + broadcast), the
//!   per-quantum packet counter driving the adaptive algorithm, straggler
//!   accounting and traffic traces (Figure 9's left-hand charts).
//!
//! # Examples
//!
//! ```
//! use aqs_net::{Destination, NetworkController, NicModel, NodeId, PerfectSwitch};
//! use aqs_time::SimTime;
//!
//! let mut net: NetworkController<(), PerfectSwitch> =
//!     NetworkController::new(4, NicModel::paper_default(), PerfectSwitch::new());
//! let deliveries = net.route(NodeId::new(0), Destination::Unicast(NodeId::new(2)),
//!                            9000, SimTime::from_micros(5), ());
//! assert_eq!(deliveries.len(), 1);
//! // 1 µs minimum NIC latency on top of the departure time:
//! assert_eq!(deliveries[0].arrival, SimTime::from_micros(6));
//! assert_eq!(net.packets_this_quantum(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod chaos;
mod controller;
mod fabric;
mod nic;
mod packet;
mod stats;
mod switch;

pub use bridge::{BridgeDecision, LearningBridge};
pub use chaos::{ChaosConfig, ChaosOverlay, ChaosSwitch};
pub use controller::{Delivery, NetworkController};
pub use fabric::{FabricConfig, FatTreeFabric, LinkLoad, LinkPath, MAX_PATH_LINKS};
pub use nic::NicModel;
pub use packet::{Destination, MacAddr, NodeId, Packet, PacketId};
pub use stats::{StragglerStats, TraceEntry, TrafficTrace};
pub use switch::{LatencyMatrixSwitch, PerfectSwitch, StoreAndForwardSwitch, SwitchModel};
