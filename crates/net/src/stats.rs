//! Straggler accounting and traffic traces.

use crate::packet::NodeId;
use aqs_obs::Log2Histogram;
use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Accumulated straggler statistics.
///
/// A *straggler* is a packet whose computed arrival time lies in the
/// receiver's simulated past, so it must be delivered late. The paper's
/// accuracy losses are entirely a function of "the quantity of stragglers
/// and their total delay time" (§3), so both are tracked.
///
/// # Examples
///
/// ```
/// use aqs_net::StragglerStats;
/// use aqs_time::SimDuration;
///
/// let mut s = StragglerStats::default();
/// s.record(SimDuration::from_micros(3));
/// s.record(SimDuration::from_micros(1));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.total_delay(), SimDuration::from_micros(4));
/// assert_eq!(s.max_delay(), SimDuration::from_micros(3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StragglerStats {
    count: u64,
    total_delay: SimDuration,
    max_delay: SimDuration,
    delay_hist: Log2Histogram,
}

impl StragglerStats {
    /// Records one straggler delivered `delay` after its ideal arrival.
    pub fn record(&mut self, delay: SimDuration) {
        self.count += 1;
        self.total_delay = self.total_delay.saturating_add(delay);
        self.max_delay = self.max_delay.max(delay);
        self.delay_hist.record(delay.as_nanos());
    }

    /// Number of stragglers seen.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all delivery delays.
    #[inline]
    pub fn total_delay(&self) -> SimDuration {
        self.total_delay
    }

    /// Largest single delivery delay.
    #[inline]
    pub fn max_delay(&self) -> SimDuration {
        self.max_delay
    }

    /// Mean delivery delay, or zero if no stragglers occurred.
    pub fn mean_delay(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total_delay / self.count
        }
    }

    /// Base-2 histogram of individual delivery delays in nanoseconds.
    ///
    /// The scalar accessors summarize the tail poorly (one pathological
    /// packet dominates [`max_delay`](Self::max_delay)); the histogram keeps
    /// the whole distribution at a fixed 65-bucket cost.
    #[inline]
    pub fn delay_hist(&self) -> &Log2Histogram {
        &self.delay_hist
    }

    /// Rebuilds an accumulator from its raw parts, for snapshot restore.
    /// Returns `None` when the parts are inconsistent (histogram count does
    /// not match `count`).
    pub fn from_parts(
        count: u64,
        total_delay: SimDuration,
        max_delay: SimDuration,
        delay_hist: Log2Histogram,
    ) -> Option<Self> {
        if delay_hist.count() != count {
            return None;
        }
        Some(Self {
            count,
            total_delay,
            max_delay,
            delay_hist,
        })
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StragglerStats) {
        self.count += other.count;
        self.total_delay = self.total_delay.saturating_add(other.total_delay);
        self.max_delay = self.max_delay.max(other.max_delay);
        self.delay_hist.merge(&other.delay_hist);
    }
}

/// One routed packet, as recorded for the Figure 9 traffic charts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Departure simulated time.
    pub time: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (after broadcast expansion).
    pub dst: NodeId,
    /// Frame size in bytes.
    pub bytes: u32,
}

/// An append-only record of routed packets.
///
/// Recording is optional (it costs memory on long runs); the controller
/// only appends when the trace is enabled.
///
/// # Examples
///
/// ```
/// use aqs_net::{NodeId, TrafficTrace};
/// use aqs_time::SimTime;
///
/// let mut trace = TrafficTrace::enabled();
/// trace.record(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 9000);
/// assert_eq!(trace.entries().len(), 1);
/// assert_eq!(trace.total_bytes(), 9000);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrafficTrace {
    enabled: bool,
    entries: Vec<TraceEntry>,
    total_packets: u64,
    total_bytes: u64,
    bytes_hist: Log2Histogram,
}

impl TrafficTrace {
    /// Creates a disabled trace: counters tick, entries are not stored.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Creates an enabled trace that stores every entry.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Returns `true` if entries are being stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one routed packet.
    pub fn record(&mut self, time: SimTime, src: NodeId, dst: NodeId, bytes: u32) {
        self.total_packets += 1;
        self.total_bytes += bytes as u64;
        self.bytes_hist.record(bytes as u64);
        if self.enabled {
            self.entries.push(TraceEntry {
                time,
                src,
                dst,
                bytes,
            });
        }
    }

    /// Stored entries (empty when disabled).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total packets routed (counted even when disabled).
    #[inline]
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total bytes routed (counted even when disabled).
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Base-2 histogram of frame sizes in bytes (counted even when
    /// disabled — it is fixed-size, unlike the entry log).
    #[inline]
    pub fn bytes_hist(&self) -> &Log2Histogram {
        &self.bytes_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_stats_accumulate() {
        let mut s = StragglerStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_delay(), SimDuration::ZERO);
        s.record(SimDuration::from_micros(2));
        s.record(SimDuration::from_micros(4));
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_delay(), SimDuration::from_micros(6));
        assert_eq!(s.max_delay(), SimDuration::from_micros(4));
        assert_eq!(s.mean_delay(), SimDuration::from_micros(3));
    }

    #[test]
    fn straggler_stats_merge() {
        let mut a = StragglerStats::default();
        a.record(SimDuration::from_micros(1));
        let mut b = StragglerStats::default();
        b.record(SimDuration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.total_delay(), SimDuration::from_micros(6));
        assert_eq!(a.max_delay(), SimDuration::from_micros(5));
    }

    #[test]
    fn straggler_delay_histogram_tracks_distribution() {
        let mut s = StragglerStats::default();
        s.record(SimDuration::from_nanos(1));
        s.record(SimDuration::from_nanos(3));
        s.record(SimDuration::from_micros(2));
        let h = s.delay_hist();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 2_000);
        let mut other = StragglerStats::default();
        other.record(SimDuration::from_nanos(3));
        s.merge(&other);
        assert_eq!(s.delay_hist().count(), 4);
        assert_eq!(
            s.delay_hist().bucket_count(Log2Histogram::bucket_of(3)),
            2,
            "both 3 ns delays land in the same bucket"
        );
    }

    #[test]
    fn trace_bytes_histogram_counts_even_when_disabled() {
        let mut t = TrafficTrace::disabled();
        t.record(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 64);
        t.record(SimTime::ZERO, NodeId::new(1), NodeId::new(0), 9000);
        assert_eq!(t.bytes_hist().count(), 2);
        assert_eq!(t.bytes_hist().sum(), 9064);
        assert_eq!(t.bytes_hist().max(), 9000);
    }

    #[test]
    fn disabled_trace_counts_without_storing() {
        let mut t = TrafficTrace::disabled();
        t.record(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 100);
        assert!(!t.is_enabled());
        assert_eq!(t.total_packets(), 1);
        assert_eq!(t.total_bytes(), 100);
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_trace_stores_entries_in_order() {
        let mut t = TrafficTrace::enabled();
        t.record(SimTime::from_nanos(10), NodeId::new(0), NodeId::new(1), 100);
        t.record(SimTime::from_nanos(20), NodeId::new(1), NodeId::new(0), 200);
        let e = t.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].time, SimTime::from_nanos(10));
        assert_eq!(e[1].bytes, 200);
    }
}
