//! The central network controller: functional switch + timing + accounting.

use crate::bridge::{BridgeDecision, LearningBridge};
use crate::nic::NicModel;
use crate::packet::{Destination, MacAddr, NodeId, Packet, PacketId};
use crate::stats::{StragglerStats, TrafficTrace};
use crate::switch::SwitchModel;
use aqs_time::{SimDuration, SimTime};

/// A packet routed to a concrete destination, with its computed arrival
/// simulated time.
///
/// Whether the arrival can actually be honoured is the synchronizer's
/// problem: if the receiver has already simulated past `arrival`, the packet
/// becomes a straggler (reported back via
/// [`NetworkController::record_straggler`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<P> {
    /// The routed frame.
    pub packet: Packet<P>,
    /// Ideal arrival time at the destination node.
    pub arrival: SimTime,
}

/// The cluster's central network controller.
///
/// Functionally it is a perfect MAC-to-MAC switch: every frame handed in by
/// a node NIC is routed to its destination port(s). On top of the functional
/// path it computes arrival *times* (NIC minimum latency + switch transit),
/// counts packets per synchronization quantum (the signal driving the
/// adaptive quantum algorithm), and accumulates straggler statistics and an
/// optional traffic trace.
///
/// # Examples
///
/// ```
/// use aqs_net::{Destination, NetworkController, NicModel, NodeId, PerfectSwitch};
/// use aqs_time::SimTime;
///
/// let mut net: NetworkController<&str, PerfectSwitch> =
///     NetworkController::new(3, NicModel::paper_default(), PerfectSwitch::new());
/// let out = net.route(NodeId::new(0), Destination::Broadcast, 64, SimTime::ZERO, "arp");
/// // Broadcast reaches everyone but the sender.
/// assert_eq!(out.len(), 2);
/// assert_eq!(net.end_quantum(), 2); // counter resets per quantum
/// assert_eq!(net.packets_this_quantum(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct NetworkController<P, S> {
    n_nodes: usize,
    nic: NicModel,
    switch: S,
    next_packet_id: u64,
    packets_this_quantum: u64,
    total_packets: u64,
    stragglers: StragglerStats,
    trace: TrafficTrace,
    bridge: LearningBridge,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P: Clone, S: SwitchModel> NetworkController<P, S> {
    /// Creates a controller for `n_nodes` ports.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2` — a cluster needs at least two nodes. Callers
    /// that must not crash on a bad request (a job server validating client
    /// configs) should use [`try_new`](Self::try_new) instead.
    pub fn new(n_nodes: usize, nic: NicModel, switch: S) -> Self {
        Self::try_new(n_nodes, nic, switch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a controller for `n_nodes` ports, returning a human-readable
    /// configuration error instead of panicking when `n_nodes < 2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_net::{NetworkController, NicModel, PerfectSwitch};
    ///
    /// let err = NetworkController::<(), _>::try_new(
    ///     1, NicModel::paper_default(), PerfectSwitch::new(),
    /// ).unwrap_err();
    /// assert!(err.contains("at least 2 nodes"));
    /// ```
    pub fn try_new(n_nodes: usize, nic: NicModel, switch: S) -> Result<Self, String> {
        if n_nodes < 2 {
            return Err(format!("a cluster needs at least 2 nodes, got {n_nodes}"));
        }
        Ok(Self {
            n_nodes,
            nic,
            switch,
            next_packet_id: 0,
            packets_this_quantum: 0,
            total_packets: 0,
            stragglers: StragglerStats::default(),
            trace: TrafficTrace::disabled(),
            bridge: LearningBridge::new(n_nodes),
            _payload: std::marker::PhantomData,
        })
    }

    /// Number of ports (nodes).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The NIC model shared by all ports.
    #[inline]
    pub fn nic(&self) -> &NicModel {
        &self.nic
    }

    /// Minimum end-to-end network latency `T` — the paper's safe quantum
    /// bound (`Q <= T` guarantees zero stragglers).
    pub fn min_latency(&self) -> SimDuration {
        self.nic.min_latency()
    }

    /// Sets whether the traffic trace stores per-packet entries (Figure 9
    /// charts), consuming and returning the controller builder-style.
    ///
    /// Trace storage is a construction-time decision: flipping it mid-run
    /// would leave the entry log covering an unknowable suffix of the
    /// traffic while the totals cover all of it.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqs_net::{NetworkController, NicModel, PerfectSwitch};
    ///
    /// let net: NetworkController<(), PerfectSwitch> =
    ///     NetworkController::new(2, NicModel::paper_default(), PerfectSwitch::new())
    ///         .with_trace(true);
    /// assert!(net.trace().is_enabled());
    /// ```
    #[must_use]
    pub fn with_trace(mut self, enabled: bool) -> Self {
        self.trace = if enabled {
            TrafficTrace::enabled()
        } else {
            TrafficTrace::disabled()
        };
        self
    }

    /// Routes one frame and returns the resulting deliveries (one for
    /// unicast, `n - 1` for broadcast).
    ///
    /// `departure` is the simulated time the last bit left the sender's NIC;
    /// arrival adds the NIC minimum latency and the switch transit delay.
    ///
    /// # Panics
    ///
    /// Panics if `src` (or a unicast destination) is out of range, or if a
    /// unicast destination equals the sender — a switch never hairpins a
    /// frame back to its ingress port.
    pub fn route(
        &mut self,
        src: NodeId,
        dst: Destination,
        bytes: u32,
        departure: SimTime,
        payload: P,
    ) -> Vec<Delivery<P>> {
        assert!(src.index() < self.n_nodes, "source {src} out of range");
        let targets: Vec<NodeId> = match dst {
            Destination::Unicast(d) => {
                assert!(d.index() < self.n_nodes, "destination {d} out of range");
                assert!(d != src, "node {src} sent a frame to itself");
                vec![d]
            }
            Destination::Broadcast => (0..self.n_nodes as u32)
                .map(NodeId::new)
                .filter(|&n| n != src)
                .collect(),
        };
        let mut out = Vec::with_capacity(targets.len());
        for target in targets {
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            self.packets_this_quantum += 1;
            self.total_packets += 1;
            let transit = self.switch.transit_delay(src, target, bytes, departure);
            let arrival = self.nic.earliest_arrival(departure) + transit;
            self.trace.record(departure, src, target, bytes);
            out.push(Delivery {
                packet: Packet {
                    id,
                    src,
                    dst: target,
                    bytes,
                    departure,
                    payload: payload.clone(),
                },
                arrival,
            });
        }
        out
    }

    /// Routes one raw link-layer frame by MAC address, through the
    /// controller's learning bridge: known unicast destinations forward to
    /// one port, unknown destinations and broadcasts flood (and frames the
    /// bridge maps back to their ingress port are filtered, yielding no
    /// deliveries).
    ///
    /// This is the entry point a packet-level frontend (an emulator's NIC
    /// tap) would use; [`route`](Self::route) is the id-addressed fast path
    /// the cluster engine uses.
    ///
    /// # Panics
    ///
    /// Panics if `ingress` is out of range.
    pub fn route_frame(
        &mut self,
        ingress: NodeId,
        src: MacAddr,
        dst: MacAddr,
        bytes: u32,
        departure: SimTime,
        payload: P,
    ) -> Vec<Delivery<P>> {
        match self.bridge.decide(ingress, src, dst) {
            BridgeDecision::Forward(port) if port == ingress => Vec::new(), // filtered
            BridgeDecision::Forward(port) => self.route(
                ingress,
                Destination::Unicast(port),
                bytes,
                departure,
                payload,
            ),
            BridgeDecision::Flood => {
                self.route(ingress, Destination::Broadcast, bytes, departure, payload)
            }
        }
    }

    /// The controller's learning bridge (diagnostics).
    pub fn bridge(&self) -> &LearningBridge {
        &self.bridge
    }

    /// Packets routed since the last [`end_quantum`](Self::end_quantum).
    ///
    /// This is `np` in the paper's Algorithm 1.
    #[inline]
    pub fn packets_this_quantum(&self) -> u64 {
        self.packets_this_quantum
    }

    /// Ends the current quantum: returns `np` and resets the counter.
    pub fn end_quantum(&mut self) -> u64 {
        std::mem::take(&mut self.packets_this_quantum)
    }

    /// Total packets routed over the whole run.
    #[inline]
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Records that a delivery became a straggler, delivered `delay` late.
    pub fn record_straggler(&mut self, delay: SimDuration) {
        self.stragglers.record(delay);
    }

    /// Accumulated straggler statistics.
    #[inline]
    pub fn stragglers(&self) -> &StragglerStats {
        &self.stragglers
    }

    /// The traffic trace (counters always valid; entries only when enabled).
    #[inline]
    pub fn trace(&self) -> &TrafficTrace {
        &self.trace
    }

    /// Consumes the controller, returning the trace (for result assembly).
    pub fn into_trace(self) -> TrafficTrace {
        self.trace
    }

    /// Next packet id to be assigned (snapshot capture).
    #[inline]
    pub fn next_packet_id(&self) -> u64 {
        self.next_packet_id
    }

    /// Restores run-cumulative counters from a quantum-edge snapshot: packet
    /// id stream position, lifetime packet total, and straggler statistics.
    /// The per-quantum counter restarts at zero — a snapshot is always taken
    /// at a quantum edge, right after [`Self::end_quantum`].
    pub fn restore_counters(
        &mut self,
        next_packet_id: u64,
        total_packets: u64,
        stragglers: StragglerStats,
    ) {
        self.next_packet_id = next_packet_id;
        self.total_packets = total_packets;
        self.packets_this_quantum = 0;
        self.stragglers = stragglers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{LatencyMatrixSwitch, PerfectSwitch, StoreAndForwardSwitch};

    fn ctl(n: usize) -> NetworkController<u32, PerfectSwitch> {
        NetworkController::new(n, NicModel::paper_default(), PerfectSwitch::new())
    }

    #[test]
    fn unicast_arrival_is_departure_plus_min_latency() {
        let mut net = ctl(2);
        let out = net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(1)),
            9000,
            SimTime::from_micros(10),
            7,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arrival, SimTime::from_micros(11));
        assert_eq!(out[0].packet.src, NodeId::new(0));
        assert_eq!(out[0].packet.dst, NodeId::new(1));
        assert_eq!(out[0].packet.payload, 7);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let mut net = ctl(5);
        let out = net.route(NodeId::new(2), Destination::Broadcast, 64, SimTime::ZERO, 0);
        let dsts: Vec<usize> = out.iter().map(|d| d.packet.dst.index()).collect();
        assert_eq!(dsts, vec![0, 1, 3, 4]);
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let mut net = ctl(3);
        let a = net.route(NodeId::new(0), Destination::Broadcast, 64, SimTime::ZERO, 0);
        let b = net.route(
            NodeId::new(1),
            Destination::Unicast(NodeId::new(0)),
            64,
            SimTime::ZERO,
            0,
        );
        let ids: Vec<u64> = a.iter().chain(b.iter()).map(|d| d.packet.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn quantum_counter_counts_deliveries() {
        let mut net = ctl(4);
        net.route(NodeId::new(0), Destination::Broadcast, 64, SimTime::ZERO, 0);
        net.route(
            NodeId::new(1),
            Destination::Unicast(NodeId::new(2)),
            64,
            SimTime::ZERO,
            0,
        );
        assert_eq!(net.packets_this_quantum(), 4);
        assert_eq!(net.end_quantum(), 4);
        assert_eq!(net.packets_this_quantum(), 0);
        assert_eq!(net.total_packets(), 4);
    }

    #[test]
    #[should_panic(expected = "sent a frame to itself")]
    fn self_send_rejected() {
        let mut net = ctl(2);
        net.route(
            NodeId::new(1),
            Destination::Unicast(NodeId::new(1)),
            64,
            SimTime::ZERO,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_rejected() {
        let mut net = ctl(2);
        net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(9)),
            64,
            SimTime::ZERO,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_cluster_rejected() {
        let _ = ctl(1);
    }

    #[test]
    fn switch_delay_is_added() {
        let sw = LatencyMatrixSwitch::uniform(2, SimDuration::from_micros(3));
        let mut net: NetworkController<(), _> =
            NetworkController::new(2, NicModel::paper_default(), sw);
        let out = net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(1)),
            64,
            SimTime::ZERO,
            (),
        );
        assert_eq!(out[0].arrival, SimTime::from_micros(4)); // 1 µs NIC + 3 µs switch
    }

    #[test]
    fn store_and_forward_congestion_visible_through_controller() {
        let sw = StoreAndForwardSwitch::new(SimDuration::ZERO, 10_000_000_000);
        let mut net: NetworkController<(), _> =
            NetworkController::new(3, NicModel::paper_default(), sw);
        let a = net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(2)),
            9000,
            SimTime::ZERO,
            (),
        );
        let b = net.route(
            NodeId::new(1),
            Destination::Unicast(NodeId::new(2)),
            9000,
            SimTime::ZERO,
            (),
        );
        assert!(
            b[0].arrival > a[0].arrival,
            "second frame must queue behind the first"
        );
    }

    #[test]
    fn route_frame_floods_then_forwards() {
        let mut net = ctl(4);
        let a = NodeId::new(0);
        let b = NodeId::new(2);
        // Unknown destination: flood to 3 ports.
        let first = net.route_frame(a, a.mac(), b.mac(), 64, SimTime::ZERO, 0);
        assert_eq!(first.len(), 3);
        // Reply teaches the bridge; now both directions unicast.
        let reply = net.route_frame(b, b.mac(), a.mac(), 64, SimTime::ZERO, 0);
        assert_eq!(reply.len(), 1);
        assert_eq!(reply[0].packet.dst, a);
        let second = net.route_frame(a, a.mac(), b.mac(), 64, SimTime::ZERO, 0);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].packet.dst, b);
        assert_eq!(net.bridge().table_len(), 2);
    }

    #[test]
    fn route_frame_broadcast_floods() {
        let mut net = ctl(3);
        let out = net.route_frame(
            NodeId::new(1),
            NodeId::new(1).mac(),
            crate::packet::MacAddr::BROADCAST,
            64,
            SimTime::ZERO,
            0,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn route_frame_filters_hairpin() {
        let mut net = ctl(2);
        let a = NodeId::new(0);
        // Teach the bridge that a's MAC is on port 0, then address a frame
        // to it from its own port: a real switch filters it.
        net.route_frame(
            a,
            a.mac(),
            crate::packet::MacAddr::BROADCAST,
            64,
            SimTime::ZERO,
            0,
        );
        let out = net.route_frame(a, a.mac(), a.mac(), 64, SimTime::ZERO, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn straggler_recording_flows_to_stats() {
        let mut net = ctl(2);
        net.record_straggler(SimDuration::from_micros(5));
        assert_eq!(net.stragglers().count(), 1);
        assert_eq!(net.stragglers().total_delay(), SimDuration::from_micros(5));
    }

    #[test]
    fn trace_disabled_by_default_enabled_at_construction() {
        let mut net = ctl(2);
        net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(1)),
            64,
            SimTime::ZERO,
            0,
        );
        assert!(net.trace().entries().is_empty());
        assert_eq!(net.trace().total_packets(), 1);

        let mut net = ctl(2).with_trace(true);
        net.route(
            NodeId::new(0),
            Destination::Unicast(NodeId::new(1)),
            64,
            SimTime::ZERO,
            0,
        );
        assert_eq!(net.trace().entries().len(), 1);
    }
}
