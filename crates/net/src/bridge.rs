//! Link-layer (MAC) bridging: the functional half of the network
//! controller.
//!
//! The paper describes the controller as behaving "like a perfect
//! link-layer (MAC-to-MAC) network switch". [`LearningBridge`] implements
//! that behaviour the way a real L2 switch does: it learns which port each
//! source MAC lives behind, forwards known unicasts to exactly one port,
//! and floods unknown destinations and broadcasts to every other port.
//!
//! The cluster engine itself routes by [`NodeId`] (ids and MACs are
//! bijective via [`NodeId::mac`]), but the bridge is what a packet-level
//! frontend — e.g. a real emulator's NIC tap — would connect through, and
//! the controller uses it when asked to resolve raw frames.

use crate::packet::{MacAddr, NodeId};
use std::collections::HashMap;

/// Where a bridge decided to send a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BridgeDecision {
    /// Forward to exactly one known port.
    Forward(NodeId),
    /// Flood to every port except the ingress (unknown unicast or
    /// broadcast).
    Flood,
}

/// A self-learning link-layer switch table.
///
/// # Examples
///
/// ```
/// use aqs_net::{BridgeDecision, LearningBridge, NodeId};
///
/// let mut bridge = LearningBridge::new(4);
/// let (a, b) = (NodeId::new(0), NodeId::new(2));
/// // First frame to an unlearned MAC floods…
/// assert_eq!(bridge.decide(a, a.mac(), b.mac()), BridgeDecision::Flood);
/// // …but b's reply teaches the bridge both locations.
/// assert_eq!(bridge.decide(b, b.mac(), a.mac()), BridgeDecision::Forward(a));
/// assert_eq!(bridge.decide(a, a.mac(), b.mac()), BridgeDecision::Forward(b));
/// ```
#[derive(Clone, Debug)]
pub struct LearningBridge {
    n_ports: usize,
    table: HashMap<MacAddr, NodeId>,
    lookups: u64,
    floods: u64,
}

impl LearningBridge {
    /// Creates a bridge with `n_ports` ports and an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `n_ports < 2`.
    pub fn new(n_ports: usize) -> Self {
        assert!(n_ports >= 2, "a bridge needs at least 2 ports");
        Self {
            n_ports,
            table: HashMap::new(),
            lookups: 0,
            floods: 0,
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Processes one frame: learns the source, decides the egress.
    ///
    /// # Panics
    ///
    /// Panics if `ingress` is out of range.
    pub fn decide(&mut self, ingress: NodeId, src: MacAddr, dst: MacAddr) -> BridgeDecision {
        assert!(
            ingress.index() < self.n_ports,
            "ingress {ingress} out of range"
        );
        self.lookups += 1;
        // Learn (or migrate) the source address.
        if !src.is_broadcast() {
            self.table.insert(src, ingress);
        }
        if dst.is_broadcast() {
            self.floods += 1;
            return BridgeDecision::Flood;
        }
        match self.table.get(&dst) {
            // A frame whose destination is behind its own ingress port is
            // filtered by a real switch; modelling it as a flood would
            // duplicate traffic, so forward-to-self is reported as-is and
            // left to the caller to drop.
            Some(&port) => BridgeDecision::Forward(port),
            None => {
                self.floods += 1;
                BridgeDecision::Flood
            }
        }
    }

    /// Looks up a MAC without learning anything.
    pub fn port_of(&self, mac: MacAddr) -> Option<NodeId> {
        self.table.get(&mac).copied()
    }

    /// Number of learned addresses.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Frames processed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Frames flooded (unknown destination or broadcast).
    pub fn floods(&self) -> u64 {
        self.floods
    }

    /// Forgets everything (e.g. on topology change).
    pub fn clear(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floods_until_learned_then_forwards() {
        let mut b = LearningBridge::new(3);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        assert_eq!(b.decide(n0, n0.mac(), n1.mac()), BridgeDecision::Flood);
        assert_eq!(b.table_len(), 1);
        assert_eq!(
            b.decide(n1, n1.mac(), n0.mac()),
            BridgeDecision::Forward(n0)
        );
        assert_eq!(
            b.decide(n0, n0.mac(), n1.mac()),
            BridgeDecision::Forward(n1)
        );
        assert_eq!(b.floods(), 1);
        assert_eq!(b.lookups(), 3);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut b = LearningBridge::new(2);
        let n0 = NodeId::new(0);
        for _ in 0..3 {
            assert_eq!(
                b.decide(n0, n0.mac(), MacAddr::BROADCAST),
                BridgeDecision::Flood
            );
        }
        assert_eq!(b.floods(), 3);
    }

    #[test]
    fn source_can_migrate_ports() {
        // A MAC moving to another port (VM migration) must be re-learned.
        let mut b = LearningBridge::new(3);
        let roaming = NodeId::new(2).mac();
        b.decide(NodeId::new(0), roaming, MacAddr::BROADCAST);
        assert_eq!(b.port_of(roaming), Some(NodeId::new(0)));
        b.decide(NodeId::new(1), roaming, MacAddr::BROADCAST);
        assert_eq!(b.port_of(roaming), Some(NodeId::new(1)));
        assert_eq!(b.table_len(), 1);
    }

    #[test]
    fn broadcast_source_is_never_learned() {
        let mut b = LearningBridge::new(2);
        b.decide(NodeId::new(0), MacAddr::BROADCAST, NodeId::new(1).mac());
        assert_eq!(b.table_len(), 0);
    }

    #[test]
    fn clear_forgets() {
        let mut b = LearningBridge::new(2);
        let n0 = NodeId::new(0);
        b.decide(n0, n0.mac(), MacAddr::BROADCAST);
        assert_eq!(b.table_len(), 1);
        b.clear();
        assert_eq!(b.table_len(), 0);
        assert_eq!(b.port_of(n0.mac()), None);
    }

    #[test]
    fn full_mesh_converges_to_zero_floods() {
        let n = 8;
        let mut b = LearningBridge::new(n);
        // Everyone broadcasts once (ARP): the table fills.
        for i in 0..n as u32 {
            b.decide(NodeId::new(i), NodeId::new(i).mac(), MacAddr::BROADCAST);
        }
        let floods_after_arp = b.floods();
        // Now every unicast pair forwards without flooding.
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    let d = b.decide(NodeId::new(i), NodeId::new(i).mac(), NodeId::new(j).mac());
                    assert_eq!(d, BridgeDecision::Forward(NodeId::new(j)));
                }
            }
        }
        assert_eq!(b.floods(), floods_after_arp);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_ingress_rejected() {
        let mut b = LearningBridge::new(2);
        b.decide(NodeId::new(5), NodeId::new(5).mac(), MacAddr::BROADCAST);
    }
}
