//! Switch timing models.
//!
//! The network controller delegates "how long does this frame spend inside
//! the fabric" to a [`SwitchModel`]. The paper evaluates against a perfect
//! switch (zero latency, infinite bandwidth) to maximize straggler pressure;
//! the other models exist for the richer topologies the paper lists as
//! future work.

use crate::packet::NodeId;
use aqs_time::{SimDuration, SimTime};

/// Timing model of the switching fabric between NICs.
///
/// Implementations may keep state (e.g. per-egress-port busy times), which is
/// why `transit_delay` takes `&mut self`. Models must be deterministic:
/// identical call sequences must produce identical delays.
///
/// # Statefulness and parallel engines
///
/// That sequence-determinism contract is only strong enough for the
/// single-threaded deterministic engine. The threaded and sharded engines
/// route packets in worker- and race-dependent *order*, so a model whose
/// state mutates per call (like [`StoreAndForwardSwitch`]) would silently
/// break the sharded engine's bit-identical-for-every-worker-count
/// guarantee; those engines reject stateful models at configuration time.
/// A model is safe for every engine only when `transit_delay` is a **pure
/// function of its arguments** — no influence from call order. The
/// stateless models here ([`PerfectSwitch`], [`LatencyMatrixSwitch`]) and
/// the epoch-keyed [`FatTreeFabric`](crate::FatTreeFabric) satisfy that
/// stronger contract.
pub trait SwitchModel {
    /// Extra delay (beyond NIC latency) for a frame of `bytes` from `src` to
    /// `dst` entering the fabric at `ingress`.
    fn transit_delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        ingress: SimTime,
    ) -> SimDuration;

    /// Resets any internal state (egress queues etc.) to the initial state.
    fn reset(&mut self) {}
}

/// The paper's evaluation switch: infinite bandwidth, zero latency.
///
/// # Examples
///
/// ```
/// use aqs_net::{NodeId, PerfectSwitch, SwitchModel};
/// use aqs_time::{SimDuration, SimTime};
///
/// let mut sw = PerfectSwitch::new();
/// let d = sw.transit_delay(NodeId::new(0), NodeId::new(1), 9000, SimTime::ZERO);
/// assert_eq!(d, SimDuration::ZERO);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfectSwitch;

impl PerfectSwitch {
    /// Creates the perfect switch.
    pub const fn new() -> Self {
        Self
    }
}

impl SwitchModel for PerfectSwitch {
    fn transit_delay(&mut self, _: NodeId, _: NodeId, _: u32, _: SimTime) -> SimDuration {
        SimDuration::ZERO
    }
}

/// A store-and-forward switch with a fixed forwarding latency and per-egress
/// port bandwidth.
///
/// Frames to the same destination port serialize behind each other: the
/// model keeps, per port, the time at which the port becomes free.
///
/// # Examples
///
/// ```
/// use aqs_net::{NodeId, StoreAndForwardSwitch, SwitchModel};
/// use aqs_time::{SimDuration, SimTime};
///
/// let mut sw = StoreAndForwardSwitch::new(SimDuration::from_nanos(500), 10_000_000_000);
/// let a = sw.transit_delay(NodeId::new(0), NodeId::new(2), 9000, SimTime::ZERO);
/// // Second frame to the same port queues behind the first:
/// let b = sw.transit_delay(NodeId::new(1), NodeId::new(2), 9000, SimTime::ZERO);
/// assert!(b > a);
/// ```
#[derive(Clone, Debug)]
pub struct StoreAndForwardSwitch {
    latency: SimDuration,
    port_bandwidth_bps: u64,
    /// Per egress port: when the port finishes its last accepted frame.
    egress_free: std::collections::HashMap<NodeId, SimTime>,
}

impl StoreAndForwardSwitch {
    /// Creates a switch with the given forwarding latency and per-port
    /// bandwidth (bits per second).
    ///
    /// # Panics
    ///
    /// Panics if `port_bandwidth_bps` is zero.
    pub fn new(latency: SimDuration, port_bandwidth_bps: u64) -> Self {
        assert!(
            port_bandwidth_bps > 0,
            "switch port bandwidth must be positive"
        );
        Self {
            latency,
            port_bandwidth_bps,
            egress_free: std::collections::HashMap::new(),
        }
    }

    fn egress_serialization(&self, bytes: u32) -> SimDuration {
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(self.port_bandwidth_bps as u128);
        SimDuration::from_nanos(nanos as u64)
    }
}

impl SwitchModel for StoreAndForwardSwitch {
    fn transit_delay(
        &mut self,
        _src: NodeId,
        dst: NodeId,
        bytes: u32,
        ingress: SimTime,
    ) -> SimDuration {
        let ser = self.egress_serialization(bytes);
        let ready = ingress + self.latency;
        let free = self.egress_free.get(&dst).copied().unwrap_or(SimTime::ZERO);
        let start = ready.max(free);
        let done = start + ser;
        self.egress_free.insert(dst, done);
        done - ingress
    }

    fn reset(&mut self) {
        self.egress_free.clear();
    }
}

/// A switch with an arbitrary fixed latency per (src, dst) pair — enough to
/// express stars, fat-trees collapsed to delays, or rack locality.
///
/// # Examples
///
/// ```
/// use aqs_net::{LatencyMatrixSwitch, NodeId, SwitchModel};
/// use aqs_time::{SimDuration, SimTime};
///
/// // 2 racks of 2: crossing the aggregation layer costs 2 µs extra.
/// let mut sw = LatencyMatrixSwitch::from_fn(4, |a, b| {
///     if a.index() / 2 == b.index() / 2 {
///         SimDuration::ZERO
///     } else {
///         SimDuration::from_micros(2)
///     }
/// });
/// assert_eq!(
///     sw.transit_delay(NodeId::new(0), NodeId::new(3), 100, SimTime::ZERO),
///     SimDuration::from_micros(2)
/// );
/// ```
#[derive(Clone, Debug)]
pub struct LatencyMatrixSwitch {
    n: usize,
    latencies: Vec<SimDuration>,
}

impl LatencyMatrixSwitch {
    /// Builds an `n`-port matrix by evaluating `f` for every ordered pair.
    pub fn from_fn(n: usize, f: impl Fn(NodeId, NodeId) -> SimDuration) -> Self {
        let mut latencies = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                latencies.push(f(NodeId::new(a as u32), NodeId::new(b as u32)));
            }
        }
        Self { n, latencies }
    }

    /// Uniform extra latency between all distinct pairs.
    pub fn uniform(n: usize, latency: SimDuration) -> Self {
        Self::from_fn(n, |a, b| if a == b { SimDuration::ZERO } else { latency })
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Latency for a given pair.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        assert!(
            src.index() < self.n && dst.index() < self.n,
            "node id out of range"
        );
        self.latencies[src.index() * self.n + dst.index()]
    }
}

impl SwitchModel for LatencyMatrixSwitch {
    fn transit_delay(&mut self, src: NodeId, dst: NodeId, _: u32, _: SimTime) -> SimDuration {
        self.latency(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_switch_is_free() {
        let mut sw = PerfectSwitch::new();
        for i in 0..10u32 {
            assert_eq!(
                sw.transit_delay(
                    NodeId::new(i),
                    NodeId::new(i + 1),
                    9000,
                    SimTime::from_nanos(i as u64)
                ),
                SimDuration::ZERO
            );
        }
    }

    #[test]
    fn store_and_forward_serializes_same_port() {
        let mut sw = StoreAndForwardSwitch::new(SimDuration::from_nanos(100), 10_000_000_000);
        let t0 = SimTime::ZERO;
        // 9000 B = 7.2 µs egress serialization.
        let first = sw.transit_delay(NodeId::new(0), NodeId::new(5), 9000, t0);
        assert_eq!(first, SimDuration::from_nanos(100 + 7200));
        let second = sw.transit_delay(NodeId::new(1), NodeId::new(5), 9000, t0);
        assert_eq!(second, SimDuration::from_nanos(100 + 7200 + 7200));
        // A different port is independent.
        let other = sw.transit_delay(NodeId::new(1), NodeId::new(6), 9000, t0);
        assert_eq!(other, first);
    }

    #[test]
    fn store_and_forward_port_frees_up() {
        let mut sw = StoreAndForwardSwitch::new(SimDuration::ZERO, 8_000_000_000);
        // 1000 B at 8 Gb/s = 1 µs.
        let a = sw.transit_delay(NodeId::new(0), NodeId::new(1), 1000, SimTime::ZERO);
        assert_eq!(a, SimDuration::from_micros(1));
        // Arriving after the port drained: no queueing.
        let b = sw.transit_delay(
            NodeId::new(0),
            NodeId::new(1),
            1000,
            SimTime::from_micros(10),
        );
        assert_eq!(b, SimDuration::from_micros(1));
    }

    #[test]
    fn store_and_forward_reset_clears_queues() {
        let mut sw = StoreAndForwardSwitch::new(SimDuration::ZERO, 8_000_000_000);
        let a = sw.transit_delay(NodeId::new(0), NodeId::new(1), 1000, SimTime::ZERO);
        sw.reset();
        let b = sw.transit_delay(NodeId::new(0), NodeId::new(1), 1000, SimTime::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_matrix_lookup() {
        let sw = LatencyMatrixSwitch::uniform(3, SimDuration::from_micros(2));
        assert_eq!(sw.ports(), 3);
        assert_eq!(
            sw.latency(NodeId::new(0), NodeId::new(0)),
            SimDuration::ZERO
        );
        assert_eq!(
            sw.latency(NodeId::new(0), NodeId::new(2)),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn latency_matrix_bounds_checked() {
        let sw = LatencyMatrixSwitch::uniform(2, SimDuration::ZERO);
        let _ = sw.latency(NodeId::new(0), NodeId::new(5));
    }
}
