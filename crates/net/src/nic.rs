//! NIC timing model: serialization, minimum latency, MTU fragmentation.

use aqs_time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Timing model of a node's network interface card.
///
/// A message handed to the NIC is fragmented into MTU-sized frames; each
/// frame occupies the wire for `bytes * 8 / bandwidth` (serialization) and
/// then needs at least [`min_latency`](Self::min_latency) to reach the
/// switch. The paper deliberately stresses the synchronizer with a very fast
/// NIC ([`NicModel::paper_default`]): lower latency means more stragglers.
///
/// # Examples
///
/// ```
/// use aqs_net::NicModel;
/// use aqs_time::SimDuration;
///
/// let nic = NicModel::paper_default(); // 10 Gb/s, 1 µs, 9000 B MTU
/// // A jumbo frame takes 7.2 µs of wire time…
/// assert_eq!(nic.serialization_delay(9000), SimDuration::from_nanos(7_200));
/// // …and a 25 kB message becomes three frames.
/// assert_eq!(nic.fragment_sizes(25_000), vec![9000, 9000, 7000]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicModel {
    /// Link bandwidth in bits per second.
    bandwidth_bps: u64,
    /// Minimum propagation latency NIC-to-switch-to-NIC.
    min_latency: SimDuration,
    /// Maximum frame size in bytes.
    mtu_bytes: u32,
}

impl NicModel {
    /// Creates a NIC model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` or `mtu_bytes` is zero.
    pub fn new(bandwidth_bps: u64, min_latency: SimDuration, mtu_bytes: u32) -> Self {
        assert!(bandwidth_bps > 0, "NIC bandwidth must be positive");
        assert!(mtu_bytes > 0, "NIC MTU must be positive");
        Self {
            bandwidth_bps,
            min_latency,
            mtu_bytes,
        }
    }

    /// The paper's evaluation configuration: 10 Gb/s, 1 µs minimum latency,
    /// 9000-byte jumbo Ethernet frames.
    pub fn paper_default() -> Self {
        Self::new(10_000_000_000, SimDuration::from_micros(1), 9000)
    }

    /// Link bandwidth in bits per second.
    #[inline]
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Minimum end-to-end latency.
    ///
    /// This is the `T` in the paper's safety condition `Q <= T`: a quantum
    /// no longer than this can never produce stragglers.
    #[inline]
    pub fn min_latency(&self) -> SimDuration {
        self.min_latency
    }

    /// Maximum frame size in bytes.
    #[inline]
    pub fn mtu_bytes(&self) -> u32 {
        self.mtu_bytes
    }

    /// Wire time for a frame of `bytes` (rounded up to the nanosecond).
    pub fn serialization_delay(&self, bytes: u32) -> SimDuration {
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_nanos(nanos as u64)
    }

    /// Number of frames a message of `message_bytes` fragments into.
    ///
    /// Zero-byte messages still consume one (header-only) frame.
    pub fn fragment_count(&self, message_bytes: u64) -> u32 {
        if message_bytes == 0 {
            return 1;
        }
        message_bytes.div_ceil(self.mtu_bytes as u64) as u32
    }

    /// Size of fragment `index` of a message of `message_bytes` — the
    /// allocation-free form of [`fragment_sizes`](Self::fragment_sizes) for
    /// hot paths that walk `0..fragment_count(message_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= fragment_count(message_bytes)`.
    pub fn fragment_size(&self, message_bytes: u64, index: u32) -> u32 {
        let n = self.fragment_count(message_bytes);
        assert!(index < n, "fragment index {index} out of range");
        let offset = index as u64 * self.mtu_bytes as u64;
        let take = (message_bytes - offset).min(self.mtu_bytes as u64) as u32;
        // Header-only frames (zero-length tail) still occupy a 64-byte slot.
        take.max(64)
    }

    /// Sizes of the frames a message of `message_bytes` fragments into.
    ///
    /// Allocates; hot paths should iterate
    /// [`fragment_size`](Self::fragment_size) over
    /// [`fragment_count`](Self::fragment_count) instead.
    pub fn fragment_sizes(&self, message_bytes: u64) -> Vec<u32> {
        (0..self.fragment_count(message_bytes))
            .map(|i| self.fragment_size(message_bytes, i))
            .collect()
    }

    /// Total NIC occupancy for sending a whole message: the sum of frame
    /// serialization delays (frames leave back-to-back).
    pub fn message_serialization_delay(&self, message_bytes: u64) -> SimDuration {
        self.fragment_sizes(message_bytes)
            .into_iter()
            .map(|b| self.serialization_delay(b))
            .sum()
    }

    /// Earliest possible arrival of a frame leaving the sender's NIC at
    /// `departure`, before any switch delay.
    pub fn earliest_arrival(&self, departure: SimTime) -> SimTime {
        departure + self.min_latency
    }
}

impl Default for NicModel {
    /// [`NicModel::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_values() {
        let nic = NicModel::paper_default();
        assert_eq!(nic.bandwidth_bps(), 10_000_000_000);
        assert_eq!(nic.min_latency(), SimDuration::from_micros(1));
        assert_eq!(nic.mtu_bytes(), 9000);
        assert_eq!(NicModel::default(), nic);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 10 Gb/s = 0.8 ns -> rounds up to 1 ns.
        let nic = NicModel::paper_default();
        assert_eq!(nic.serialization_delay(1), SimDuration::from_nanos(1));
        assert_eq!(nic.serialization_delay(9000), SimDuration::from_nanos(7200));
    }

    #[test]
    fn fragmentation_boundaries() {
        let nic = NicModel::paper_default();
        assert_eq!(nic.fragment_count(0), 1);
        assert_eq!(nic.fragment_count(1), 1);
        assert_eq!(nic.fragment_count(9000), 1);
        assert_eq!(nic.fragment_count(9001), 2);
        assert_eq!(nic.fragment_count(18_000), 2);
        assert_eq!(nic.fragment_sizes(9001), vec![9000, 64]);
    }

    #[test]
    fn zero_byte_message_is_one_min_frame() {
        let nic = NicModel::paper_default();
        assert_eq!(nic.fragment_sizes(0), vec![64]);
    }

    #[test]
    fn message_serialization_sums_fragments() {
        let nic = NicModel::paper_default();
        let d = nic.message_serialization_delay(18_000);
        assert_eq!(d, SimDuration::from_nanos(14_400));
    }

    #[test]
    fn earliest_arrival_adds_latency() {
        let nic = NicModel::paper_default();
        assert_eq!(
            nic.earliest_arrival(SimTime::from_micros(4)),
            SimTime::from_micros(5)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = NicModel::new(0, SimDuration::ZERO, 1500);
    }

    proptest! {
        #[test]
        fn fragments_cover_message(bytes in 0u64..1_000_000) {
            let nic = NicModel::paper_default();
            let sizes = nic.fragment_sizes(bytes);
            let covered: u64 = sizes.iter().map(|&s| s as u64).sum();
            // Padding only for tiny tails (64-byte minimum frame).
            prop_assert!(covered >= bytes);
            prop_assert!(covered <= bytes + 64);
            prop_assert!(sizes.iter().all(|&s| s <= nic.mtu_bytes()));
            prop_assert_eq!(sizes.len() as u32, nic.fragment_count(bytes));
        }

        #[test]
        fn indexed_fragment_size_matches_vec_form(bytes in 0u64..1_000_000) {
            let nic = NicModel::paper_default();
            let sizes = nic.fragment_sizes(bytes);
            for (i, &s) in sizes.iter().enumerate() {
                prop_assert_eq!(nic.fragment_size(bytes, i as u32), s);
            }
        }

        #[test]
        fn serialization_is_monotone(a in 0u32..100_000, b in 0u32..100_000) {
            let nic = NicModel::paper_default();
            if a <= b {
                prop_assert!(nic.serialization_delay(a) <= nic.serialization_delay(b));
            }
        }
    }
}
