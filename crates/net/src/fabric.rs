//! A modeled multi-tier (fat-tree) network fabric.
//!
//! The paper's central controller routes every packet through one perfect
//! switch: a single shared latency, no structure, no contention. That is
//! the right baseline for validating the synchronization policies, but it
//! hides the property that actually gates quantum-barrier scaling on real
//! clusters: *topology*. This module adds the first structured
//! [`SwitchModel`](crate::SwitchModel) — a two-tier fat-tree with per-link
//! bandwidth, background queue occupancy, and deterministic ECMP-style
//! uplink hashing — sized struct-of-arrays so 64k-node clusters fit in
//! memory.
//!
//! # Topology
//!
//! Nodes are packed into racks of [`FabricConfig::rack_size`] each. Every
//! node hangs off its rack's top-of-rack (ToR) switch by an *edge link*;
//! every ToR reaches a spine layer through
//! [`FabricConfig::uplinks_per_rack`] *uplink planes* (one uplink and one
//! downlink per plane per rack). A packet therefore crosses either
//!
//! - `src edge → ToR → dst edge` (same rack), or
//! - `src edge → ToR → uplink u → spine → downlink u → ToR → dst edge`
//!   (cross rack), with the plane `u` picked by a flow-pinned hash of
//!   `(src, dst)` — deterministic ECMP.
//!
//! # Determinism: open-loop congestion
//!
//! Parallel engines route packets in worker- and race-dependent order, so
//! any switch whose state mutates per call (like
//! [`StoreAndForwardSwitch`](crate::StoreAndForwardSwitch)'s egress busy
//! times) silently breaks the sharded engine's bit-identical-for-every-M
//! guarantee. The fabric instead models congestion *open loop*: each link
//! carries a pseudo-random background queue occupancy drawn by hashing
//! `(link, departure_epoch)`, where the epoch is the packet's departure
//! time quantized to [`FabricConfig::queue_epoch`]. Transit is a **pure
//! function of `(src, dst, bytes, departure)`** — strictly stronger than
//! keying to the sender's quantum edge — so identical call *sets* produce
//! identical delays regardless of call order, worker count, or engine.
//! Observed per-link load ([`LinkLoad`]) is commutative-sum bookkeeping
//! only and never feeds back into timing.

use crate::packet::NodeId;
use crate::switch::SwitchModel;
use aqs_time::{SimDuration, SimTime};

/// Configuration of a [`FatTreeFabric`].
///
/// # Examples
///
/// ```
/// use aqs_net::FabricConfig;
/// let cfg = FabricConfig::fat_tree().with_rack_size(16);
/// assert!(cfg.validate().is_ok());
/// assert!(FabricConfig { rack_size: 0, ..cfg }.validate().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricConfig {
    /// Nodes per rack (per top-of-rack switch). Must be at least 1.
    pub rack_size: u32,
    /// Uplink planes per rack (ECMP width). Must be at least 1.
    pub uplinks_per_rack: u32,
    /// Bandwidth of an edge (node-to-ToR) link, bits per second.
    pub edge_bw_bps: u64,
    /// Bandwidth of an uplink/downlink (ToR-to-spine) link, bits per second.
    pub uplink_bw_bps: u64,
    /// Propagation latency of one edge hop.
    pub edge_latency: SimDuration,
    /// Propagation latency of one uplink/downlink hop.
    pub uplink_latency: SimDuration,
    /// Width of the congestion epoch: departures inside the same epoch see
    /// the same background queue occupancy on a given link. Must be
    /// nonzero.
    pub queue_epoch: SimDuration,
    /// Upper bound on the background queue occupancy drawn per
    /// `(link, epoch)`, in bytes. Zero disables modeled congestion.
    pub max_queue_bytes: u64,
}

impl FabricConfig {
    /// The default two-tier fat tree: 32-node racks, 4 ECMP uplink planes,
    /// 10 Gb/s edges (matching [`NicModel::paper_default`]), 40 Gb/s
    /// uplinks, and a few-microsecond congestion epoch with up to two
    /// jumbo frames of background queue per link.
    ///
    /// [`NicModel::paper_default`]: crate::NicModel::paper_default
    pub fn fat_tree() -> Self {
        Self {
            rack_size: 32,
            uplinks_per_rack: 4,
            edge_bw_bps: 10_000_000_000,
            uplink_bw_bps: 40_000_000_000,
            edge_latency: SimDuration::from_nanos(300),
            uplink_latency: SimDuration::from_nanos(600),
            queue_epoch: SimDuration::from_micros(4),
            max_queue_bytes: 18_000,
        }
    }

    /// Returns the config with the given rack size.
    pub fn with_rack_size(mut self, rack_size: u32) -> Self {
        self.rack_size = rack_size;
        self
    }

    /// Returns the config with the given number of uplink planes.
    pub fn with_uplinks_per_rack(mut self, uplinks: u32) -> Self {
        self.uplinks_per_rack = uplinks;
        self
    }

    /// Returns the config with the given background-queue bound in bytes.
    pub fn with_max_queue_bytes(mut self, bytes: u64) -> Self {
        self.max_queue_bytes = bytes;
        self
    }

    /// Returns the config with the given congestion epoch width.
    pub fn with_queue_epoch(mut self, epoch: SimDuration) -> Self {
        self.queue_epoch = epoch;
        self
    }

    /// Checks the configuration, returning a human-readable reason when it
    /// cannot describe a working fabric.
    pub fn validate(&self) -> Result<(), String> {
        if self.rack_size == 0 {
            return Err("rack_size must be at least 1".into());
        }
        if self.uplinks_per_rack == 0 {
            return Err("uplinks_per_rack must be at least 1".into());
        }
        if self.edge_bw_bps == 0 || self.uplink_bw_bps == 0 {
            return Err("link bandwidths must be nonzero".into());
        }
        if self.queue_epoch.is_zero() {
            return Err("queue_epoch must be nonzero".into());
        }
        Ok(())
    }
}

/// The maximum number of links a packet can cross: source edge, uplink,
/// downlink, destination edge.
pub const MAX_PATH_LINKS: usize = 4;

/// The sequence of link ids a packet crosses, in order.
///
/// Same-rack paths have two links (both edges); cross-rack paths have four
/// (source edge, uplink, downlink, destination edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkPath {
    links: [u32; MAX_PATH_LINKS],
    len: u8,
}

impl LinkPath {
    /// The link ids crossed, in path order.
    #[inline]
    pub fn links(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }
}

/// splitmix64 finalizer — a fast, well-mixed hash used for both ECMP plane
/// selection and background queue occupancy. Pure, so transit stays a
/// function of its arguments alone.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Serialization time of `bytes` over a `bw_bps` link, in nanoseconds,
/// rounded up (matches [`NicModel::serialization_delay`]).
///
/// [`NicModel::serialization_delay`]: crate::NicModel::serialization_delay
#[inline]
fn ser_nanos(bytes: u64, bw_bps: u64) -> u64 {
    let bits = (bytes as u128) * 8 * 1_000_000_000;
    bits.div_ceil(bw_bps as u128) as u64
}

/// A two-tier fat-tree fabric: the first structured [`SwitchModel`].
///
/// Per-node state is packed struct-of-arrays — one `u32` rack id per node,
/// no dense n×n tables — so the model stays a few hundred kilobytes even
/// at 64k nodes. Transit is a pure function of
/// `(src, dst, bytes, departure)`, which makes the model safe for *every* engine:
/// deterministic, threaded, and sharded runs all produce bit-identical
/// timelines, for every worker count.
///
/// # Examples
///
/// ```
/// use aqs_net::{FabricConfig, FatTreeFabric};
/// use aqs_time::SimTime;
///
/// let fabric = FatTreeFabric::new(FabricConfig::fat_tree(), 128);
/// assert_eq!(fabric.n_racks(), 4);
/// let t = SimTime::from_micros(5);
/// // Pure: same arguments, same delay — call order cannot matter.
/// let a = fabric.transit_nanos(0, 40, 1024, t.as_nanos());
/// let b = fabric.transit_nanos(0, 40, 1024, t.as_nanos());
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct FatTreeFabric {
    cfg: FabricConfig,
    n_nodes: u32,
    n_racks: u32,
    /// Rack id per node — the only per-node state, packed SoA.
    rack_of: Vec<u32>,
    /// `queue_epoch` in nanoseconds, hoisted out of the hot path.
    epoch_nanos: u64,
}

impl FatTreeFabric {
    /// Builds the fabric for `n_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`FabricConfig::validate`] or
    /// `n_nodes` is zero.
    pub fn new(cfg: FabricConfig, n_nodes: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fabric configuration: {e}");
        }
        assert!(n_nodes > 0, "a fabric needs at least one node");
        let n = u32::try_from(n_nodes).expect("node count fits in u32");
        let n_racks = n.div_ceil(cfg.rack_size);
        let rack_of = (0..n).map(|i| i / cfg.rack_size).collect();
        Self {
            cfg,
            n_nodes: n,
            n_racks,
            rack_of,
            epoch_nanos: cfg.queue_epoch.as_nanos(),
        }
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of nodes attached to the fabric.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes as usize
    }

    /// Number of racks (top-of-rack switches).
    pub fn n_racks(&self) -> usize {
        self.n_racks as usize
    }

    /// The rack a node lives in.
    #[inline]
    pub fn rack_of(&self, node: u32) -> u32 {
        self.rack_of[node as usize]
    }

    /// Total number of modeled links. Link ids are dense:
    /// `0..n_nodes` are edge links (one per node), then one uplink and one
    /// downlink per `(rack, plane)` pair.
    pub fn n_links(&self) -> usize {
        (self.n_nodes + 2 * self.n_racks * self.cfg.uplinks_per_rack) as usize
    }

    #[inline]
    fn uplink(&self, rack: u32, plane: u32) -> u32 {
        self.n_nodes + rack * self.cfg.uplinks_per_rack + plane
    }

    #[inline]
    fn downlink(&self, rack: u32, plane: u32) -> u32 {
        self.n_nodes
            + self.n_racks * self.cfg.uplinks_per_rack
            + rack * self.cfg.uplinks_per_rack
            + plane
    }

    /// Human-readable label for a link id, for reports and diagnostics.
    pub fn link_label(&self, link: u32) -> String {
        let u = self.cfg.uplinks_per_rack;
        if link < self.n_nodes {
            return format!("edge:n{link}");
        }
        let rel = link - self.n_nodes;
        if rel < self.n_racks * u {
            format!("up:r{}/{}", rel / u, rel % u)
        } else {
            let rel = rel - self.n_racks * u;
            format!("down:r{}/{}", rel / u, rel % u)
        }
    }

    /// The ECMP plane a `(src, dst)` flow is pinned to.
    #[inline]
    fn plane(&self, src: u32, dst: u32) -> u32 {
        (mix(((src as u64) << 32) | dst as u64) % self.cfg.uplinks_per_rack as u64) as u32
    }

    /// The ordered links a packet from `src` to `dst` crosses.
    ///
    /// # Panics
    ///
    /// Panics when either node id is out of range.
    #[inline]
    pub fn path(&self, src: u32, dst: u32) -> LinkPath {
        let rs = self.rack_of[src as usize];
        let rd = self.rack_of[dst as usize];
        if rs == rd {
            LinkPath {
                links: [src, dst, 0, 0],
                len: 2,
            }
        } else {
            let u = self.plane(src, dst);
            LinkPath {
                links: [src, self.uplink(rs, u), self.downlink(rd, u), dst],
                len: 4,
            }
        }
    }

    /// Background queue occupancy (bytes) of `link` during `epoch` — a
    /// pure hash draw in `0..=max_queue_bytes`.
    #[inline]
    fn queue_bytes(&self, link: u32, epoch: u64) -> u64 {
        if self.cfg.max_queue_bytes == 0 {
            return 0;
        }
        mix(mix(link as u64 + 1) ^ epoch) % (self.cfg.max_queue_bytes + 1)
    }

    /// Transit delay in nanoseconds — the pure hot-path form.
    ///
    /// Depends only on `(src, dst, bytes, departure_nanos)`: propagation
    /// over each hop, store-and-forward re-serialization at the uplink and
    /// destination-edge stages, and epoch-keyed background queueing on
    /// every link past the source edge. The source edge itself is the
    /// sender's NIC link, whose serialization the NIC model already
    /// charges.
    #[inline]
    pub fn transit_nanos(&self, src: u32, dst: u32, bytes: u32, departure_nanos: u64) -> u64 {
        let cfg = &self.cfg;
        let epoch = departure_nanos / self.epoch_nanos;
        let rs = self.rack_of[src as usize];
        let rd = self.rack_of[dst as usize];
        let edge = cfg.edge_latency.as_nanos() * 2
            + ser_nanos(bytes as u64, cfg.edge_bw_bps)
            + ser_nanos(self.queue_bytes(dst, epoch), cfg.edge_bw_bps);
        if rs == rd {
            return edge;
        }
        let u = self.plane(src, dst);
        let up = self.uplink(rs, u);
        let down = self.downlink(rd, u);
        edge + cfg.uplink_latency.as_nanos() * 2
            + ser_nanos(bytes as u64, cfg.uplink_bw_bps)
            + ser_nanos(
                self.queue_bytes(up, epoch) + self.queue_bytes(down, epoch),
                cfg.uplink_bw_bps,
            )
    }

    /// Transit delay as a [`SimDuration`] (see [`Self::transit_nanos`]).
    #[inline]
    pub fn transit(&self, src: NodeId, dst: NodeId, bytes: u32, departure: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.transit_nanos(
            src.as_u32(),
            dst.as_u32(),
            bytes,
            departure.as_nanos(),
        ))
    }
}

impl SwitchModel for FatTreeFabric {
    /// Pure — ignores no arguments, mutates nothing. Safe under any call
    /// order, which is what lets the parallel engines share one fabric.
    fn transit_delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        ingress: SimTime,
    ) -> SimDuration {
        FatTreeFabric::transit(self, src, dst, bytes, ingress)
    }

    fn reset(&mut self) {}
}

/// Per-slice accumulation of observed link load: bytes and packets per
/// link id, commutative sums only.
///
/// Each shard of the sharded engine owns one slice and records the links
/// its senders cross; the leader merges all slices at the quantum barrier.
/// Because addition commutes, the merged totals are independent of worker
/// count and call order — load observation never perturbs the
/// bit-identity guarantee.
#[derive(Clone, Debug, Default)]
pub struct LinkLoad {
    bytes: Vec<u64>,
    packets: Vec<u64>,
}

impl LinkLoad {
    /// An accumulator for `n_links` links, all zero.
    pub fn new(n_links: usize) -> Self {
        Self {
            bytes: vec![0; n_links],
            packets: vec![0; n_links],
        }
    }

    /// Number of links tracked.
    pub fn n_links(&self) -> usize {
        self.bytes.len()
    }

    /// True when tracking no links at all.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Records one packet of `bytes` crossing `link`.
    #[inline]
    pub fn record(&mut self, link: u32, bytes: u64) {
        self.bytes[link as usize] += bytes;
        self.packets[link as usize] += 1;
    }

    /// Adds `bytes` and `packets` to `link`'s totals.
    #[inline]
    pub fn add(&mut self, link: usize, bytes: u64, packets: u64) {
        self.bytes[link] += bytes;
        self.packets[link] += packets;
    }

    /// Merges another slice's totals into this one.
    pub fn merge(&mut self, other: &LinkLoad) {
        assert_eq!(self.n_links(), other.n_links(), "link count mismatch");
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
        for (a, b) in self.packets.iter_mut().zip(&other.packets) {
            *a += b;
        }
    }

    /// Zeroes all totals in place, keeping capacity.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
        self.packets.fill(0);
    }

    /// Cumulative bytes per link id.
    pub fn bytes(&self) -> &[u64] {
        &self.bytes
    }

    /// Cumulative packets per link id.
    pub fn packets(&self) -> &[u64] {
        &self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FatTreeFabric {
        let cfg = FabricConfig::fat_tree()
            .with_rack_size(4)
            .with_uplinks_per_rack(2);
        FatTreeFabric::new(cfg, 10)
    }

    #[test]
    fn racks_and_links_are_sized_from_the_config() {
        let f = small();
        assert_eq!(f.n_racks(), 3); // 4 + 4 + 2 nodes
        assert_eq!(f.rack_of(0), 0);
        assert_eq!(f.rack_of(5), 1);
        assert_eq!(f.rack_of(9), 2);
        // 10 edges + 3 racks * 2 planes * (uplink + downlink).
        assert_eq!(f.n_links(), 10 + 12);
    }

    #[test]
    fn link_ids_are_dense_and_labeled() {
        let f = small();
        let mut seen = vec![false; f.n_links()];
        for src in 0..10u32 {
            for dst in 0..10u32 {
                if src == dst {
                    continue;
                }
                for &l in f.path(src, dst).links() {
                    seen[l as usize] = true;
                }
            }
        }
        // Every edge link is used; uplink planes may miss some (hash), but
        // all ids must be in range (indexing above would have panicked).
        assert!(seen[..10].iter().all(|&s| s));
        assert_eq!(f.link_label(0), "edge:n0");
        assert_eq!(f.link_label(10), "up:r0/0");
        assert_eq!(f.link_label(16), "down:r0/0");
    }

    #[test]
    fn same_rack_paths_skip_the_spine() {
        let f = small();
        assert_eq!(f.path(0, 3).links().len(), 2);
        assert_eq!(f.path(0, 4).links().len(), 4);
    }

    #[test]
    fn transit_is_pure_and_flow_pinned() {
        let f = small();
        let t = SimTime::from_micros(7).as_nanos();
        assert_eq!(
            f.transit_nanos(0, 5, 1024, t),
            f.transit_nanos(0, 5, 1024, t)
        );
        // The ECMP plane is pinned per flow: the path never changes with time.
        assert_eq!(f.path(0, 5), f.path(0, 5));
    }

    #[test]
    fn cross_rack_costs_more_than_same_rack() {
        let f = small();
        let t = 0;
        assert!(f.transit_nanos(0, 4, 1024, t) > f.transit_nanos(0, 1, 1024, t));
    }

    #[test]
    fn congestion_varies_by_epoch_but_not_within_one() {
        let f = small();
        let e = f.config().queue_epoch.as_nanos();
        // Same epoch, different instants: identical.
        assert_eq!(
            f.transit_nanos(0, 1, 64, 0),
            f.transit_nanos(0, 1, 64, e - 1)
        );
        // Some pair of epochs must disagree, else congestion is inert.
        let base = f.transit_nanos(0, 1, 64, 0);
        assert!((1..50).any(|k| f.transit_nanos(0, 1, 64, k * e) != base));
    }

    #[test]
    fn zero_max_queue_disables_congestion() {
        let cfg = FabricConfig::fat_tree().with_max_queue_bytes(0);
        let f = FatTreeFabric::new(cfg, 64);
        let e = cfg.queue_epoch.as_nanos();
        assert_eq!(
            f.transit_nanos(0, 40, 512, 0),
            f.transit_nanos(0, 40, 512, 9 * e)
        );
    }

    #[test]
    fn switch_model_impl_matches_the_pure_form() {
        let mut f = small();
        let t = SimTime::from_micros(3);
        let pure = f.transit(NodeId::new(2), NodeId::new(8), 900, t);
        let via_trait = f.transit_delay(NodeId::new(2), NodeId::new(8), 900, t);
        assert_eq!(pure, via_trait);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FabricConfig::fat_tree()
            .with_rack_size(0)
            .validate()
            .is_err());
        assert!(FabricConfig::fat_tree()
            .with_uplinks_per_rack(0)
            .validate()
            .is_err());
        assert!(FabricConfig::fat_tree()
            .with_queue_epoch(SimDuration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn link_load_merges_commutatively() {
        let f = small();
        let mut a = LinkLoad::new(f.n_links());
        let mut b = LinkLoad::new(f.n_links());
        for &l in f.path(0, 5).links() {
            a.record(l, 1024);
        }
        for &l in f.path(9, 2).links() {
            b.record(l, 512);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.bytes(), ba.bytes());
        assert_eq!(ab.packets(), ba.packets());
        ab.clear();
        assert!(ab.bytes().iter().all(|&v| v == 0));
    }
}
