//! Packet, address and destination types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated cluster node (and of its NIC's switch port).
///
/// Nodes are numbered densely from zero; the network controller sizes its
/// tables from the highest id it is configured with.
///
/// # Examples
///
/// ```
/// use aqs_net::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The link-layer address of this node's NIC, derived deterministically
    /// from the id (locally-administered unicast OUI).
    pub const fn mac(self) -> MacAddr {
        let b = self.0.to_be_bytes();
        MacAddr([0x02, 0xAC, b[0], b[1], b[2], b[3]])
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A 48-bit link-layer (MAC) address.
///
/// The controller is a MAC-to-MAC switch; node ids map to addresses via
/// [`NodeId::mac`] and back via [`MacAddr::node`].
///
/// # Examples
///
/// ```
/// use aqs_net::{MacAddr, NodeId};
/// let mac = NodeId::new(7).mac();
/// assert_eq!(mac.node(), Some(NodeId::new(7)));
/// assert_eq!(mac.to_string(), "02:ac:00:00:00:07");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: Self = Self([0xFF; 6]);

    /// Returns `true` for the broadcast address.
    #[inline]
    pub const fn is_broadcast(self) -> bool {
        matches!(self.0, [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF])
    }

    /// Recovers the node id if this address was minted by [`NodeId::mac`].
    pub const fn node(self) -> Option<NodeId> {
        match self.0 {
            [0x02, 0xAC, a, b, c, d] => Some(NodeId(u32::from_be_bytes([a, b, c, d]))),
            _ => None,
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d, e, g] = self.0;
        write!(f, "{a:02x}:{b:02x}:{c:02x}:{d:02x}:{e:02x}:{g:02x}")
    }
}

/// Unique identifier of a packet within one controller instance.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Where a packet is headed: one port or all ports (broadcast/multicast are
/// delivered to every node except the sender, as a link-layer switch would).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Destination {
    /// A single receiving node.
    Unicast(NodeId),
    /// All nodes except the sender.
    Broadcast,
}

impl fmt::Display for Destination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Destination::Unicast(n) => write!(f, "{n}"),
            Destination::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// A link-layer frame in flight, generic over the payload the upper layer
/// attaches (the cluster engine uses message-fragment descriptors).
///
/// `Packet` is a passive record: timing lives in [`crate::NicModel`] /
/// [`crate::SwitchModel`], bookkeeping in [`crate::NetworkController`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet<P> {
    /// Controller-assigned id.
    pub id: PacketId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (after broadcast expansion).
    pub dst: NodeId,
    /// Frame size in bytes (headers included).
    pub bytes: u32,
    /// Simulated time at which the last bit left the sender's NIC.
    pub departure: aqs_time::SimTime,
    /// Upper-layer payload descriptor.
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.as_u32(), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn mac_roundtrip_all_ids() {
        for i in [0u32, 1, 7, 63, 255, 65_535, u32::MAX] {
            let n = NodeId::new(i);
            assert_eq!(n.mac().node(), Some(n));
        }
    }

    #[test]
    fn broadcast_mac_is_not_a_node() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(MacAddr::BROADCAST.node(), None);
        assert!(!NodeId::new(0).mac().is_broadcast());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(5).to_string(), "n5");
        assert_eq!(Destination::Unicast(NodeId::new(5)).to_string(), "n5");
        assert_eq!(Destination::Broadcast.to_string(), "broadcast");
        assert_eq!(PacketId(9).to_string(), "pkt#9");
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    fn macs_are_unique_per_node() {
        let macs: Vec<MacAddr> = (0..1000).map(|i| NodeId::new(i).mac()).collect();
        let mut dedup = macs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), macs.len());
    }
}
