//! Deterministic chaos middleware: fault injection as a switch wrapper.
//!
//! Production clusters do not run on quiet, perfect fabrics: links flap,
//! switches partition, packets drop and retransmit, nodes stall for
//! garbage-collection pauses, and tenants spike the shared spine. A
//! synchronization policy evaluated only on clean traffic has never been
//! exercised where it matters. This module injects exactly those faults —
//! **without giving up a single determinism guarantee**.
//!
//! # Design: chaos as a pure delay overlay
//!
//! Every fault is expressed as *extra transit delay*, computed by
//! [`ChaosOverlay::extra_nanos`] as a **pure function of
//! `(src, dst, bytes, departure)`** keyed on `(seed, epoch)` — the same
//! contract the [`FatTreeFabric`](crate::FatTreeFabric) satisfies. Time is
//! quantized into chaos epochs ([`ChaosConfig::epoch`]); per-epoch hash
//! draws decide which links are down, which nodes are paused, whether the
//! cluster is partitioned, and whether a load spike is in progress. Because
//! nothing mutates per call, identical call *sets* produce identical delays
//! regardless of call order, worker count, or engine: the same scenario
//! file is bit-identical across the deterministic, threaded, and sharded
//! engines and every shard count.
//!
//! The fault vocabulary:
//!
//! * **Link flaps** — a node's edge link is down for whole epochs with
//!   probability [`ChaosConfig::link_flap`]; packets crossing a down link
//!   are held until the first epoch in which both endpoints' links are up
//!   (store-and-retransmit, bounded by [`ChaosConfig::hold_scan_epochs`]).
//! * **Partitions** — with probability [`ChaosConfig::partition`] an epoch
//!   splits the cluster into [`ChaosConfig::partition_groups`] static
//!   groups; cross-group packets are held until the partition heals.
//! * **Packet loss** — each packet is lost with probability
//!   [`ChaosConfig::loss`] and retransmitted after
//!   [`ChaosConfig::retransmit`], geometrically up to
//!   [`ChaosConfig::max_retransmits`] times. Loss never drops a frame
//!   outright: in a simulator whose receives must eventually match, loss
//!   *is* retransmission latency.
//! * **Node pauses** — a node is frozen (GC pause, reboot-and-rejoin) for
//!   whole epochs with probability [`ChaosConfig::pause`]; traffic to or
//!   from a paused node is held until it rejoins.
//! * **Jitter** — uniform per-packet delay in `[0, jitter]`.
//! * **Load spikes** — with probability [`ChaosConfig::spike`] an epoch
//!   adds [`ChaosConfig::spike_delay`] to every packet (a tenant hammering
//!   the shared fabric).
//!
//! # Examples
//!
//! ```
//! use aqs_net::{ChaosConfig, ChaosOverlay, ChaosSwitch, NodeId, PerfectSwitch, SwitchModel};
//! use aqs_time::{SimDuration, SimTime};
//!
//! let cfg = ChaosConfig::new(7)
//!     .with_loss(0.5, SimDuration::from_micros(100))
//!     .with_jitter(SimDuration::from_micros(2));
//! let overlay = ChaosOverlay::new(cfg).unwrap();
//! // Pure: same arguments, same delay — call order cannot matter.
//! let a = overlay.extra_nanos(0, 1, 1024, 5_000);
//! assert_eq!(a, overlay.extra_nanos(0, 1, 1024, 5_000));
//!
//! let mut sw = ChaosSwitch::new(overlay, PerfectSwitch::new());
//! let d = sw.transit_delay(NodeId::new(0), NodeId::new(1), 1024, SimTime::from_nanos(5_000));
//! assert_eq!(d, SimDuration::from_nanos(a));
//! ```

use crate::packet::NodeId;
use crate::switch::SwitchModel;
use aqs_time::{SimDuration, SimTime};

/// splitmix64 finalizer (same mixer the fabric uses): fast, well mixed,
/// pure — every chaos draw is one or two of these.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain-separation tags so the per-feature draws are independent streams.
const TAG_FLAP: u64 = 0x464C_4150; // "FLAP"
const TAG_PAUSE: u64 = 0x5041_5553; // "PAUS"
const TAG_PART: u64 = 0x5041_5254; // "PART"
const TAG_GROUP: u64 = 0x4752_5550; // "GRUP"
const TAG_LOSS: u64 = 0x4C4F_5353; // "LOSS"
const TAG_JITTER: u64 = 0x4A49_5454; // "JITT"
const TAG_SPIKE: u64 = 0x5350_4B45; // "SPKE"

/// Probability scaled to a 53-bit integer threshold, so the hot path
/// compares integers only (no floating point, no rounding surprises).
#[inline]
fn scale_prob(p: f64) -> u64 {
    (p * (1u64 << 53) as f64) as u64
}

/// Configuration of the chaos middleware. All faults default to *off*; turn
/// each on with its `with_*` setter. Probabilities are per chaos epoch
/// (outage-style faults) or per packet (loss, jitter).
///
/// # Examples
///
/// ```
/// use aqs_net::ChaosConfig;
/// use aqs_time::SimDuration;
///
/// let cfg = ChaosConfig::new(42)
///     .with_link_flap(0.05)
///     .with_partition(0.02, 2)
///     .with_spike(0.1, SimDuration::from_micros(20));
/// assert!(cfg.validate().is_ok());
/// assert!(ChaosConfig { link_flap: 1.5, ..cfg }.validate().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed of every chaos draw. Two runs with the same seed (and the same
    /// traffic) see the same faults; changing the seed reshuffles them.
    pub seed: u64,
    /// Width of a chaos epoch: outage-style faults (flaps, pauses,
    /// partitions, spikes) hold for whole epochs. Must be nonzero.
    pub epoch: SimDuration,
    /// Probability that a given node's edge link is down during an epoch.
    /// Must be in `[0, 1)`.
    pub link_flap: f64,
    /// Probability that a given node is paused during an epoch. Must be in
    /// `[0, 1)`.
    pub pause: f64,
    /// Probability that the cluster is partitioned during an epoch. Must be
    /// in `[0, 1)`.
    pub partition: f64,
    /// Number of static groups a partition splits the cluster into. Must be
    /// at least 2 when `partition > 0`.
    pub partition_groups: u32,
    /// Bound on how many consecutive epochs a packet can be held by
    /// flap/pause/partition outages before it is released anyway (models
    /// the retransmit give-up / fail-open path). Must be at least 1.
    pub hold_scan_epochs: u32,
    /// Per-packet loss probability. Must be in `[0, 1)`.
    pub loss: f64,
    /// Retransmit timeout added per lost transmission attempt.
    pub retransmit: SimDuration,
    /// Cap on consecutive losses of one packet.
    pub max_retransmits: u32,
    /// Maximum uniform per-packet jitter (zero disables).
    pub jitter: SimDuration,
    /// Probability that an epoch is a load spike. Must be in `[0, 1)`.
    pub spike: f64,
    /// Extra delay every packet suffers during a spike epoch.
    pub spike_delay: SimDuration,
}

impl ChaosConfig {
    /// A configuration with every fault disabled, a 50 µs epoch, and the
    /// given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            epoch: SimDuration::from_micros(50),
            link_flap: 0.0,
            pause: 0.0,
            partition: 0.0,
            partition_groups: 2,
            hold_scan_epochs: 8,
            loss: 0.0,
            retransmit: SimDuration::from_micros(200),
            max_retransmits: 3,
            jitter: SimDuration::ZERO,
            spike: 0.0,
            spike_delay: SimDuration::ZERO,
        }
    }

    /// Returns the config with the given epoch width.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    /// Returns the config with per-epoch link flaps of probability `p`.
    pub fn with_link_flap(mut self, p: f64) -> Self {
        self.link_flap = p;
        self
    }

    /// Returns the config with per-epoch node pauses of probability `p`.
    pub fn with_pause(mut self, p: f64) -> Self {
        self.pause = p;
        self
    }

    /// Returns the config with per-epoch partitions of probability `p`
    /// into `groups` static groups.
    pub fn with_partition(mut self, p: f64, groups: u32) -> Self {
        self.partition = p;
        self.partition_groups = groups;
        self
    }

    /// Returns the config with per-packet loss of probability `p` and the
    /// given retransmit timeout.
    pub fn with_loss(mut self, p: f64, retransmit: SimDuration) -> Self {
        self.loss = p;
        self.retransmit = retransmit;
        self
    }

    /// Returns the config with uniform per-packet jitter in `[0, max]`.
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter = max;
        self
    }

    /// Returns the config with per-epoch load spikes of probability `p`
    /// adding `delay` to every packet.
    pub fn with_spike(mut self, p: f64, delay: SimDuration) -> Self {
        self.spike = p;
        self.spike_delay = delay;
        self
    }

    /// True when every fault is disabled (the overlay would be a no-op).
    pub fn is_inert(&self) -> bool {
        self.link_flap == 0.0
            && self.pause == 0.0
            && self.partition == 0.0
            && self.loss == 0.0
            && self.jitter.is_zero()
            && self.spike == 0.0
    }

    /// Checks the configuration, returning a human-readable reason when it
    /// cannot drive a working overlay.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch.is_zero() {
            return Err("chaos epoch must be nonzero".into());
        }
        for (name, p) in [
            ("link_flap", self.link_flap),
            ("pause", self.pause),
            ("partition", self.partition),
            ("loss", self.loss),
            ("spike", self.spike),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} probability must be in [0, 1), got {p}"));
            }
        }
        if self.partition > 0.0 && self.partition_groups < 2 {
            return Err("a partition needs at least 2 groups".into());
        }
        if self.hold_scan_epochs == 0 {
            return Err("hold_scan_epochs must be at least 1".into());
        }
        if self.loss > 0.0 && self.retransmit.is_zero() {
            return Err("loss needs a nonzero retransmit timeout".into());
        }
        if self.spike > 0.0 && self.spike_delay.is_zero() {
            return Err("spike needs a nonzero spike_delay".into());
        }
        Ok(())
    }
}

/// The compiled chaos middleware: thresholds pre-scaled to integers,
/// durations to nanoseconds. Cheap to clone, safe to share across worker
/// threads — it holds no mutable state at all.
#[derive(Clone, Debug)]
pub struct ChaosOverlay {
    cfg: ChaosConfig,
    epoch_nanos: u64,
    flap_thr: u64,
    pause_thr: u64,
    part_thr: u64,
    loss_thr: u64,
    spike_thr: u64,
    retransmit_nanos: u64,
    jitter_nanos: u64,
    spike_nanos: u64,
}

impl ChaosOverlay {
    /// Compiles a validated configuration; `Err` carries
    /// [`ChaosConfig::validate`]'s reason.
    pub fn new(cfg: ChaosConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            epoch_nanos: cfg.epoch.as_nanos(),
            flap_thr: scale_prob(cfg.link_flap),
            pause_thr: scale_prob(cfg.pause),
            part_thr: scale_prob(cfg.partition),
            loss_thr: scale_prob(cfg.loss),
            spike_thr: scale_prob(cfg.spike),
            retransmit_nanos: cfg.retransmit.as_nanos(),
            jitter_nanos: cfg.jitter.as_nanos(),
            spike_nanos: cfg.spike_delay.as_nanos(),
        })
    }

    /// The configuration this overlay was compiled from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// One 53-bit draw for `(tag, entity, epoch)`, compared against a
    /// pre-scaled threshold by the callers.
    #[inline]
    fn draw(&self, tag: u64, entity: u64, epoch: u64) -> u64 {
        mix(mix(self.cfg.seed ^ tag).wrapping_add(entity) ^ epoch.wrapping_mul(0x9E37)) >> 11
    }

    /// The static partition group of a node.
    #[inline]
    fn group(&self, node: u32) -> u32 {
        (mix(self.cfg.seed ^ TAG_GROUP ^ node as u64) % self.cfg.partition_groups as u64) as u32
    }

    /// True when an outage (flap, pause, or partition) holds `src → dst`
    /// traffic during `epoch`.
    #[inline]
    fn held(&self, src: u32, dst: u32, epoch: u64) -> bool {
        if self.flap_thr > 0
            && (self.draw(TAG_FLAP, src as u64, epoch) < self.flap_thr
                || self.draw(TAG_FLAP, dst as u64, epoch) < self.flap_thr)
        {
            return true;
        }
        if self.pause_thr > 0
            && (self.draw(TAG_PAUSE, src as u64, epoch) < self.pause_thr
                || self.draw(TAG_PAUSE, dst as u64, epoch) < self.pause_thr)
        {
            return true;
        }
        self.part_thr > 0
            && self.draw(TAG_PART, 0, epoch) < self.part_thr
            && self.group(src) != self.group(dst)
    }

    /// Extra transit delay in nanoseconds for a packet of `bytes` from
    /// `src` to `dst` departing at `departure_nanos` — a pure function of
    /// its arguments (plus the compiled config), so it is safe for every
    /// engine under any routing order.
    #[inline]
    pub fn extra_nanos(&self, src: u32, dst: u32, bytes: u32, departure_nanos: u64) -> u64 {
        let e0 = departure_nanos / self.epoch_nanos;
        let mut extra = 0u64;
        // Outages: hold the packet until the first epoch with the link up,
        // both nodes running, and no partition between them (bounded scan).
        if self.flap_thr > 0 || self.pause_thr > 0 || self.part_thr > 0 {
            let mut e = e0;
            let limit = e0 + self.cfg.hold_scan_epochs as u64;
            while e < limit && self.held(src, dst, e) {
                e += 1;
            }
            if e > e0 {
                extra += e * self.epoch_nanos - departure_nanos;
            }
        }
        // Loss: geometric retransmit chain, capped.
        if self.loss_thr > 0 {
            let flow = ((src as u64) << 32) | dst as u64;
            let pkt = mix(flow ^ departure_nanos.wrapping_mul(0xB529_7A4D)) ^ bytes as u64;
            let mut k = 0u32;
            while k < self.cfg.max_retransmits && self.draw(TAG_LOSS, pkt, k as u64) < self.loss_thr
            {
                k += 1;
            }
            extra += k as u64 * self.retransmit_nanos;
        }
        // Jitter: uniform per-packet draw in [0, jitter].
        if self.jitter_nanos > 0 {
            let flow = ((src as u64) << 32) | dst as u64;
            let pkt = mix(flow ^ departure_nanos.wrapping_mul(0xD127_3F0B)) ^ bytes as u64;
            extra += self.draw(TAG_JITTER, pkt, 0) % (self.jitter_nanos + 1);
        }
        // Load spike: flat per-packet surcharge during spike epochs.
        if self.spike_thr > 0 && self.draw(TAG_SPIKE, 0, e0) < self.spike_thr {
            extra += self.spike_nanos;
        }
        extra
    }

    /// [`Self::extra_nanos`] as a [`SimDuration`].
    #[inline]
    pub fn extra_delay(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        departure: SimTime,
    ) -> SimDuration {
        SimDuration::from_nanos(self.extra_nanos(
            src.as_u32(),
            dst.as_u32(),
            bytes,
            departure.as_nanos(),
        ))
    }
}

/// Chaos middleware over any [`SwitchModel`]: the wrapped model computes
/// the base transit, the overlay adds its fault delay on top. Pure exactly
/// when the inner model is pure, so wrapping [`PerfectSwitch`],
/// [`LatencyMatrixSwitch`] or [`FatTreeFabric`] keeps every engine's
/// determinism guarantee intact.
///
/// [`PerfectSwitch`]: crate::PerfectSwitch
/// [`LatencyMatrixSwitch`]: crate::LatencyMatrixSwitch
/// [`FatTreeFabric`]: crate::FatTreeFabric
#[derive(Clone, Debug)]
pub struct ChaosSwitch<S> {
    overlay: ChaosOverlay,
    inner: S,
}

impl<S> ChaosSwitch<S> {
    /// Wraps `inner` with the overlay.
    pub fn new(overlay: ChaosOverlay, inner: S) -> Self {
        Self { overlay, inner }
    }

    /// The overlay in use.
    pub fn overlay(&self) -> &ChaosOverlay {
        &self.overlay
    }

    /// The wrapped model.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SwitchModel> SwitchModel for ChaosSwitch<S> {
    fn transit_delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        ingress: SimTime,
    ) -> SimDuration {
        self.inner.transit_delay(src, dst, bytes, ingress)
            + self.overlay.extra_delay(src, dst, bytes, ingress)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::PerfectSwitch;

    fn overlay(cfg: ChaosConfig) -> ChaosOverlay {
        ChaosOverlay::new(cfg).expect("valid config")
    }

    #[test]
    fn inert_config_adds_nothing() {
        let o = overlay(ChaosConfig::new(1));
        assert!(o.config().is_inert());
        for t in [0u64, 1, 999, 1_000_000] {
            assert_eq!(o.extra_nanos(0, 1, 9000, t), 0);
        }
    }

    #[test]
    fn extra_delay_is_pure() {
        let o = overlay(
            ChaosConfig::new(9)
                .with_link_flap(0.3)
                .with_loss(0.3, SimDuration::from_micros(100))
                .with_jitter(SimDuration::from_micros(5))
                .with_spike(0.3, SimDuration::from_micros(10)),
        );
        for (s, d, b, t) in [
            (0u32, 1u32, 64u32, 0u64),
            (3, 7, 9000, 123_456),
            (7, 3, 1, 99),
        ] {
            assert_eq!(o.extra_nanos(s, d, b, t), o.extra_nanos(s, d, b, t));
        }
    }

    #[test]
    fn seeds_reshuffle_the_faults() {
        let a = overlay(ChaosConfig::new(1).with_jitter(SimDuration::from_micros(50)));
        let b = overlay(ChaosConfig::new(2).with_jitter(SimDuration::from_micros(50)));
        let differs = (0..64u64)
            .any(|t| a.extra_nanos(0, 1, 1024, t * 1_000) != b.extra_nanos(0, 1, 1024, t * 1_000));
        assert!(differs, "different seeds must draw different jitter");
    }

    #[test]
    fn flap_holds_until_the_link_recovers() {
        let cfg = ChaosConfig::new(3)
            .with_link_flap(0.5)
            .with_epoch(SimDuration::from_micros(10));
        let o = overlay(cfg);
        let e = cfg.epoch.as_nanos();
        // Find an epoch where the src link is down; the packet must be
        // released exactly at a later epoch boundary.
        let mut seen_hold = false;
        for k in 0..200u64 {
            let t = k * e + e / 2; // mid-epoch departure
            let extra = o.extra_nanos(0, 1, 64, t);
            if extra > 0 {
                seen_hold = true;
                assert_eq!((t + extra) % e, 0, "release must land on an epoch edge");
                assert!(extra <= cfg.hold_scan_epochs as u64 * e, "hold is bounded");
            }
        }
        assert!(seen_hold, "p=0.5 over 200 epochs must hold at least once");
    }

    #[test]
    fn partition_only_delays_cross_group_traffic() {
        let cfg = ChaosConfig::new(5)
            .with_partition(0.5, 2)
            .with_epoch(SimDuration::from_micros(10));
        let o = overlay(cfg);
        // Find two nodes in the same group and two in different groups.
        let g: Vec<u32> = (0..8).map(|n| o.group(n)).collect();
        let same = (1..8)
            .find(|&i| g[i as usize] == g[0])
            .expect("same-group pair");
        let cross = (1..8)
            .find(|&i| g[i as usize] != g[0])
            .expect("cross-group pair");
        let e = cfg.epoch.as_nanos();
        // Same-group traffic is never held by a partition.
        for k in 0..100u64 {
            assert_eq!(o.extra_nanos(0, same, 64, k * e), 0);
        }
        // Cross-group traffic is held in some epoch.
        assert!((0..100u64).any(|k| o.extra_nanos(0, cross, 64, k * e) > 0));
    }

    #[test]
    fn loss_adds_whole_retransmit_timeouts() {
        let rto = SimDuration::from_micros(100);
        let o = overlay(ChaosConfig::new(11).with_loss(0.5, rto));
        let mut counts = [0u32; 4];
        for t in 0..400u64 {
            let extra = o.extra_nanos(0, 1, 512, t * 977);
            assert_eq!(extra % rto.as_nanos(), 0, "loss delay is k × RTO");
            let k = (extra / rto.as_nanos()) as usize;
            assert!(k <= 3, "capped at max_retransmits");
            counts[k] += 1;
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "p=0.5 must show 0 and ≥1 losses"
        );
    }

    #[test]
    fn jitter_is_bounded() {
        let max = SimDuration::from_micros(5);
        let o = overlay(ChaosConfig::new(13).with_jitter(max));
        let mut top = 0;
        for t in 0..500u64 {
            let extra = o.extra_nanos(2, 3, 64, t * 31);
            assert!(extra <= max.as_nanos());
            top = top.max(extra);
        }
        assert!(top > max.as_nanos() / 2, "draws must spread over the range");
    }

    #[test]
    fn chaos_switch_composes_with_the_inner_model() {
        let o = overlay(ChaosConfig::new(17).with_jitter(SimDuration::from_micros(9)));
        let mut plain = ChaosSwitch::new(o.clone(), PerfectSwitch::new());
        let t = SimTime::from_micros(3);
        let d = plain.transit_delay(NodeId::new(0), NodeId::new(1), 777, t);
        assert_eq!(d, o.extra_delay(NodeId::new(0), NodeId::new(1), 777, t));
        plain.reset(); // must not disturb the overlay
        let again = plain.transit_delay(NodeId::new(0), NodeId::new(1), 777, t);
        assert_eq!(d, again);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ChaosConfig::new(0)
            .with_epoch(SimDuration::ZERO)
            .validate()
            .is_err());
        assert!(ChaosConfig::new(0).with_link_flap(1.0).validate().is_err());
        assert!(ChaosConfig::new(0)
            .with_partition(0.1, 1)
            .validate()
            .is_err());
        assert!(ChaosConfig::new(0)
            .with_loss(0.1, SimDuration::ZERO)
            .validate()
            .is_err());
        assert!(ChaosConfig::new(0)
            .with_spike(0.1, SimDuration::ZERO)
            .validate()
            .is_err());
        let mut cfg = ChaosConfig::new(0);
        cfg.hold_scan_epochs = 0;
        assert!(cfg.validate().is_err());
        assert!(ChaosOverlay::new(cfg).is_err());
    }
}
