//! Quantum synchronization policies — the contribution of the ISPASS 2008
//! paper *"An Adaptive Synchronization Technique for Parallel Simulation of
//! Networked Clusters"* (Falcón, Faraboschi, Ortega).
//!
//! A cluster simulator built from per-node full-system simulators must keep
//! the nodes' simulated clocks consistent. The conservative baseline runs
//! all nodes in lock-step *quanta* of length `Q`; safety (zero stragglers)
//! requires `Q ≤ T` where `T` is the minimum network latency — but paying a
//! barrier every microsecond makes the simulation up to two orders of
//! magnitude slower.
//!
//! The paper's insight: network traffic is bursty, so the quantum can be
//! **adapted** to the observed packet rate. [`AdaptiveQuantum`] implements
//! the paper's Algorithm 1 verbatim: grow the quantum by a small factor
//! (`inc`, 2–5 %) in every packet-free quantum, multiply it by a small
//! factor (`dec ≈ 1/√(maxQ/minQ)`, so the floor is reached in 2–3 quanta)
//! whenever packets appear — "driving over speed bumps".
//!
//! [`FixedQuantum`] provides the baselines the paper compares against, and
//! [`ThresholdAdaptive`] / [`EwmaAdaptive`] are the natural extensions used
//! by this repository's ablation benchmarks.
//!
//! # Examples
//!
//! ```
//! use aqs_core::{AdaptiveQuantum, QuantumPolicy};
//! use aqs_time::SimDuration;
//!
//! // The paper's "dyn 1" configuration: 1µs..1000µs, +3 % / ×0.02.
//! let mut policy = AdaptiveQuantum::paper_dyn1();
//! assert_eq!(policy.initial_quantum(), SimDuration::from_micros(1));
//!
//! // Quiet quanta grow the quantum…
//! let mut q = policy.initial_quantum();
//! for _ in 0..300 {
//!     q = policy.next_quantum(0);
//! }
//! assert!(q > SimDuration::from_micros(500));
//! // …one busy quantum collapses it back to the floor in ≤ 3 steps.
//! let q1 = policy.next_quantum(10);
//! let q2 = policy.next_quantum(10);
//! assert_eq!(q2, SimDuration::from_micros(1));
//! assert!(q1 < q.mul_f64(0.05));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod ext;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod fixed;
mod policy;
mod predictive;
mod trace;

pub use adaptive::{AdaptiveConfig, AdaptiveQuantum};
pub use ext::{EwmaAdaptive, ThresholdAdaptive};
pub use fixed::FixedQuantum;
pub use policy::{QuantumPolicy, SyncConfig};
pub use predictive::{PredictiveConfig, PredictiveQuantum};
pub use trace::{QuantumRecord, QuantumTrace};
