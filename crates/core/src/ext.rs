//! Extension policies used by the ablation benchmarks.
//!
//! The paper (§7) frames its algorithm as "representative of a broader kind
//! of adaptive techniques". These two variants probe the design space around
//! Algorithm 1:
//!
//! * [`ThresholdAdaptive`] — tolerate up to `threshold` packets per quantum
//!   before braking. Tests whether the paper's hair-trigger (`np > 0`)
//!   reaction is necessary.
//! * [`EwmaAdaptive`] — react to an exponentially weighted moving average
//!   of the packet rate instead of the instantaneous count. Tests whether
//!   smoothing the signal helps or merely delays the brake.

use crate::adaptive::AdaptiveConfig;
use crate::policy::QuantumPolicy;
use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};

/// Algorithm 1 with a tolerance: shrink only when `np > threshold`.
///
/// With `threshold = 0` this is exactly the paper's algorithm.
///
/// # Examples
///
/// ```
/// use aqs_core::{AdaptiveConfig, QuantumPolicy, ThresholdAdaptive};
///
/// let mut p = ThresholdAdaptive::new(AdaptiveConfig::paper_dyn1(), 2);
/// let q0 = p.next_quantum(2); // tolerated: still grows
/// let q1 = p.next_quantum(3); // over threshold: brakes
/// assert!(q1 < q0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAdaptive {
    config: AdaptiveConfig,
    threshold: u64,
    current_ns: f64,
}

impl ThresholdAdaptive {
    /// Creates the policy.
    pub fn new(config: AdaptiveConfig, threshold: u64) -> Self {
        Self {
            config,
            threshold,
            current_ns: config.min_quantum.as_nanos() as f64,
        }
    }

    /// The tolerance.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Current quantum value.
    pub fn current(&self) -> SimDuration {
        SimDuration::from_nanos(self.current_ns.round() as u64)
    }
}

impl QuantumPolicy for ThresholdAdaptive {
    fn initial_quantum(&self) -> SimDuration {
        self.config.min_quantum
    }

    fn next_quantum(&mut self, np: u64) -> SimDuration {
        if np <= self.threshold {
            self.current_ns *= self.config.inc;
        } else {
            self.current_ns *= self.config.dec;
        }
        let min = self.config.min_quantum.as_nanos() as f64;
        let max = self.config.max_quantum.as_nanos() as f64;
        self.current_ns = self.current_ns.clamp(min, max);
        self.current()
    }

    fn label(&self) -> String {
        format!(
            "thr{} {:.2}:{:.2}",
            self.threshold, self.config.inc, self.config.dec
        )
    }

    fn reset(&mut self) {
        self.current_ns = self.config.min_quantum.as_nanos() as f64;
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.current_ns.to_bits()]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [current] = state else {
            return Err(format!(
                "threshold policy expects 1 state word, got {}",
                state.len()
            ));
        };
        self.current_ns = f64::from_bits(*current);
        Ok(())
    }
}

/// Adaptive quantum driven by an EWMA of the packet count.
///
/// The smoothed signal `s ← α·np + (1−α)·s` replaces `np` in Algorithm 1's
/// branch (`s < 0.5` counts as quiet). Large `α` approaches the paper's
/// behaviour; small `α` keeps the quantum low long after a burst.
///
/// # Examples
///
/// ```
/// use aqs_core::{AdaptiveConfig, EwmaAdaptive, QuantumPolicy};
///
/// let mut p = EwmaAdaptive::new(AdaptiveConfig::paper_dyn1(), 0.5);
/// p.next_quantum(10); // burst
/// // The memory of the burst keeps braking for a while:
/// let q1 = p.next_quantum(0);
/// let q2 = p.next_quantum(0);
/// assert!(q2 >= q1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EwmaAdaptive {
    config: AdaptiveConfig,
    alpha: f64,
    ewma: f64,
    current_ns: f64,
}

impl EwmaAdaptive {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(config: AdaptiveConfig, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            config,
            alpha,
            ewma: 0.0,
            current_ns: config.min_quantum.as_nanos() as f64,
        }
    }

    /// Current smoothed packet signal.
    pub fn signal(&self) -> f64 {
        self.ewma
    }

    /// Current quantum value.
    pub fn current(&self) -> SimDuration {
        SimDuration::from_nanos(self.current_ns.round() as u64)
    }
}

impl QuantumPolicy for EwmaAdaptive {
    fn initial_quantum(&self) -> SimDuration {
        self.config.min_quantum
    }

    fn next_quantum(&mut self, np: u64) -> SimDuration {
        self.ewma = self.alpha * np as f64 + (1.0 - self.alpha) * self.ewma;
        if self.ewma < 0.5 {
            self.current_ns *= self.config.inc;
        } else {
            self.current_ns *= self.config.dec;
        }
        let min = self.config.min_quantum.as_nanos() as f64;
        let max = self.config.max_quantum.as_nanos() as f64;
        self.current_ns = self.current_ns.clamp(min, max);
        self.current()
    }

    fn label(&self) -> String {
        format!(
            "ewma{:.2} {:.2}:{:.2}",
            self.alpha, self.config.inc, self.config.dec
        )
    }

    fn reset(&mut self) {
        self.ewma = 0.0;
        self.current_ns = self.config.min_quantum.as_nanos() as f64;
    }

    fn save_state(&self) -> Vec<u64> {
        vec![self.current_ns.to_bits(), self.ewma.to_bits()]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [current, ewma] = state else {
            return Err(format!(
                "ewma policy expects 2 state words, got {}",
                state.len()
            ));
        };
        self.current_ns = f64::from_bits(*current);
        self.ewma = f64::from_bits(*ewma);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig::paper_dyn1()
    }

    #[test]
    fn threshold_zero_matches_paper_algorithm() {
        use crate::adaptive::AdaptiveQuantum;
        let mut a = ThresholdAdaptive::new(cfg(), 0);
        let mut b = AdaptiveQuantum::new(cfg());
        for np in [0, 0, 3, 0, 1, 0, 0, 9, 0] {
            assert_eq!(a.next_quantum(np), b.next_quantum(np));
        }
    }

    #[test]
    fn threshold_tolerates_light_traffic() {
        let mut p = ThresholdAdaptive::new(cfg(), 5);
        let q1 = p.next_quantum(5);
        let q2 = p.next_quantum(5);
        assert!(q2 > q1 || q2 == p.config.max_quantum);
    }

    #[test]
    fn threshold_reset() {
        let mut p = ThresholdAdaptive::new(cfg(), 1);
        for _ in 0..100 {
            p.next_quantum(0);
        }
        p.reset();
        assert_eq!(p.current(), cfg().min_quantum);
        assert_eq!(p.threshold(), 1);
    }

    #[test]
    fn ewma_decays_after_burst() {
        let mut p = EwmaAdaptive::new(cfg(), 0.25);
        p.next_quantum(100);
        let high = p.signal();
        for _ in 0..20 {
            p.next_quantum(0);
        }
        assert!(p.signal() < high * 0.01);
    }

    #[test]
    fn ewma_alpha_one_tracks_np() {
        let mut p = EwmaAdaptive::new(cfg(), 1.0);
        p.next_quantum(7);
        assert!((p.signal() - 7.0).abs() < 1e-12);
        p.next_quantum(0);
        assert!(p.signal().abs() < 1e-12);
    }

    #[test]
    fn ewma_bounds_hold() {
        let mut p = EwmaAdaptive::new(cfg(), 0.5);
        for i in 0..5000u64 {
            let q = p.next_quantum(i % 11);
            assert!(q >= cfg().min_quantum && q <= cfg().max_quantum);
        }
    }

    #[test]
    fn ewma_reset() {
        let mut p = EwmaAdaptive::new(cfg(), 0.5);
        p.next_quantum(50);
        p.reset();
        assert_eq!(p.signal(), 0.0);
        assert_eq!(p.current(), cfg().min_quantum);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = EwmaAdaptive::new(cfg(), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let t = ThresholdAdaptive::new(cfg(), 3);
        let e = EwmaAdaptive::new(cfg(), 0.5);
        assert_ne!(t.label(), e.label());
        assert!(t.label().contains("thr3"));
        assert!(e.label().contains("ewma0.50"));
    }
}
