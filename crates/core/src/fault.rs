//! Deliberate, runtime-armable policy bugs (`fault-inject` feature).
//!
//! Each fault is a realistic off-by-one a refactor of Algorithm 1 could
//! introduce. The `aqs-check` mutation smoke test arms them one at a time and
//! proves its invariant oracles detect — and its shrinker minimizes — every
//! one. Compiled in only under the `fault-inject` feature and inert until
//! armed, so a fault-enabled build still behaves correctly by default.
//!
//! Arming is process-global: test binaries that arm faults must serialize
//! the armed window (a shared mutex, or `--test-threads=1`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A deliberate bug in the adaptive-quantum policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The upper clamp lets the quantum overshoot `max_quantum` by
    /// `min_quantum` — breaks the bounds invariant from above.
    QuantumClampHigh = 1,
    /// The lower clamp bottoms out at `min_quantum / 2` — breaks the bounds
    /// invariant from below once traffic shrinks the quantum to the floor.
    QuantumClampLow = 2,
    /// The grow/shrink test reads `np <= 1` instead of `np == 0`, so a
    /// quantum that saw exactly one packet *grows* — breaks the paper's
    /// shrink-on-packet direction invariant.
    ShrinkOffByOne = 3,
}

static ARMED: AtomicU64 = AtomicU64::new(0);

/// Arms `fault` (replacing any previously armed one).
pub fn arm(fault: Fault) {
    ARMED.store(fault as u64, Ordering::Release);
}

/// Disarms every fault in this crate.
pub fn disarm_all() {
    ARMED.store(0, Ordering::Release);
}

/// True when `fault` is the currently armed fault.
pub fn armed(fault: Fault) -> bool {
    ARMED.load(Ordering::Acquire) == fault as u64
}
