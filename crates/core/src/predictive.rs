//! A phase-predicting quantum policy — probing the paper's lookahead
//! discussion.
//!
//! §3 argues that classical PDES lookahead cannot be *reliably* computed
//! for a full-system cluster simulator ("there is no perfect way of
//! correctly determining if there is not going to be another packet"), and
//! the paper's Algorithm 1 therefore assumes nothing: it regrows the
//! quantum from the floor after every burst, paying a few hundred quanta
//! of "acceleration runway" each time.
//!
//! [`PredictiveQuantum`] asks how much that humility costs: it *estimates*
//! lookahead from history — an exponentially weighted average of observed
//! quiet-gap lengths — and after a burst ends jumps the quantum straight
//! to a fraction of the predicted gap instead of creeping up at 2–5 %. On
//! strictly periodic applications (most HPC codes) this recovers most of
//! the runway; when the prediction is wrong, the packets that land inside
//! the oversized quantum become stragglers — exactly the unreliability the
//! paper warns about. The `ext_policies` benchmark quantifies both sides.

use crate::policy::QuantumPolicy;
use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the predictive policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// Quantum floor (also used while traffic is flowing).
    pub min_quantum: SimDuration,
    /// Quantum ceiling.
    pub max_quantum: SimDuration,
    /// Fraction of the predicted quiet gap to jump to, in `(0, 1]`.
    /// Smaller is safer: the tail of the gap is traversed at the floor.
    pub safety: f64,
    /// EWMA smoothing for the gap estimate, in `(0, 1]`.
    pub alpha: f64,
}

impl PredictiveConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if bounds are invalid or `safety`/`alpha` are outside
    /// `(0, 1]`.
    pub fn new(
        min_quantum: SimDuration,
        max_quantum: SimDuration,
        safety: f64,
        alpha: f64,
    ) -> Self {
        assert!(!min_quantum.is_zero(), "min_quantum must be positive");
        assert!(
            min_quantum <= max_quantum,
            "min_quantum must not exceed max_quantum"
        );
        assert!(
            safety > 0.0 && safety <= 1.0,
            "safety must be in (0,1], got {safety}"
        );
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Self {
            min_quantum,
            max_quantum,
            safety,
            alpha,
        }
    }

    /// The defaults used by the extension benchmarks: 1–1000 µs, jump to
    /// half the predicted gap, EWMA α = 0.25.
    pub fn default_1_1000() -> Self {
        Self::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1000),
            0.5,
            0.25,
        )
    }
}

/// Quantum policy that predicts quiet-gap lengths from history.
///
/// State machine: while packets flow, hold the floor quantum and measure.
/// When a quantum comes back quiet, jump to `safety × predicted_gap`
/// (clamped), then fall back to the floor at the next packet and fold the
/// measured gap into the EWMA.
///
/// # Examples
///
/// ```
/// use aqs_core::{PredictiveConfig, PredictiveQuantum, QuantumPolicy};
/// use aqs_time::SimDuration;
///
/// let mut p = PredictiveQuantum::new(PredictiveConfig::default_1_1000());
/// // A burst, then silence: the first quiet quantum already jumps well
/// // past the floor once a gap has been learned.
/// for _ in 0..3 { p.next_quantum(5); }
/// for _ in 0..2000 { p.next_quantum(0); }  // learn a long gap
/// p.next_quantum(7);                        // burst ends the gap
/// let jump = p.next_quantum(0);             // quiet again: predicted jump
/// assert!(jump > SimDuration::from_micros(100));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictiveQuantum {
    config: PredictiveConfig,
    current_ns: f64,
    /// EWMA of quiet-gap lengths (ns); `None` until the first gap closes.
    predicted_gap_ns: Option<f64>,
    /// Quiet time accumulated since the last busy quantum.
    open_gap_ns: f64,
    in_gap: bool,
}

impl PredictiveQuantum {
    /// Creates the policy at its floor quantum.
    pub fn new(config: PredictiveConfig) -> Self {
        Self {
            config,
            current_ns: config.min_quantum.as_nanos() as f64,
            predicted_gap_ns: None,
            open_gap_ns: 0.0,
            in_gap: false,
        }
    }

    /// The current gap prediction, if one has been learned.
    pub fn predicted_gap(&self) -> Option<SimDuration> {
        self.predicted_gap_ns
            .map(|ns| SimDuration::from_nanos(ns.round() as u64))
    }

    fn clamp(&mut self) {
        let min = self.config.min_quantum.as_nanos() as f64;
        let max = self.config.max_quantum.as_nanos() as f64;
        self.current_ns = self.current_ns.clamp(min, max);
    }
}

impl QuantumPolicy for PredictiveQuantum {
    fn initial_quantum(&self) -> SimDuration {
        self.config.min_quantum
    }

    fn next_quantum(&mut self, np: u64) -> SimDuration {
        if np > 0 {
            // A burst: close any open gap and fold it into the estimate.
            if self.in_gap && self.open_gap_ns > 0.0 {
                let a = self.config.alpha;
                self.predicted_gap_ns = Some(match self.predicted_gap_ns {
                    None => self.open_gap_ns,
                    Some(prev) => a * self.open_gap_ns + (1.0 - a) * prev,
                });
            }
            self.in_gap = false;
            self.open_gap_ns = 0.0;
            self.current_ns = self.config.min_quantum.as_nanos() as f64;
        } else {
            // Quiet: the quantum that just passed extends the open gap.
            self.open_gap_ns += self.current_ns;
            if !self.in_gap {
                self.in_gap = true;
                // Jump to the predicted remaining quiet span.
                if let Some(gap) = self.predicted_gap_ns {
                    self.current_ns = gap * self.config.safety;
                }
            } else {
                // Past the prediction: creep like the paper's algorithm so
                // an underestimate still recovers.
                self.current_ns *= 1.05;
            }
        }
        self.clamp();
        SimDuration::from_nanos(self.current_ns.round() as u64)
    }

    fn label(&self) -> String {
        format!("pred {:.2}:{:.2}", self.config.safety, self.config.alpha)
    }

    fn reset(&mut self) {
        self.current_ns = self.config.min_quantum.as_nanos() as f64;
        self.predicted_gap_ns = None;
        self.open_gap_ns = 0.0;
        self.in_gap = false;
    }

    fn save_state(&self) -> Vec<u64> {
        vec![
            self.current_ns.to_bits(),
            u64::from(self.predicted_gap_ns.is_some()),
            self.predicted_gap_ns.unwrap_or(0.0).to_bits(),
            self.open_gap_ns.to_bits(),
            u64::from(self.in_gap),
        ]
    }

    fn load_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [current, has_gap, gap, open_gap, in_gap] = state else {
            return Err(format!(
                "predictive policy expects 5 state words, got {}",
                state.len()
            ));
        };
        if *has_gap > 1 || *in_gap > 1 {
            return Err("predictive policy: boolean state word out of range".to_string());
        }
        self.current_ns = f64::from_bits(*current);
        self.predicted_gap_ns = (*has_gap == 1).then(|| f64::from_bits(*gap));
        self.open_gap_ns = f64::from_bits(*open_gap);
        self.in_gap = *in_gap == 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictiveConfig {
        PredictiveConfig::default_1_1000()
    }

    #[test]
    fn starts_at_floor_without_history() {
        let mut p = PredictiveQuantum::new(cfg());
        assert_eq!(p.initial_quantum(), SimDuration::from_micros(1));
        assert_eq!(p.predicted_gap(), None);
        // Without a learned gap the first quiet quantum cannot jump.
        let q = p.next_quantum(0);
        assert!(q <= SimDuration::from_micros(2));
    }

    #[test]
    fn learns_gap_and_jumps() {
        let mut p = PredictiveQuantum::new(cfg());
        // Gap of ~200 µs traversed at the floor (200 quiet quanta of 1 µs
        // — no prediction yet, growth at 5 %).
        p.next_quantum(3);
        let mut quiet = SimDuration::ZERO;
        while quiet < SimDuration::from_micros(200) {
            quiet += p.next_quantum(0);
        }
        p.next_quantum(5); // burst closes the gap
                           // The estimate lags the true gap by at most one quantum.
        let learned = p.predicted_gap().expect("gap must be learned");
        assert!(
            learned >= SimDuration::from_micros(150),
            "learned only {learned}"
        );
        // Next quiet quantum jumps to safety × prediction.
        let jump = p.next_quantum(0);
        assert!(jump >= SimDuration::from_micros(70), "jump was only {jump}");
    }

    #[test]
    fn busy_quanta_pin_the_floor() {
        let mut p = PredictiveQuantum::new(cfg());
        for _ in 0..50 {
            assert_eq!(p.next_quantum(4), SimDuration::from_micros(1));
        }
    }

    #[test]
    fn bounds_hold_for_any_sequence() {
        let mut p = PredictiveQuantum::new(cfg());
        for i in 0..10_000u64 {
            let q = p.next_quantum(if i % 97 == 0 { i % 7 } else { 0 });
            assert!(q >= SimDuration::from_micros(1) && q <= SimDuration::from_micros(1000));
        }
    }

    #[test]
    fn ewma_tracks_changing_periods() {
        // Gaps are measured in elapsed simulated time, so drive the policy
        // by time, not by quantum count.
        let run_gap = |p: &mut PredictiveQuantum, gap: SimDuration| {
            let mut quiet = SimDuration::ZERO;
            while quiet < gap {
                quiet += p.next_quantum(0);
            }
            p.next_quantum(1);
        };
        let mut p = PredictiveQuantum::new(cfg());
        for _ in 0..6 {
            run_gap(&mut p, SimDuration::from_micros(50));
        }
        let short = p.predicted_gap().unwrap();
        for _ in 0..10 {
            run_gap(&mut p, SimDuration::from_micros(800));
        }
        let long = p.predicted_gap().unwrap();
        assert!(
            long.as_nanos() as f64 > short.as_nanos() as f64 * 1.5,
            "prediction failed to adapt: {short} → {long}"
        );
    }

    #[test]
    fn reset_clears_history() {
        let mut p = PredictiveQuantum::new(cfg());
        p.next_quantum(1);
        for _ in 0..100 {
            p.next_quantum(0);
        }
        p.next_quantum(1);
        assert!(p.predicted_gap().is_some());
        p.reset();
        assert_eq!(p.predicted_gap(), None);
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn bad_safety_rejected() {
        let _ = PredictiveConfig::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(10),
            0.0,
            0.5,
        );
    }
}
