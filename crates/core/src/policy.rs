//! The policy trait and the serializable configuration enum.

use crate::adaptive::{AdaptiveConfig, AdaptiveQuantum};
use crate::ext::{EwmaAdaptive, ThresholdAdaptive};
use crate::fixed::FixedQuantum;
use crate::predictive::{PredictiveConfig, PredictiveQuantum};
use aqs_time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Decides the length of each synchronization quantum.
///
/// The network controller calls [`next_quantum`](Self::next_quantum) at
/// every barrier with `np`, the number of packets routed during the quantum
/// that just ended; the returned duration is the length of the next quantum.
///
/// Implementations must be deterministic: the next quantum may depend only
/// on the policy's own state and the observed `np` sequence.
pub trait QuantumPolicy: fmt::Debug + Send {
    /// Length of the very first quantum.
    fn initial_quantum(&self) -> SimDuration;

    /// Observes the packet count of the quantum that just ended and returns
    /// the next quantum length.
    fn next_quantum(&mut self, np: u64) -> SimDuration;

    /// Short human label for tables and charts (e.g. `"100"` for a fixed
    /// 100 µs quantum, `"dyn 1.03:0.02"` for the paper's first adaptive
    /// configuration).
    fn label(&self) -> String;

    /// Restores the initial state, so one policy value can drive several
    /// runs.
    fn reset(&mut self);

    /// Serializes the policy's mutable state as opaque words, for a
    /// quantum-edge snapshot. Floating-point state is encoded via
    /// `f64::to_bits` so the round trip is exact. Stateless policies return
    /// an empty vector (the default).
    fn save_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state captured by [`Self::save_state`] on a freshly built
    /// policy of the same configuration. Rejects a word count that does not
    /// match what `save_state` produces (a corrupt or mismatched snapshot).
    fn load_state(&mut self, state: &[u64]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "stateless policy `{}` given {} state words",
                self.label(),
                state.len()
            ))
        }
    }
}

/// Serializable description of a synchronization policy.
///
/// Experiment configurations carry a `SyncConfig`; the engine builds the
/// stateful [`QuantumPolicy`] from it at run start, so repeated runs never
/// share mutable state.
///
/// # Examples
///
/// ```
/// use aqs_core::SyncConfig;
/// use aqs_time::SimDuration;
///
/// let cfg = SyncConfig::fixed_micros(100);
/// let policy = cfg.build();
/// assert_eq!(policy.initial_quantum(), SimDuration::from_micros(100));
/// assert_eq!(policy.label(), "100");
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SyncConfig {
    /// Fixed quantum (the paper's baselines: 1, 10, 100, 1000 µs).
    Fixed(SimDuration),
    /// The paper's Algorithm 1.
    Adaptive(AdaptiveConfig),
    /// Shrink only when `np` exceeds a threshold (ablation).
    Threshold {
        /// Underlying adaptive parameters.
        config: AdaptiveConfig,
        /// Minimum packet count that triggers a shrink.
        threshold: u64,
    },
    /// EWMA-smoothed packet signal (ablation).
    Ewma {
        /// Underlying adaptive parameters.
        config: AdaptiveConfig,
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Phase-predicting lookahead estimation (extension; see
    /// [`PredictiveQuantum`]).
    Predictive(PredictiveConfig),
}

impl SyncConfig {
    /// Fixed quantum of `us` microseconds.
    pub fn fixed_micros(us: u64) -> Self {
        SyncConfig::Fixed(SimDuration::from_micros(us))
    }

    /// The paper's ground-truth configuration: fixed 1 µs (safe bound for
    /// the paper's 1 µs minimum network latency).
    pub fn ground_truth() -> Self {
        Self::fixed_micros(1)
    }

    /// The paper's `dyn 1` configuration (3 % growth).
    pub fn paper_dyn1() -> Self {
        SyncConfig::Adaptive(AdaptiveConfig::paper_dyn1())
    }

    /// The paper's `dyn 2` configuration (5 % growth).
    pub fn paper_dyn2() -> Self {
        SyncConfig::Adaptive(AdaptiveConfig::paper_dyn2())
    }

    /// Builds the stateful policy.
    pub fn build(&self) -> Box<dyn QuantumPolicy> {
        match self {
            SyncConfig::Fixed(q) => Box::new(FixedQuantum::new(*q)),
            SyncConfig::Adaptive(cfg) => Box::new(AdaptiveQuantum::new(*cfg)),
            SyncConfig::Threshold { config, threshold } => {
                Box::new(ThresholdAdaptive::new(*config, *threshold))
            }
            SyncConfig::Ewma { config, alpha } => Box::new(EwmaAdaptive::new(*config, *alpha)),
            SyncConfig::Predictive(cfg) => Box::new(PredictiveQuantum::new(*cfg)),
        }
    }

    /// The label the built policy will report.
    pub fn label(&self) -> String {
        self.build().label()
    }
}

impl fmt::Display for SyncConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_fixed() {
        let p = SyncConfig::fixed_micros(10).build();
        assert_eq!(p.initial_quantum(), SimDuration::from_micros(10));
    }

    #[test]
    fn ground_truth_is_one_micro() {
        assert_eq!(
            SyncConfig::ground_truth().build().initial_quantum(),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn build_paper_dyns() {
        let p1 = SyncConfig::paper_dyn1().build();
        let p2 = SyncConfig::paper_dyn2().build();
        assert_eq!(p1.initial_quantum(), SimDuration::from_micros(1));
        assert_eq!(p2.initial_quantum(), SimDuration::from_micros(1));
        assert_ne!(p1.label(), p2.label());
    }

    #[test]
    fn display_matches_label() {
        let cfg = SyncConfig::paper_dyn1();
        assert_eq!(cfg.to_string(), cfg.label());
    }

    #[test]
    fn build_predictive() {
        let p = SyncConfig::Predictive(PredictiveConfig::default_1_1000()).build();
        assert_eq!(p.initial_quantum(), SimDuration::from_micros(1));
        assert!(p.label().starts_with("pred"));
    }

    #[test]
    fn save_load_state_resumes_every_policy_mid_stream() {
        let configs = [
            SyncConfig::fixed_micros(10),
            SyncConfig::paper_dyn1(),
            SyncConfig::Threshold {
                config: AdaptiveConfig::paper_dyn1(),
                threshold: 2,
            },
            SyncConfig::Ewma {
                config: AdaptiveConfig::paper_dyn2(),
                alpha: 0.5,
            },
            SyncConfig::Predictive(PredictiveConfig::default_1_1000()),
        ];
        let traffic: Vec<u64> = (0..40).map(|i| [0, 0, 3, 0, 0, 0, 7, 0][i % 8]).collect();
        for cfg in &configs {
            let mut live = cfg.build();
            for &np in &traffic[..25] {
                live.next_quantum(np);
            }
            let saved = live.save_state();
            let mut resumed = cfg.build();
            resumed.load_state(&saved).expect("state loads");
            for &np in &traffic[25..] {
                assert_eq!(
                    live.next_quantum(np),
                    resumed.next_quantum(np),
                    "policy {} diverged after resume",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn wrong_state_word_count_is_rejected() {
        let mut p = SyncConfig::paper_dyn1().build();
        assert!(p.load_state(&[1, 2]).is_err());
        let mut f = SyncConfig::fixed_micros(1).build();
        assert!(f.load_state(&[1]).is_err());
        assert!(f.load_state(&[]).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = SyncConfig::paper_dyn2();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SyncConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
